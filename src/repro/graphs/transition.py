"""Column-normalised transition matrices (the paper's ``Q``).

CoSimRank (Eq. 1) is defined on the column-normalised adjacency matrix:

    Q[x, y] = 1 / indeg(y)   iff the edge ``x -> y`` exists.

Every column with in-degree > 0 then sums to 1, and the PPR-style
iteration ``p^(k+1) = Q p^(k)`` pushes probability mass from a node to
its *in-neighbours*, exactly the "in-linked propagation" of Figure 1.

Nodes with in-degree zero produce all-zero columns ("dangling" columns
for this backwards walk).  The paper keeps those columns zero — mass
starting at such a node simply vanishes after one hop — and so does our
default ``dangling="zero"`` policy.  A ``"uniform"`` policy (teleport
to all nodes, the PageRank fix) is provided for users who want a strict
stochastic matrix; it changes CoSimRank values and is never used by the
reproduction experiments.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import sparse

from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = [
    "transition_matrix",
    "row_normalized",
    "is_column_substochastic",
]

_DANGLING_POLICIES = ("zero", "uniform")


def transition_matrix(
    graph: DiGraph,
    dangling: str = "zero",
    dtype=np.float64,
) -> sparse.csr_matrix:
    """Column-normalised adjacency matrix ``Q`` of ``graph``.

    Parameters
    ----------
    graph:
        The directed graph.
    dangling:
        ``"zero"`` (default, paper semantics) leaves columns of
        in-degree-0 nodes at zero; ``"uniform"`` replaces them with the
        uniform distribution ``1/n`` (dense columns — only sensible on
        small graphs).
    dtype:
        Floating dtype of the result.

    Returns
    -------
    scipy.sparse.csr_matrix
        ``n x n`` matrix with ``Q[x, y] = 1/indeg(y)`` for each edge
        ``x -> y``.
    """
    if dangling not in _DANGLING_POLICIES:
        raise InvalidParameterError(
            f"dangling policy must be one of {_DANGLING_POLICIES}, got {dangling!r}"
        )
    n = graph.num_nodes
    # Column-normalise the (possibly weighted) adjacency generically:
    # for a binary graph the column sums are exactly the in-degrees,
    # for a WeightedDiGraph they are the in-strengths.
    adjacency = graph.adjacency(dtype)
    colsum = np.asarray(adjacency.sum(axis=0)).ravel().astype(np.float64)
    with np.errstate(divide="ignore"):
        inv = np.where(colsum > 0, 1.0 / colsum, 0.0)
    matrix = (adjacency @ sparse.diags(inv.astype(dtype))).tocsr()

    if dangling == "uniform" and n > 0:
        zero_cols = np.flatnonzero(colsum == 0)
        if zero_cols.size:
            rows = np.repeat(np.arange(n, dtype=np.int64), zero_cols.size)
            cols = np.tile(zero_cols, n)
            fill = sparse.csr_matrix(
                (np.full(rows.size, 1.0 / n, dtype=dtype), (rows, cols)),
                shape=(n, n),
            )
            matrix = (matrix + fill).tocsr()
    return matrix


def row_normalized(graph: DiGraph, dtype=np.float64) -> sparse.csr_matrix:
    """Row-normalised adjacency (forward random walk), for applications.

    Not used by CoSimRank itself — provided because several application
    helpers (link prediction) want the forward walk.
    """
    n = graph.num_nodes
    outdeg = graph.out_degrees().astype(np.float64)
    src = graph.edge_sources
    dst = graph.edge_targets
    with np.errstate(divide="ignore"):
        inv = np.where(outdeg > 0, 1.0 / outdeg, 0.0)
    data = inv[src].astype(dtype)
    return sparse.csr_matrix((data, (src, dst)), shape=(n, n), dtype=dtype)


def is_column_substochastic(
    matrix: Union[sparse.spmatrix, np.ndarray], atol: float = 1e-10
) -> bool:
    """Whether every column sum lies in ``[0, 1]`` (up to ``atol``).

    The paper's ``Q`` is column-substochastic: exactly 1 on columns of
    nodes with in-edges, 0 on dangling columns.
    """
    if sparse.issparse(matrix):
        sums = np.asarray(matrix.sum(axis=0)).ravel()
    else:
        sums = np.asarray(matrix).sum(axis=0)
    if sums.size == 0:
        return True
    return bool(np.all(sums >= -atol) and np.all(sums <= 1.0 + atol))
