"""NetworkX interoperability.

Many users already hold their graphs as ``networkx`` objects; these
converters bridge them to this package's dense-id substrate without
making networkx a hard dependency (it is imported lazily and only
needed if you call these functions).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import GraphConstructionError
from repro.graphs.digraph import DiGraph
from repro.graphs.weighted import WeightedDiGraph

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - nx is a test dep here
        raise GraphConstructionError(
            "networkx is not installed; install it to use the interop helpers"
        ) from exc
    return networkx


def from_networkx(nx_graph, weight: str = "weight"):
    """Convert a networkx (Di)Graph to this package's graph types.

    Undirected graphs become digraphs with both edge directions.  If
    any edge carries the ``weight`` attribute a
    :class:`WeightedDiGraph` is returned (missing weights default to
    1.0); otherwise a plain :class:`DiGraph`.

    Returns ``(graph, node_mapping)`` where ``node_mapping`` maps the
    original networkx node objects to dense integer ids.
    """
    networkx = _require_networkx()
    nodes = list(nx_graph.nodes())
    mapping: Dict[object, int] = {node: i for i, node in enumerate(nodes)}

    directed = nx_graph.is_directed()
    triples = []
    weighted = False
    for s, t, data in nx_graph.edges(data=True):
        w = data.get(weight)
        if w is not None:
            weighted = True
        triples.append((mapping[s], mapping[t], 1.0 if w is None else float(w)))
        if not directed:
            triples.append((mapping[t], mapping[s], 1.0 if w is None else float(w)))

    if weighted:
        graph = WeightedDiGraph(len(nodes), triples)
    else:
        graph = DiGraph(len(nodes), [(s, t) for s, t, _ in triples])
    return graph, mapping


def to_networkx(graph: DiGraph):
    """Convert to a ``networkx.DiGraph`` (weights preserved if present)."""
    networkx = _require_networkx()
    nx_graph = networkx.DiGraph()
    nx_graph.add_nodes_from(range(graph.num_nodes))
    if isinstance(graph, WeightedDiGraph):
        nx_graph.add_weighted_edges_from(
            (int(s), int(t), float(w))
            for (s, t), w in zip(graph.edges(), graph.edge_weights)
        )
    else:
        nx_graph.add_edges_from(graph.edges())
    return nx_graph
