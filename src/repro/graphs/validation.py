"""Graph sanity checks and structural statistics.

These helpers back the dataset registry (which reports the same
``n / m / m-over-n`` table as the paper's §4.1) and the tests that
assert generator output has the intended shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.graphs.digraph import DiGraph

__all__ = ["GraphStats", "graph_stats", "degree_histogram", "powerlaw_tail_exponent"]


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of a directed graph."""

    num_nodes: int
    num_edges: int
    density: float
    max_in_degree: int
    max_out_degree: int
    num_dangling: int
    num_sources: int  # out-degree 0
    has_self_loops: bool

    def as_row(self) -> Dict[str, object]:
        """Flat dict, convenient for tabular reports."""
        return {
            "n": self.num_nodes,
            "m": self.num_edges,
            "m/n": round(self.density, 2),
            "max_in": self.max_in_degree,
            "max_out": self.max_out_degree,
            "dangling": self.num_dangling,
            "sinks(out=0)": self.num_sources,
            "self_loops": self.has_self_loops,
        }


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    indeg = graph.in_degrees()
    outdeg = graph.out_degrees()
    self_loops = bool(np.any(graph.edge_sources == graph.edge_targets))
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        density=graph.density,
        max_in_degree=int(indeg.max(initial=0)),
        max_out_degree=int(outdeg.max(initial=0)),
        num_dangling=int(np.count_nonzero(indeg == 0)),
        num_sources=int(np.count_nonzero(outdeg == 0)),
        has_self_loops=self_loops,
    )


def degree_histogram(graph: DiGraph, direction: str = "in") -> np.ndarray:
    """Histogram ``h[d] = #nodes with degree d`` for the chosen direction."""
    if direction == "in":
        degrees = graph.in_degrees()
    elif direction == "out":
        degrees = graph.out_degrees()
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def powerlaw_tail_exponent(graph: DiGraph, direction: str = "in") -> float:
    """Crude log-log least-squares estimate of the degree-tail exponent.

    Used only by tests to confirm that the Chung–Lu / R-MAT stand-ins
    are heavy-tailed while Erdős–Rényi is not; it is not a rigorous
    estimator (no MLE, no cutoff selection).

    Returns ``inf`` when the graph has no nodes of degree >= 2 to fit.
    """
    hist = degree_histogram(graph, direction)
    degrees = np.flatnonzero(hist)
    degrees = degrees[degrees >= 2]
    if degrees.size < 3:
        return float("inf")
    x = np.log(degrees.astype(np.float64))
    y = np.log(hist[degrees].astype(np.float64))
    slope, _ = np.polyfit(x, y, deg=1)
    return float(-slope)
