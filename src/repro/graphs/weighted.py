"""Weighted directed graphs.

The paper stores graphs as unweighted COO triples ``(x, y, 1)``; this
module generalises the substrate to ``(x, y, w)`` with positive edge
weights.  CoSimRank extends naturally: the transition matrix becomes
weight-proportional, ``Q[x, y] = w(x, y) / in_strength(y)``, and every
engine in this package works unchanged because they only consume ``Q``.

Duplicate edges are coalesced by *summing* their weights (the standard
multigraph-collapse semantics).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import GraphConstructionError, InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["WeightedDiGraph"]


class WeightedDiGraph(DiGraph):
    """A :class:`DiGraph` whose edges carry positive weights.

    Parameters
    ----------
    num_nodes:
        Number of nodes; ids are ``0 .. n-1``.
    edges:
        Iterable of ``(source, target, weight)`` triples.  Duplicate
        ``(source, target)`` pairs are coalesced by summing weights.

    Structural queries (degrees, neighbours, reachability) ignore the
    weights; :meth:`adjacency`, :meth:`in_strength` and
    :meth:`out_strength` expose them.
    """

    __slots__ = ("_weights",)

    def __init__(
        self, num_nodes: int, edges: Iterable[Tuple[int, int, float]] = ()
    ):
        triples = list(edges)
        if triples:
            arr = np.asarray(triples, dtype=np.float64)
            if arr.ndim != 2 or arr.shape[1] != 3:
                raise GraphConstructionError(
                    "edges must be (source, target, weight) triples"
                )
            src = arr[:, 0].astype(np.int64)
            dst = arr[:, 1].astype(np.int64)
            weights = arr[:, 2]
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        self._init_weighted(int(num_nodes), src, dst, weights)

    # ------------------------------------------------------------------
    def _init_weighted(
        self,
        num_nodes: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        if num_nodes < 0:
            raise InvalidParameterError(f"num_nodes must be >= 0, got {num_nodes}")
        if weights.size and np.any(weights <= 0):
            raise GraphConstructionError("edge weights must be positive")
        if weights.size and not np.all(np.isfinite(weights)):
            raise GraphConstructionError("edge weights must be finite")
        self._n = num_nodes
        if src.size:
            if src.min(initial=0) < 0 or dst.min(initial=0) < 0:
                raise GraphConstructionError("edge endpoints must be non-negative")
            if max(src.max(initial=-1), dst.max(initial=-1)) >= num_nodes:
                raise GraphConstructionError(
                    f"edge endpoint out of range for graph with {num_nodes} nodes"
                )
            order = np.lexsort((dst, src))
            src, dst, weights = src[order], dst[order], weights[order]
            # Group-sum weights of identical (src, dst) pairs.
            new_group = np.empty(src.size, dtype=bool)
            new_group[0] = True
            np.logical_or(
                src[1:] != src[:-1], dst[1:] != dst[:-1], out=new_group[1:]
            )
            starts = np.flatnonzero(new_group)
            weights = np.add.reduceat(weights, starts)
            src, dst = src[starts], dst[starts]
        self._src = src
        self._dst = dst
        self._weights = weights.astype(np.float64)
        self._csr = None
        self._csc = None

    @classmethod
    def from_weighted_arrays(
        cls,
        num_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
    ) -> "WeightedDiGraph":
        """Build from parallel source/target/weight arrays."""
        sources = np.asarray(sources, dtype=np.int64).ravel()
        targets = np.asarray(targets, dtype=np.int64).ravel()
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if not (sources.size == targets.size == weights.size):
            raise GraphConstructionError(
                "sources, targets and weights must have equal length"
            )
        graph = cls.__new__(cls)
        graph._init_weighted(
            int(num_nodes), sources.copy(), targets.copy(), weights.copy()
        )
        return graph

    @classmethod
    def from_digraph(
        cls, graph: DiGraph, weights: Optional[np.ndarray] = None
    ) -> "WeightedDiGraph":
        """Lift a binary graph to a weighted one (default weight 1)."""
        if weights is None:
            weights = np.ones(graph.num_edges)
        return cls.from_weighted_arrays(
            graph.num_nodes, graph.edge_sources, graph.edge_targets, weights
        )

    # ------------------------------------------------------------------
    @property
    def edge_weights(self) -> np.ndarray:
        """Read-only weight array aligned with the COO edge arrays."""
        return self._weights

    def adjacency(self, dtype=np.float64) -> sparse.csr_matrix:
        """Weighted adjacency: ``A[x, y] = w(x, y)``."""
        if self._csr is None or self._csr.dtype != np.dtype(dtype):
            self._csr = sparse.csr_matrix(
                (self._weights.astype(dtype), (self._src, self._dst)),
                shape=(self._n, self._n),
            )
        return self._csr

    def in_strength(self) -> np.ndarray:
        """Sum of incoming edge weights per node."""
        return np.bincount(
            self._dst, weights=self._weights, minlength=self._n
        )

    def out_strength(self) -> np.ndarray:
        """Sum of outgoing edge weights per node."""
        return np.bincount(
            self._src, weights=self._weights, minlength=self._n
        )

    def edge_weight(self, source: int, target: int) -> float:
        """Weight of edge ``source -> target`` (0.0 when absent)."""
        self._check_node(source)
        self._check_node(target)
        mask = (self._src == source) & (self._dst == target)
        hit = np.flatnonzero(mask)
        return float(self._weights[hit[0]]) if hit.size else 0.0

    # ------------------------------------------------------------------
    # weight-preserving derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "WeightedDiGraph":
        return WeightedDiGraph.from_weighted_arrays(
            self._n, self._dst, self._src, self._weights
        )

    def with_edges_added(
        self, edges: Sequence[Tuple[int, int, float]]
    ) -> "WeightedDiGraph":
        """A new graph with weighted ``(s, t, w)`` edges added (weights
        of duplicated pairs accumulate)."""
        if not edges:
            return self
        arr = np.asarray(list(edges), dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise GraphConstructionError("edges must be (s, t, w) triples")
        return WeightedDiGraph.from_weighted_arrays(
            self._n,
            np.concatenate([self._src, arr[:, 0].astype(np.int64)]),
            np.concatenate([self._dst, arr[:, 1].astype(np.int64)]),
            np.concatenate([self._weights, arr[:, 2]]),
        )

    def with_edges_removed(
        self, edges: Sequence[Tuple[int, int]]
    ) -> "WeightedDiGraph":
        if not edges:
            return self
        drop = {(int(s), int(t)) for s, t in edges}
        keep = np.fromiter(
            ((s, t) not in drop for s, t in zip(self._src, self._dst)),
            dtype=bool,
            count=self.num_edges,
        )
        return WeightedDiGraph.from_weighted_arrays(
            self._n, self._src[keep], self._dst[keep], self._weights[keep]
        )

    def subgraph(self, nodes: Sequence[int]) -> "WeightedDiGraph":
        nodes_arr = np.asarray(list(nodes), dtype=np.int64)
        if np.unique(nodes_arr).size != nodes_arr.size:
            raise InvalidParameterError("subgraph nodes must be unique")
        for node in nodes_arr:
            self._check_node(int(node))
        relabel = -np.ones(self._n, dtype=np.int64)
        relabel[nodes_arr] = np.arange(nodes_arr.size)
        mask = (relabel[self._src] >= 0) & (relabel[self._dst] >= 0)
        return WeightedDiGraph.from_weighted_arrays(
            nodes_arr.size,
            relabel[self._src[mask]],
            relabel[self._dst[mask]],
            self._weights[mask],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedDiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._src, other._src)
            and np.array_equal(self._dst, other._dst)
            and np.array_equal(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        return hash(
            (self._n, self._src.tobytes(), self._dst.tobytes(), self._weights.tobytes())
        )
