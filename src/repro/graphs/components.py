"""Connectivity utilities.

Weakly/strongly connected components of the directed substrate.  Used
by the dataset validation tests, by users inspecting stand-ins, and by
the dynamic engine's locality story (edits in one weak component can
never affect queries in another — a fact the F-CoSim tests exploit).

Implementations are iterative (no recursion limits): WCC by union-find
over the edge list, SCC by Tarjan's algorithm with an explicit stack.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.digraph import DiGraph

__all__ = [
    "weakly_connected_components",
    "strongly_connected_components",
    "num_weakly_connected_components",
    "largest_component_fraction",
]


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Component label per node (labels are 0-based, dense, arbitrary order)."""
    n = graph.num_nodes
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for s, t in zip(graph.edge_sources, graph.edge_targets):
        rs, rt = find(int(s)), find(int(t))
        if rs != rt:
            parent[rt] = rs

    roots = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)
    _, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64)


def num_weakly_connected_components(graph: DiGraph) -> int:
    """Number of weakly connected components."""
    if graph.num_nodes == 0:
        return 0
    return int(weakly_connected_components(graph).max()) + 1


def largest_component_fraction(graph: DiGraph) -> float:
    """Fraction of nodes in the largest weak component (0.0 if empty)."""
    if graph.num_nodes == 0:
        return 0.0
    labels = weakly_connected_components(graph)
    counts = np.bincount(labels)
    return float(counts.max() / graph.num_nodes)


def strongly_connected_components(graph: DiGraph) -> np.ndarray:
    """SCC label per node (Tarjan, iterative).

    Labels are dense 0-based integers; nodes in the same label form a
    maximal set with directed paths both ways.
    """
    n = graph.num_nodes
    index_of = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    stack: List[int] = []
    next_index = 0
    next_label = 0

    csr = graph.adjacency()

    for start in range(n):
        if index_of[start] != -1:
            continue
        # explicit DFS stack of (node, next-child-offset)
        work: List[List[int]] = [[start, 0]]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = lowlink[node] = next_index
                next_index += 1
                stack.append(node)
                on_stack[node] = True
            row_start, row_end = csr.indptr[node], csr.indptr[node + 1]
            advanced = False
            while child_pos < row_end - row_start:
                child = int(csr.indices[row_start + child_pos])
                child_pos += 1
                work[-1][1] = child_pos
                if index_of[child] == -1:
                    work.append([child, 0])
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            # node finished
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    labels[member] = next_label
                    if member == node:
                        break
                next_label += 1

    # relabel densely in first-seen node order for determinism
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
