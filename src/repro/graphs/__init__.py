"""Directed-graph substrate: data structure, IO, generators, transition matrices."""

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    chung_lu,
    complete,
    erdos_renyi,
    path_graph,
    preferential_attachment,
    random_dag,
    ring,
    rmat,
    star,
)
from repro.graphs.io import (
    graph_from_labeled_edges,
    parse_edge_list,
    read_edge_list,
    read_weighted_edge_list,
    write_edge_list,
    write_weighted_edge_list,
)
from repro.graphs.transition import (
    is_column_substochastic,
    row_normalized,
    transition_matrix,
)
from repro.graphs.validation import (
    GraphStats,
    degree_histogram,
    graph_stats,
    powerlaw_tail_exponent,
)
from repro.graphs.interop import from_networkx, to_networkx
from repro.graphs.weighted import WeightedDiGraph
from repro.graphs.components import (
    largest_component_fraction,
    num_weakly_connected_components,
    strongly_connected_components,
    weakly_connected_components,
)

__all__ = [
    "DiGraph",
    "WeightedDiGraph",
    "erdos_renyi",
    "preferential_attachment",
    "chung_lu",
    "rmat",
    "ring",
    "star",
    "complete",
    "path_graph",
    "random_dag",
    "read_edge_list",
    "parse_edge_list",
    "write_edge_list",
    "read_weighted_edge_list",
    "write_weighted_edge_list",
    "graph_from_labeled_edges",
    "transition_matrix",
    "row_normalized",
    "is_column_substochastic",
    "GraphStats",
    "graph_stats",
    "weakly_connected_components",
    "strongly_connected_components",
    "num_weakly_connected_components",
    "largest_component_fraction",
    "from_networkx",
    "to_networkx",
    "degree_histogram",
    "powerlaw_tail_exponent",
]
