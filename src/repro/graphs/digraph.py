"""Directed-graph substrate.

The paper stores graphs as COO triples ``{(x, y, 1)}`` and derives an
adjacency list by grouping on the source vertex (§4.1, "Graph Storage").
:class:`DiGraph` mirrors that design: edges are kept as parallel
``numpy`` arrays of sources and targets (the COO view), and CSR/CSC
scipy matrices are built lazily for the matrix pipelines.

Node ids are dense integers ``0 .. n-1``.  Helpers on top of this class
(:mod:`repro.graphs.io`) map arbitrary external labels onto dense ids.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import GraphConstructionError, InvalidParameterError

__all__ = ["DiGraph"]


class DiGraph:
    """An immutable directed graph over dense integer node ids.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; node ids are ``0 .. n-1``.
    edges:
        Iterable of ``(source, target)`` pairs.  Duplicate edges are
        coalesced (the adjacency matrix is binary, as in the paper's COO
        triples ``(x, y, 1)``).  Self-loops are permitted.

    Notes
    -----
    The class is deliberately immutable: every similarity engine in this
    package precomputes structures from the graph, and silent mutation
    would invalidate them.  "Dynamic graph" workflows instead produce a
    new :class:`DiGraph` via :meth:`with_edges_added` /
    :meth:`with_edges_removed`, which the dynamic engine consumes.
    """

    __slots__ = ("_n", "_src", "_dst", "_csr", "_csc")

    def __init__(self, num_nodes: int, edges: Iterable[Tuple[int, int]] = ()):
        n = int(num_nodes)
        if n < 0:
            raise InvalidParameterError(f"num_nodes must be >= 0, got {num_nodes}")
        self._n = n

        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise GraphConstructionError(
                    "edges must be an iterable of (source, target) pairs"
                )
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        self._init_from_arrays(src, dst)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _init_from_arrays(self, src: np.ndarray, dst: np.ndarray) -> None:
        n = self._n
        if src.size:
            if src.min(initial=0) < 0 or dst.min(initial=0) < 0:
                raise GraphConstructionError("edge endpoints must be non-negative")
            if src.max(initial=-1) >= n or dst.max(initial=-1) >= n:
                bad = max(src.max(initial=-1), dst.max(initial=-1))
                raise GraphConstructionError(
                    f"edge endpoint {bad} out of range for graph with {n} nodes"
                )
            # Coalesce duplicates while keeping a deterministic order.
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
            if src.size > 1:
                keep = np.empty(src.size, dtype=bool)
                keep[0] = True
                np.logical_or(
                    src[1:] != src[:-1], dst[1:] != dst[:-1], out=keep[1:]
                )
                src, dst = src[keep], dst[keep]
        self._src = src
        self._dst = dst
        self._csr: Optional[sparse.csr_matrix] = None
        self._csc: Optional[sparse.csc_matrix] = None

    @classmethod
    def from_arrays(
        cls, num_nodes: int, sources: np.ndarray, targets: np.ndarray
    ) -> "DiGraph":
        """Build a graph from parallel source/target arrays (COO view)."""
        sources = np.asarray(sources, dtype=np.int64).ravel()
        targets = np.asarray(targets, dtype=np.int64).ravel()
        if sources.shape != targets.shape:
            raise GraphConstructionError(
                f"sources and targets differ in length: "
                f"{sources.size} vs {targets.size}"
            )
        graph = cls.__new__(cls)
        n = int(num_nodes)
        if n < 0:
            raise InvalidParameterError(f"num_nodes must be >= 0, got {num_nodes}")
        graph._n = n
        graph._init_from_arrays(sources.copy(), targets.copy())
        return graph

    @classmethod
    def from_adjacency(cls, matrix) -> "DiGraph":
        """Build a graph from a (sparse or dense) adjacency matrix.

        ``matrix[x, y] != 0`` is interpreted as the edge ``x -> y``.
        """
        coo = sparse.coo_matrix(matrix)
        if coo.shape[0] != coo.shape[1]:
            raise GraphConstructionError(
                f"adjacency matrix must be square, got shape {coo.shape}"
            )
        return cls.from_arrays(coo.shape[0], coo.row, coo.col)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges ``m``."""
        return int(self._src.size)

    @property
    def density(self) -> float:
        """Average degree ``m / n`` (the paper's dataset-table column)."""
        return self.num_edges / self._n if self._n else 0.0

    @property
    def edge_sources(self) -> np.ndarray:
        """Read-only COO source array (do not mutate)."""
        return self._src

    @property
    def edge_targets(self) -> np.ndarray:
        """Read-only COO target array (do not mutate)."""
        return self._dst

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self._n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._src, other._src)
            and np.array_equal(self._dst, other._dst)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._src.tobytes(), self._dst.tobytes()))

    # ------------------------------------------------------------------
    # matrix views
    # ------------------------------------------------------------------
    def adjacency(self, dtype=np.float64) -> sparse.csr_matrix:
        """Binary adjacency matrix ``A`` in CSR format, ``A[x, y] = 1`` iff ``x -> y``."""
        if self._csr is None or self._csr.dtype != np.dtype(dtype):
            data = np.ones(self.num_edges, dtype=dtype)
            self._csr = sparse.csr_matrix(
                (data, (self._src, self._dst)), shape=(self._n, self._n)
            )
        return self._csr

    def adjacency_csc(self, dtype=np.float64) -> sparse.csc_matrix:
        """Binary adjacency matrix in CSC format (fast column slicing)."""
        if self._csc is None or self._csc.dtype != np.dtype(dtype):
            self._csc = self.adjacency(dtype).tocsc()
        return self._csc

    # ------------------------------------------------------------------
    # degrees and neighbourhoods
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node, as an ``int64`` array of length n."""
        return np.bincount(self._src, minlength=self._n).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node, as an ``int64`` array of length n."""
        return np.bincount(self._dst, minlength=self._n).astype(np.int64)

    def out_neighbors(self, node: int) -> np.ndarray:
        """Targets of edges leaving ``node`` (sorted, deduplicated)."""
        self._check_node(node)
        csr = self.adjacency()
        return csr.indices[csr.indptr[node] : csr.indptr[node + 1]].astype(np.int64)

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of edges entering ``node`` (sorted, deduplicated)."""
        self._check_node(node)
        csc = self.adjacency_csc()
        return csc.indices[csc.indptr[node] : csc.indptr[node + 1]].astype(np.int64)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        self._check_node(source)
        self._check_node(target)
        row = self.out_neighbors(source)
        idx = np.searchsorted(row, target)
        return bool(idx < row.size and row[idx] == target)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(source, target)`` pairs in deterministic order."""
        for s, t in zip(self._src.tolist(), self._dst.tolist()):
            yield s, t

    def dangling_nodes(self) -> np.ndarray:
        """Nodes with in-degree zero.

        With a *column*-normalised transition matrix the zero columns are
        exactly these nodes; the transition builder documents how they
        are treated.
        """
        return np.flatnonzero(self.in_degrees() == 0).astype(np.int64)

    def _check_node(self, node: int) -> None:
        if not (0 <= int(node) < self._n):
            raise GraphConstructionError(
                f"node {node} out of range for graph with {self._n} nodes"
            )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """The graph with every edge reversed."""
        return DiGraph.from_arrays(self._n, self._dst, self._src)

    def with_edges_added(self, edges: Sequence[Tuple[int, int]]) -> "DiGraph":
        """A new graph with ``edges`` added (duplicates coalesced)."""
        if not edges:
            return self
        extra = np.asarray(list(edges), dtype=np.int64)
        if extra.ndim != 2 or extra.shape[1] != 2:
            raise GraphConstructionError("edges must be (source, target) pairs")
        src = np.concatenate([self._src, extra[:, 0]])
        dst = np.concatenate([self._dst, extra[:, 1]])
        return DiGraph.from_arrays(self._n, src, dst)

    def with_edges_removed(self, edges: Sequence[Tuple[int, int]]) -> "DiGraph":
        """A new graph with ``edges`` removed (missing edges are ignored)."""
        if not edges:
            return self
        drop = {(int(s), int(t)) for s, t in edges}
        keep = np.fromiter(
            ((s, t) not in drop for s, t in zip(self._src, self._dst)),
            dtype=bool,
            count=self.num_edges,
        )
        return DiGraph.from_arrays(self._n, self._src[keep], self._dst[keep])

    def subgraph(self, nodes: Sequence[int]) -> "DiGraph":
        """Induced subgraph on ``nodes``, relabelled to ``0..len(nodes)-1``.

        ``nodes`` must not contain duplicates; order defines the new ids.
        """
        nodes_arr = np.asarray(list(nodes), dtype=np.int64)
        if np.unique(nodes_arr).size != nodes_arr.size:
            raise InvalidParameterError("subgraph nodes must be unique")
        for node in nodes_arr:
            self._check_node(int(node))
        relabel = -np.ones(self._n, dtype=np.int64)
        relabel[nodes_arr] = np.arange(nodes_arr.size)
        mask = (relabel[self._src] >= 0) & (relabel[self._dst] >= 0)
        return DiGraph.from_arrays(
            nodes_arr.size, relabel[self._src[mask]], relabel[self._dst[mask]]
        )

    # ------------------------------------------------------------------
    # neighbour-list view (paper §4.1)
    # ------------------------------------------------------------------
    def to_neighbor_lists(self) -> Dict[int, List[int]]:
        """Adjacency-list view ``{x: [y1, y2, ...]}`` per the paper's COO grouping.

        Only nodes with at least one out-edge appear as keys.
        """
        lists: Dict[int, List[int]] = {}
        csr = self.adjacency()
        for x in range(self._n):
            row = csr.indices[csr.indptr[x] : csr.indptr[x + 1]]
            if row.size:
                lists[x] = row.astype(int).tolist()
        return lists
