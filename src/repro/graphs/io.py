"""Edge-list input/output.

Readers accept the SNAP plain-text convention the paper's datasets use:
one ``source target`` pair per line, ``#``-prefixed comment lines, blank
lines ignored, arbitrary (possibly non-contiguous) integer or string
node labels.  Labels are mapped to dense ids ``0..n-1`` in first-seen
order and the mapping is returned alongside the graph.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "parse_edge_list",
    "write_edge_list",
    "graph_from_labeled_edges",
    "read_weighted_edge_list",
    "write_weighted_edge_list",
]

PathOrFile = Union[str, "os.PathLike[str]", TextIO]


def _open_maybe(path_or_file: PathOrFile):
    """Return ``(file_object, should_close)`` for a path or open file."""
    if hasattr(path_or_file, "read"):
        return path_or_file, False
    return open(os.fspath(path_or_file), "r", encoding="utf-8"), True


def graph_from_labeled_edges(
    edges: Iterable[Tuple[object, object]],
    num_nodes: Optional[int] = None,
) -> Tuple[DiGraph, Dict[object, int]]:
    """Build a :class:`DiGraph` from edges over arbitrary hashable labels.

    Returns the graph and the ``label -> dense id`` mapping.  If
    ``num_nodes`` is given, labels must be integers in ``[0, num_nodes)``
    and are used directly (the mapping is then the identity on the seen
    labels).
    """
    if num_nodes is not None:
        pairs = [(int(s), int(t)) for s, t in edges]
        graph = DiGraph(num_nodes, pairs)
        mapping = {i: i for i in range(num_nodes)}
        return graph, mapping

    mapping: Dict[object, int] = {}
    sources: List[int] = []
    targets: List[int] = []
    for s, t in edges:
        for label in (s, t):
            if label not in mapping:
                mapping[label] = len(mapping)
        sources.append(mapping[s])
        targets.append(mapping[t])
    graph = DiGraph.from_arrays(
        len(mapping),
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
    )
    return graph, mapping


def parse_edge_list(
    text: str,
    comment: str = "#",
    relabel: bool = True,
) -> Tuple[DiGraph, Dict[object, int]]:
    """Parse an edge list from a string.  See :func:`read_edge_list`."""
    return read_edge_list(io.StringIO(text), comment=comment, relabel=relabel)


def read_edge_list(
    path_or_file: PathOrFile,
    comment: str = "#",
    relabel: bool = True,
) -> Tuple[DiGraph, Dict[object, int]]:
    """Read a SNAP-style directed edge list.

    Parameters
    ----------
    path_or_file:
        A filesystem path or an open text file.
    comment:
        Lines starting with this prefix are skipped.
    relabel:
        When ``True`` (default), node labels may be arbitrary tokens and
        are densified in first-seen order.  When ``False``, labels must
        already be dense integers ``0..n-1`` with ``n`` inferred as
        ``max label + 1``.

    Returns
    -------
    (graph, mapping):
        The graph and the ``label -> id`` mapping (identity when
        ``relabel`` is ``False``).
    """
    handle, should_close = _open_maybe(path_or_file)
    try:
        raw_edges: List[Tuple[str, str]] = []
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"line {lineno}: expected 'source target', got {stripped!r}"
                )
            raw_edges.append((parts[0], parts[1]))
    finally:
        if should_close:
            handle.close()

    if relabel:
        return graph_from_labeled_edges(raw_edges)

    try:
        int_edges = [(int(s), int(t)) for s, t in raw_edges]
    except ValueError as exc:
        raise GraphFormatError(f"non-integer node label with relabel=False: {exc}")
    num_nodes = 1 + max((max(s, t) for s, t in int_edges), default=-1)
    graph = DiGraph(num_nodes, int_edges)
    return graph, {i: i for i in range(num_nodes)}


def read_weighted_edge_list(
    path_or_file: PathOrFile,
    comment: str = "#",
    default_weight: float = 1.0,
) -> Tuple["WeightedDiGraph", Dict[object, int]]:
    """Read a ``source target [weight]`` edge list into a weighted graph.

    The third column is optional per line; missing weights default to
    ``default_weight``.  Labels are densified in first-seen order, as
    in :func:`read_edge_list`.
    """
    from repro.graphs.weighted import WeightedDiGraph

    handle, should_close = _open_maybe(path_or_file)
    try:
        raw: List[Tuple[str, str, float]] = []
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"line {lineno}: expected 'source target [weight]', "
                    f"got {stripped!r}"
                )
            if len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError:
                    raise GraphFormatError(
                        f"line {lineno}: non-numeric weight {parts[2]!r}"
                    ) from None
            else:
                weight = default_weight
            raw.append((parts[0], parts[1], weight))
    finally:
        if should_close:
            handle.close()

    mapping: Dict[object, int] = {}
    triples: List[Tuple[int, int, float]] = []
    for s, t, w in raw:
        for label in (s, t):
            if label not in mapping:
                mapping[label] = len(mapping)
        triples.append((mapping[s], mapping[t], w))
    return WeightedDiGraph(len(mapping), triples), mapping


def write_weighted_edge_list(
    graph,
    path_or_file: PathOrFile,
    header: bool = True,
) -> None:
    """Write a :class:`WeightedDiGraph` as ``source target weight`` lines."""
    if hasattr(path_or_file, "write"):
        handle, should_close = path_or_file, False
    else:
        handle, should_close = open(os.fspath(path_or_file), "w", encoding="utf-8"), True
    try:
        if header:
            handle.write(
                f"# nodes: {graph.num_nodes} edges: {graph.num_edges} weighted\n"
            )
        for (s, t), w in zip(graph.edges(), graph.edge_weights):
            handle.write(f"{s}\t{t}\t{float(w)!r}\n")
    finally:
        if should_close:
            handle.close()


def write_edge_list(
    graph: DiGraph,
    path_or_file: PathOrFile,
    header: bool = True,
) -> None:
    """Write a graph as a SNAP-style edge list.

    With ``header=True`` a comment line recording ``n`` and ``m`` is
    emitted first, so round-tripping preserves isolated trailing nodes
    is *not* guaranteed — edge lists cannot represent isolated nodes,
    matching SNAP semantics.
    """
    if hasattr(path_or_file, "write"):
        handle, should_close = path_or_file, False
    else:
        handle, should_close = open(os.fspath(path_or_file), "w", encoding="utf-8"), True
    try:
        if header:
            handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for s, t in graph.edges():
            handle.write(f"{s}\t{t}\n")
    finally:
        if should_close:
            handle.close()
