"""Synthetic graph generators.

These generators stand in for the SNAP datasets of the paper's
evaluation (ego-Facebook, Gnutella, YouTube, Wiki-Talk, Twitter,
Webbase).  What the CoSimRank algorithms are sensitive to is the size
``(n, m)``, the average degree ``m/n``, and the skew of the in-degree
distribution — not edge semantics — so the stand-ins match those
statistics:

* :func:`erdos_renyi` — homogeneous sparse graphs (Gnutella-like);
* :func:`preferential_attachment` — dense social graphs with hubs
  (ego-Facebook-like);
* :func:`chung_lu` — power-law in/out-degree graphs with a chosen
  exponent (YouTube/Wiki-Talk-like);
* :func:`rmat` — Kronecker-recursive graphs with strong skew
  (Twitter/Webbase-like).

All generators are deterministic given ``seed`` and return
:class:`~repro.graphs.digraph.DiGraph` instances with duplicate edges
coalesced (so the realised ``m`` can land slightly under the requested
``num_edges``; each generator oversamples to compensate).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "preferential_attachment",
    "chung_lu",
    "rmat",
    "ring",
    "star",
    "complete",
    "path_graph",
    "random_dag",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _validate_counts(num_nodes: int, num_edges: int) -> None:
    if num_nodes <= 0:
        raise InvalidParameterError(f"num_nodes must be positive, got {num_nodes}")
    if num_edges < 0:
        raise InvalidParameterError(f"num_edges must be >= 0, got {num_edges}")


def _dedupe_to_target(
    src: np.ndarray, dst: np.ndarray, num_nodes: int, num_edges: int
) -> DiGraph:
    """Build a graph from candidate arrays, trimming to ``num_edges`` uniques."""
    keys = src.astype(np.int64) * num_nodes + dst.astype(np.int64)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    first = first[:num_edges]
    return DiGraph.from_arrays(num_nodes, src[first], dst[first])


def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    seed: Optional[int] = None,
    allow_self_loops: bool = False,
) -> DiGraph:
    """G(n, m)-style directed random graph with exactly ``num_edges`` edges.

    Sampling is uniform over ordered pairs; with ``allow_self_loops``
    false (default) pairs ``(x, x)`` are rejected.
    """
    _validate_counts(num_nodes, num_edges)
    max_edges = num_nodes * (num_nodes - (0 if allow_self_loops else 1))
    if num_edges > max_edges:
        raise InvalidParameterError(
            f"requested {num_edges} edges but only {max_edges} distinct "
            f"pairs exist for n={num_nodes}"
        )
    rng = _rng(seed)
    src_parts = []
    dst_parts = []
    collected = 0
    # Rejection-sample batches until enough unique pairs exist.
    while collected < num_edges:
        want = max(1024, int((num_edges - collected) * 1.3))
        s = rng.integers(0, num_nodes, size=want, dtype=np.int64)
        t = rng.integers(0, num_nodes, size=want, dtype=np.int64)
        if not allow_self_loops:
            mask = s != t
            s, t = s[mask], t[mask]
        src_parts.append(s)
        dst_parts.append(t)
        all_s = np.concatenate(src_parts)
        all_t = np.concatenate(dst_parts)
        collected = np.unique(all_s * num_nodes + all_t).size
    return _dedupe_to_target(
        np.concatenate(src_parts), np.concatenate(dst_parts), num_nodes, num_edges
    )


def preferential_attachment(
    num_nodes: int,
    out_degree: int,
    seed: Optional[int] = None,
) -> DiGraph:
    """Directed Barabási–Albert-style graph.

    Nodes arrive one at a time; each new node emits ``out_degree`` edges
    whose targets are chosen proportionally to (1 + current in-degree),
    producing hub-dominated in-degree tails like social graphs.  Edges
    also get mirrored with probability 0.5 to create reciprocity, as in
    friendship networks (ego-Facebook is undirected; mirroring
    approximates that).
    """
    if out_degree <= 0:
        raise InvalidParameterError(f"out_degree must be positive, got {out_degree}")
    _validate_counts(num_nodes, out_degree)
    rng = _rng(seed)
    # Repeated-nodes list trick: choosing uniformly from `targets_pool`
    # realises preferential attachment in O(1) per draw.
    pool = [0]
    sources = []
    targets = []
    for node in range(1, num_nodes):
        k = min(out_degree, node)
        chosen = set()
        while len(chosen) < k:
            pick = pool[rng.integers(0, len(pool))]
            if pick != node:
                chosen.add(int(pick))
        for tgt in chosen:
            sources.append(node)
            targets.append(tgt)
            pool.append(tgt)
            if rng.random() < 0.5:
                sources.append(tgt)
                targets.append(node)
        pool.append(node)
    return DiGraph.from_arrays(
        num_nodes,
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
    )


def chung_lu(
    num_nodes: int,
    num_edges: int,
    exponent: float = 2.2,
    seed: Optional[int] = None,
) -> DiGraph:
    """Directed Chung–Lu graph with power-law expected degrees.

    Both endpoint distributions are drawn proportionally to weights
    ``w_i = (i + 1)^(-1/(exponent - 1))`` (Zipfian), giving a power-law
    in-degree tail with the requested ``exponent``.  The realised edge
    count equals ``num_edges`` (after duplicate coalescing and
    resampling).
    """
    _validate_counts(num_nodes, num_edges)
    if exponent <= 1.0:
        raise InvalidParameterError(f"exponent must be > 1, got {exponent}")
    rng = _rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights /= weights.sum()
    # Independent permutations decorrelate "heavy in" from "heavy out"
    # node identities, like real graphs where hubs differ per direction.
    out_perm = rng.permutation(num_nodes)
    in_perm = rng.permutation(num_nodes)

    src_parts = []
    dst_parts = []
    collected = 0
    while collected < num_edges:
        want = max(2048, int((num_edges - collected) * 1.4))
        s = out_perm[rng.choice(num_nodes, size=want, p=weights)]
        t = in_perm[rng.choice(num_nodes, size=want, p=weights)]
        mask = s != t
        src_parts.append(s[mask])
        dst_parts.append(t[mask])
        all_s = np.concatenate(src_parts)
        all_t = np.concatenate(dst_parts)
        collected = np.unique(all_s * num_nodes + all_t).size
        if collected < num_edges and all_s.size > 50 * num_edges:
            # Extremely skewed weights can make new unique pairs rare;
            # accept what we have rather than loop indefinitely.
            break
    return _dedupe_to_target(
        np.concatenate(src_parts), np.concatenate(dst_parts), num_nodes, num_edges
    )


def rmat(
    scale: int,
    num_edges: int,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: Optional[int] = None,
) -> DiGraph:
    """R-MAT (recursive matrix / Kronecker) graph on ``2**scale`` nodes.

    The default quadrant probabilities are the Graph500 values, which
    produce the heavy skew characteristic of web/Twitter crawls.
    Duplicate edges are coalesced; the generator oversamples so the
    realised edge count is close to (and capped at) ``num_edges``.
    """
    if scale <= 0 or scale > 30:
        raise InvalidParameterError(f"scale must be in [1, 30], got {scale}")
    p = np.asarray(probabilities, dtype=np.float64)
    if p.shape != (4,) or np.any(p < 0) or not np.isclose(p.sum(), 1.0):
        raise InvalidParameterError(
            f"probabilities must be 4 non-negative values summing to 1, got {probabilities}"
        )
    num_nodes = 1 << scale
    _validate_counts(num_nodes, num_edges)
    rng = _rng(seed)

    def sample(count: int) -> Tuple[np.ndarray, np.ndarray]:
        rows = np.zeros(count, dtype=np.int64)
        cols = np.zeros(count, dtype=np.int64)
        pa, pb, pc, _ = p
        for _ in range(scale):
            u = rng.random(count)
            right = (u >= pa) & (u < pa + pb)
            down = (u >= pa + pb) & (u < pa + pb + pc)
            diag = u >= pa + pb + pc
            rows = (rows << 1) | (down | diag)
            cols = (cols << 1) | (right | diag)
        return rows, cols

    src_parts = []
    dst_parts = []
    collected = 0
    while collected < num_edges:
        want = max(4096, int((num_edges - collected) * 1.5))
        s, t = sample(want)
        mask = s != t
        src_parts.append(s[mask])
        dst_parts.append(t[mask])
        all_s = np.concatenate(src_parts)
        all_t = np.concatenate(dst_parts)
        collected = np.unique(all_s * num_nodes + all_t).size
        if collected < num_edges and all_s.size > 50 * num_edges:
            break
    return _dedupe_to_target(
        np.concatenate(src_parts), np.concatenate(dst_parts), num_nodes, num_edges
    )


# ----------------------------------------------------------------------
# small deterministic graphs (tests and examples)
# ----------------------------------------------------------------------
def ring(num_nodes: int) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    _validate_counts(num_nodes, num_nodes)
    nodes = np.arange(num_nodes, dtype=np.int64)
    return DiGraph.from_arrays(num_nodes, nodes, (nodes + 1) % num_nodes)


def star(num_leaves: int, inward: bool = True) -> DiGraph:
    """Star on ``num_leaves + 1`` nodes; hub is node 0.

    ``inward=True`` points leaves at the hub (leaf -> 0).
    """
    if num_leaves <= 0:
        raise InvalidParameterError(f"num_leaves must be positive, got {num_leaves}")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    if inward:
        return DiGraph.from_arrays(num_leaves + 1, leaves, hub)
    return DiGraph.from_arrays(num_leaves + 1, hub, leaves)


def complete(num_nodes: int) -> DiGraph:
    """Complete digraph without self-loops."""
    _validate_counts(num_nodes, 0)
    src, dst = np.meshgrid(
        np.arange(num_nodes, dtype=np.int64), np.arange(num_nodes, dtype=np.int64),
        indexing="ij",
    )
    mask = src != dst
    return DiGraph.from_arrays(num_nodes, src[mask], dst[mask])


def path_graph(num_nodes: int) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    _validate_counts(num_nodes, 0)
    if num_nodes == 1:
        return DiGraph(1)
    nodes = np.arange(num_nodes - 1, dtype=np.int64)
    return DiGraph.from_arrays(num_nodes, nodes, nodes + 1)


def random_dag(
    num_nodes: int,
    num_edges: int,
    seed: Optional[int] = None,
) -> DiGraph:
    """Random DAG: edges only go from lower to higher node ids."""
    _validate_counts(num_nodes, num_edges)
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise InvalidParameterError(
            f"requested {num_edges} edges but a DAG on {num_nodes} nodes "
            f"has at most {max_edges}"
        )
    rng = _rng(seed)
    src_parts = []
    dst_parts = []
    collected = 0
    while collected < num_edges:
        want = max(1024, int((num_edges - collected) * 1.5))
        a = rng.integers(0, num_nodes, size=want, dtype=np.int64)
        b = rng.integers(0, num_nodes, size=want, dtype=np.int64)
        mask = a != b
        a, b = a[mask], b[mask]
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        src_parts.append(lo)
        dst_parts.append(hi)
        all_s = np.concatenate(src_parts)
        all_t = np.concatenate(dst_parts)
        collected = np.unique(all_s * num_nodes + all_t).size
    return _dedupe_to_target(
        np.concatenate(src_parts), np.concatenate(dst_parts), num_nodes, num_edges
    )
