"""cosimrank-csrplus — reproduction of CSR+ (EDBT 2024).

Fast multi-source CoSimRank search on large directed graphs via
low-rank SVD, plus every baseline the paper evaluates against and a
harness that regenerates each figure/table of its evaluation.

Quickstart
----------
>>> from repro import CSRPlusIndex
>>> from repro.graphs import chung_lu
>>> graph = chung_lu(2000, 10_000, seed=7)
>>> index = CSRPlusIndex(graph, rank=5).prepare()
>>> similarities = index.query([3, 14, 159])    # n x 3 block of [S]_{*,Q}
"""

import logging as _logging

# Library-logging hygiene: every logger in this package ("repro.engines",
# "repro.experiments", "repro.serving", ...) is a child of "repro", so a
# single NullHandler here guarantees importing the library never emits
# handler warnings or stray stderr output.  Applications opt in with
# logging.basicConfig() or a handler on "repro".
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.core import (
    CSRPlusConfig,
    CSRPlusIndex,
    DynamicCSRPlus,
    SimilarityEngine,
    cosimrank_all_pairs,
    cosimrank_multi_source,
    cosimrank_single_pair,
    cosimrank_single_source,
    cosimrank_top_k,
    suggest_rank,
)
from repro.errors import (
    ConvergenceError,
    DatasetError,
    DecompositionError,
    ExperimentError,
    GraphConstructionError,
    GraphFormatError,
    InvalidParameterError,
    MemoryBudgetExceeded,
    NotPreparedError,
    QueryError,
    ReproError,
)
from repro.graphs import DiGraph, WeightedDiGraph
from repro.serving import CoSimRankService, IndexRegistry, ServingStats

__version__ = "1.0.0"

__all__ = [
    "CSRPlusIndex",
    "CSRPlusConfig",
    "DynamicCSRPlus",
    "SimilarityEngine",
    "DiGraph",
    "WeightedDiGraph",
    "suggest_rank",
    "cosimrank_multi_source",
    "cosimrank_single_source",
    "cosimrank_single_pair",
    "cosimrank_all_pairs",
    "cosimrank_top_k",
    "CoSimRankService",
    "IndexRegistry",
    "ServingStats",
    "ReproError",
    "GraphFormatError",
    "GraphConstructionError",
    "InvalidParameterError",
    "QueryError",
    "NotPreparedError",
    "ConvergenceError",
    "DecompositionError",
    "MemoryBudgetExceeded",
    "DatasetError",
    "ExperimentError",
    "__version__",
]
