"""Schema-versioned performance snapshots and regression gating.

A repo that optimises serving paths needs a memory of how fast it used
to be.  ``csrplus bench`` measures the load-bearing numbers — prepare
time, exact/batched column throughput, top-k throughput, and a seeded
loadgen pass (:mod:`repro.serving.loadgen`) — and writes them as a
``BENCH_<date>.json`` snapshot:

* every metric carries a ``direction`` (``"lower"`` or ``"higher"`` is
  better), so the comparator needs no out-of-band knowledge;
* the payload is versioned (``schema: csrplus-bench/v1``) and records
  the workload and environment that produced it, so apples are only
  ever compared to apples;
* ``csrplus bench --compare prior.json`` re-runs the suite and exits
  nonzero when any metric regresses beyond the tolerance — the CI
  perf-smoke lane and local pre-merge checks both gate on this.

Snapshots committed under ``benchmarks/trajectory/`` form the repo's
perf trajectory; see docs/observability.md for the reading guide.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.core.topk import top_k_blockwise
from repro.errors import GraphFormatError, InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.obs.metrics import MetricsRegistry
from repro.serving.loadgen import (
    LoadProfile,
    LoadReport,
    SimulatedClock,
    build_schedule,
    loadgen_slos,
    run_load,
)
from repro.serving.approx import ApproxIndex
from repro.serving.service import CoSimRankService

__all__ = [
    "SCHEMA",
    "DEFAULT_TOLERANCE",
    "run_bench",
    "write_snapshot",
    "load_snapshot",
    "compare_snapshots",
    "render_comparison",
]

#: Bump on any incompatible payload change; the loader refuses other
#: schemas instead of comparing mismatched shapes.
SCHEMA = "csrplus-bench/v1"

#: Relative slack a metric may move in its bad direction before the
#: comparator calls it a regression (timings are noisy; 25% is roughly
#: the CI-runner jitter floor for sub-second kernels).
DEFAULT_TOLERANCE = 0.25


def _environment() -> Dict[str, str]:
    import scipy

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _metric(value: float, unit: str, direction: str) -> Dict[str, object]:
    assert direction in ("lower", "higher")
    return {"value": float(value), "unit": unit, "direction": direction}


def _throughput(fn, amount: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` items/second for one kernel invocation."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return amount / max(best, 1e-12)


def _frontend_metrics(
    graph: DiGraph,
    config: CSRPlusConfig,
    workers: int,
    profile: LoadProfile,
    *,
    slo_p99_ms: float,
    slo_availability: float,
) -> Dict[str, Dict[str, object]]:
    """Measure the multi-process frontend (docs/frontend.md).

    Builds a throwaway sharded store, boots a
    :class:`~repro.serving.frontend.BackgroundFrontend` with ``workers``
    worker processes, and measures the per-seed GEMV path end to end
    over HTTP: ``frontend_columns_per_second`` repeats one 64-seed
    batch with the dispatcher cache disabled (every repeat recomputes),
    and ``frontend_p99_ms`` replays the loadgen schedule through
    :class:`~repro.serving.frontend.FrontendClient` on the real clock
    (latency across a process boundary cannot be simulated).
    """
    import os
    import tempfile

    from repro.serving.frontend import (
        BackgroundFrontend,
        FrontendClient,
        FrontendConfig,
    )
    from repro.sharding import build_sharded_store

    metrics: Dict[str, Dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="csrplus-bench-frontend-") as tmp:
        store = build_sharded_store(
            graph,
            os.path.join(tmp, "bench.shards"),
            num_shards=max(4, workers),
            config=config,
        )
        frontend = BackgroundFrontend(
            store.path,
            config=FrontendConfig(
                workers=workers, cache_columns=0, topk_cache_entries=0
            ),
        )
        with frontend, FrontendClient(frontend.url) as client:
            rng = np.random.default_rng(profile.seed)
            seeds = rng.integers(0, graph.num_nodes, size=64).tolist()
            client.serve_batch([seeds])  # warm-up: fault shards in
            metrics["frontend_columns_per_second"] = _metric(
                _throughput(lambda: client.serve_batch([seeds]), len(seeds)),
                "columns/s",
                "higher",
            )
            schedule = build_schedule(profile, graph.num_nodes)
            report = run_load(
                client,
                schedule,
                registry=MetricsRegistry(),
                slos=loadgen_slos(
                    p99_ms=slo_p99_ms, availability=slo_availability
                ),
            )
            metrics["frontend_p99_ms"] = _metric(
                report.latency_s["p99"] * 1e3, "ms", "lower"
            )
    return metrics


def run_bench(
    graph: DiGraph,
    *,
    rank: int = 16,
    damping: float = 0.6,
    profile: Optional[LoadProfile] = None,
    topk: int = 10,
    simulate: bool = False,
    slo_p99_ms: float = 250.0,
    slo_availability: float = 0.99,
    frontend_workers: int = 0,
    workload: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Measure the bench suite on ``graph`` and return the payload.

    ``simulate`` runs the loadgen pass on a
    :class:`~repro.serving.loadgen.SimulatedClock`, making its metrics
    deterministic (CI uses this; kernel timings stay real either way).
    ``frontend_workers > 0`` additionally boots the multi-process HTTP
    frontend and records ``frontend_columns_per_second`` /
    ``frontend_p99_ms`` (a schema-compatible addition: the comparator
    skips metrics present on only one side).  The ``workload`` dict is
    recorded verbatim so the comparator can refuse cross-workload
    comparisons.
    """
    profile = profile or LoadProfile(requests=200, qps=500.0, seed=0)
    config = CSRPlusConfig(damping=damping, rank=min(rank, graph.num_nodes))

    prepare_started = time.perf_counter()
    index = CSRPlusIndex(graph, config).prepare()
    prepare_seconds = time.perf_counter() - prepare_started

    rng = np.random.default_rng(profile.seed)
    seeds = rng.integers(0, graph.num_nodes, size=64)
    metrics: Dict[str, Dict[str, object]] = {
        "prepare_seconds": _metric(prepare_seconds, "s", "lower"),
        "exact_columns_per_second": _metric(
            _throughput(
                lambda: index.query_columns(seeds, mode="exact"), seeds.size
            ),
            "columns/s",
            "higher",
        ),
        "batched_columns_per_second": _metric(
            _throughput(
                lambda: index.query_columns(seeds, mode="batched"), seeds.size
            ),
            "columns/s",
            "higher",
        ),
        "topk_seeds_per_second": _metric(
            _throughput(
                lambda: top_k_blockwise(index, seeds[:16], topk), 16
            ),
            "seeds/s",
            "higher",
        ),
    }

    schedule = build_schedule(profile, graph.num_nodes)
    registry = MetricsRegistry()
    service = CoSimRankService(index, max_workers=1)
    try:
        if simulate:
            sim = SimulatedClock()
            clock, sleep = sim.now, sim.sleep
        else:
            clock, sleep = time.monotonic, time.sleep
        report: LoadReport = run_load(
            service,
            schedule,
            registry=registry,
            clock=clock,
            sleep=sleep,
            slos=loadgen_slos(
                p99_ms=slo_p99_ms, availability=slo_availability
            ),
        )
    finally:
        service.close()

    metrics["loadgen_p50_seconds"] = _metric(
        report.latency_s["p50"], "s", "lower"
    )
    metrics["loadgen_p95_seconds"] = _metric(
        report.latency_s["p95"], "s", "lower"
    )
    metrics["loadgen_p99_seconds"] = _metric(
        report.latency_s["p99"], "s", "lower"
    )
    metrics["loadgen_qps_achieved"] = _metric(
        report.qps_achieved, "req/s", "higher"
    )
    metrics["loadgen_ok_rate"] = _metric(report.ok_rate, "fraction", "higher")

    # Approximate tier (docs/approx.md): sketch-replica column
    # throughput, plus a deterministic overload A/B — the same
    # over-budget traffic served exact-only (sheds) and quality="auto"
    # (degrades onto the replica).  The coverage metric is the headline:
    # the fraction of requests the exact-only baseline shed that the
    # auto policy turned into served (approx) answers.
    approx = ApproxIndex.for_rank(graph, config.rank, damping=damping).prepare()
    metrics["approx_columns_per_second"] = _metric(
        _throughput(lambda: approx.query_columns(seeds), seeds.size),
        "columns/s",
        "higher",
    )

    overload_profile = LoadProfile(
        requests=60,
        qps=500.0,
        seeds_per_request=8,
        zipf_s=0.0,
        seed=profile.seed,
    )
    overload_schedule = build_schedule(overload_profile, graph.num_nodes)
    overload_reports: Dict[str, LoadReport] = {}
    for label, quality, replica in (
        ("exact", "exact", None),
        ("auto", "auto", approx),
    ):
        overload_service = CoSimRankService(
            index,
            max_workers=1,
            max_inflight_seeds=4,
            cache_columns=0,
            approx_index=replica,
        )
        try:
            sim = SimulatedClock()
            overload_reports[label] = run_load(
                overload_service,
                overload_schedule,
                quality=quality,
                registry=MetricsRegistry(),
                clock=sim.now,
                sleep=sim.sleep,
            )
        finally:
            overload_service.close()
    shed_exact = overload_reports["exact"].outcomes.get("shed", 0)
    approx_served = overload_reports["auto"].outcomes.get("approx", 0)
    metrics["overload_exact_served_rate"] = _metric(
        overload_reports["exact"].served_rate, "fraction", "higher"
    )
    metrics["overload_auto_served_rate"] = _metric(
        overload_reports["auto"].served_rate, "fraction", "higher"
    )
    metrics["overload_degrade_coverage"] = _metric(
        min(1.0, approx_served / max(1, shed_exact)), "fraction", "higher"
    )

    if frontend_workers > 0:
        metrics.update(
            _frontend_metrics(
                graph,
                config,
                frontend_workers,
                profile,
                slo_p99_ms=slo_p99_ms,
                slo_availability=slo_availability,
            )
        )

    return {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workload": dict(workload or {}) or {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "rank": config.rank,
            "damping": config.damping,
            "topk": topk,
            "simulate": simulate,
            "frontend_workers": frontend_workers,
            "profile": profile.as_dict(),
        },
        "environment": _environment(),
        "metrics": metrics,
        "loadgen": report.as_dict(),
        "overload": {
            "profile": overload_profile.as_dict(),
            "max_inflight_seeds": 4,
            "approx_atol": approx.query_atol(),
            "exact_outcomes": dict(overload_reports["exact"].outcomes),
            "auto_outcomes": dict(overload_reports["auto"].outcomes),
        },
        "slo": report.slo,
    }


def write_snapshot(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_snapshot(path: str) -> Dict[str, object]:
    """Read and validate a snapshot written by :func:`write_snapshot`."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise GraphFormatError(
            f"cannot read bench snapshot {path!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise GraphFormatError(f"{path!r} is not JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise GraphFormatError(
            f"{path!r} is not a {SCHEMA} snapshot "
            f"(schema={payload.get('schema')!r})"
            if isinstance(payload, dict)
            else f"{path!r} is not a bench snapshot"
        )
    if not isinstance(payload.get("metrics"), dict):
        raise GraphFormatError(f"{path!r} has no metrics section")
    return payload


def compare_snapshots(
    old: Dict[str, object],
    new: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, object]]:
    """Regressions of ``new`` against ``old`` beyond ``tolerance``.

    A lower-is-better metric regresses when
    ``new > old * (1 + tolerance)``; a higher-is-better one when
    ``new < old / (1 + tolerance)``.  Metrics present in only one
    snapshot are skipped (the trajectory may grow new metrics).
    Returns one record per regressed metric, empty when clean.
    """
    if tolerance < 0:
        raise InvalidParameterError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    regressions: List[Dict[str, object]] = []
    old_metrics: Dict[str, Dict[str, object]] = old["metrics"]  # type: ignore[assignment]
    new_metrics: Dict[str, Dict[str, object]] = new["metrics"]  # type: ignore[assignment]
    for name in sorted(set(old_metrics) & set(new_metrics)):
        old_value = float(old_metrics[name]["value"])
        new_value = float(new_metrics[name]["value"])
        direction = new_metrics[name].get(
            "direction", old_metrics[name].get("direction", "lower")
        )
        if direction == "lower":
            regressed = new_value > old_value * (1.0 + tolerance)
            ratio = new_value / max(old_value, 1e-12)
        else:
            regressed = new_value < old_value / (1.0 + tolerance)
            ratio = old_value / max(new_value, 1e-12)
        if regressed:
            regressions.append({
                "metric": name,
                "direction": direction,
                "old": old_value,
                "new": new_value,
                "ratio": ratio,
                "unit": new_metrics[name].get("unit", ""),
                "tolerance": tolerance,
            })
    return regressions


def render_comparison(
    old: Dict[str, object],
    new: Dict[str, object],
    regressions: List[Dict[str, object]],
    tolerance: float,
) -> str:
    """Human-readable delta of every shared metric, worst first."""
    regressed = {entry["metric"] for entry in regressions}
    old_metrics: Dict[str, Dict[str, object]] = old["metrics"]  # type: ignore[assignment]
    new_metrics: Dict[str, Dict[str, object]] = new["metrics"]  # type: ignore[assignment]
    lines = [
        f"bench comparison (tolerance {tolerance:.0%}, "
        f"baseline {old.get('created', '?')}):"
    ]
    for name in sorted(set(old_metrics) & set(new_metrics)):
        old_value = float(old_metrics[name]["value"])
        new_value = float(new_metrics[name]["value"])
        unit = new_metrics[name].get("unit", "")
        direction = new_metrics[name].get("direction", "lower")
        arrow = "↑" if new_value > old_value else "↓"
        change = (
            (new_value - old_value) / max(abs(old_value), 1e-12)
        )
        verdict = "REGRESSED" if name in regressed else "ok"
        lines.append(
            f"  {name:<32} {old_value:>12.4g} -> {new_value:>12.4g} {unit:<10}"
            f" {arrow}{abs(change):>6.1%}  ({direction} is better)  {verdict}"
        )
    if regressions:
        lines.append(
            f"{len(regressions)} metric(s) regressed beyond "
            f"{tolerance:.0%} tolerance"
        )
    else:
        lines.append("no regressions")
    return "\n".join(lines)
