"""Live-graph serving: a versioned chain of indexes over an evolving graph.

:class:`LiveIndexChain` is the piece that turns the static serving
stack into a zero-downtime live one (docs/dynamic.md).  It composes
three existing mechanisms:

* :class:`~repro.core.dynamic.DynamicCSRPlus` keeps the evolving graph
  and the update log (``csrplus_dynamic_staleness``), routing rebuilds
  through a pluggable ``rebuilder``;
* targeted shard repair
  (:func:`~repro.sharding.builder.repair_sharded_store`) rebuilds only
  the node ranges whose ``Z``/``U`` rows changed — digest-diffed per
  shard, falling back to a full rebuild past a dirty-fraction
  threshold — into a *new* per-version store directory, hard-linking
  clean shard files (old readers keep their mmaps; nothing is ever
  rewritten in place);
* :meth:`~repro.serving.service.CoSimRankService.publish_index` swaps
  the new version in atomically while in-flight batches finish on the
  old one, upgrading per-seed cache entries instead of flushing them.

Every applied batch produces an immutable :class:`IndexVersion` link:
which shards were repaired, which row ranges went dirty, and whether
the dirty fraction forced a full rebuild.  The chain keeps the last
few links alive so batches pinned to a recent version never lose their
backing index (version stores on disk are likewise never deleted by
the chain — old mmaps may still be reading them).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.core.config import CSRPlusConfig
from repro.core.dynamic import DynamicCSRPlus
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["IndexVersion", "LiveIndexChain"]

#: Default number of recent versions whose index objects stay strongly
#: referenced (in-flight batches pinned to them must outlive the swap).
DEFAULT_KEEP_VERSIONS = 3


@dataclass(frozen=True)
class IndexVersion:
    """One immutable link of the live chain.

    Attributes
    ----------
    version:
        Monotone sequence number (0 is the initial build).
    index:
        The prepared backend serving this version (monolithic
        :class:`~repro.core.index.CSRPlusIndex` or a
        :class:`~repro.sharding.ShardedIndex` over ``store_path``).
    store_path:
        This version's shard-store directory (``None`` for monolithic
        chains).  Never deleted by the chain.
    repaired_shards:
        Shard ids whose bytes the repair actually rewrote (empty for a
        byte-no-op update batch; all shards for a full rebuild).
    dirty_ranges:
        Node ranges whose ``Z``/``U`` rows changed — exactly what the
        serving caches were advanced with.
    full_rebuild:
        Whether the dirty fraction (or a node-count change) forced a
        full rebuild instead of targeted repair.
    edges_applied:
        Requested edge changes retired by this version.
    """

    version: int
    index: object
    store_path: Optional[str] = None
    repaired_shards: Tuple[int, ...] = ()
    dirty_ranges: Tuple[Tuple[int, int], ...] = ()
    full_rebuild: bool = False
    edges_applied: int = 0


class LiveIndexChain:
    """Versioned zero-downtime index chain over an evolving graph.

    Parameters
    ----------
    graph:
        Initial graph (the node set is fixed for the chain's lifetime —
        edge batches may not add nodes).
    config:
        Index configuration (or keyword ``overrides``).
    store_root:
        Directory for per-version shard stores (``v000000/``,
        ``v000001/``, ...).  Required when ``num_shards`` is set.
    num_shards:
        Shard the backend into this many node ranges and route updates
        through targeted shard repair.  ``None`` (default) keeps a
        monolithic in-memory backend rebuilt per update batch.
    dirty_threshold:
        Dirty-shard fraction above which targeted repair falls back to
        a full rebuild (see
        :func:`~repro.sharding.builder.repair_sharded_store`).
    keep_versions:
        How many recent :class:`IndexVersion` links stay strongly
        referenced.  Evicted links are dropped, never ``close()``-d —
        a batch pinned to one may still be running.
    max_workers / query_mode / validate_reads:
        Passed through to each version's :class:`~repro.sharding.
        ShardedIndex` (sharded chains only).  ``validate_reads=True``
        re-hashes every shard read against the manifest, so a corrupted
        block surfaces as a typed error instead of wrong rows — the
        chaos suite's setting.
    metrics / tracer:
        Instrument sinks; default to the process-global registry and
        tracer.

    Examples
    --------
    >>> from repro.graphs import ring
    >>> chain = LiveIndexChain(ring(12), rank=4)
    >>> chain.version
    0
    >>> chain.update_edges(added=[(0, 6)]).version
    1
    """

    def __init__(
        self,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        *,
        store_root: Optional[str] = None,
        num_shards: Optional[int] = None,
        dirty_threshold: float = 0.5,
        keep_versions: int = DEFAULT_KEEP_VERSIONS,
        max_workers: Optional[int] = None,
        query_mode: Optional[str] = None,
        validate_reads: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        **overrides,
    ):
        if num_shards is not None and num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1 (or None for monolithic), "
                f"got {num_shards}"
            )
        if num_shards is not None and store_root is None:
            raise InvalidParameterError(
                "a sharded live chain needs store_root (one directory "
                "per version is created beneath it)"
            )
        if keep_versions < 1:
            raise InvalidParameterError(
                f"keep_versions must be >= 1, got {keep_versions}"
            )
        self._config = (config or CSRPlusConfig()).with_overrides(**overrides)
        self._store_root = os.fspath(store_root) if store_root else None
        self._num_shards = num_shards
        self._dirty_threshold = float(dirty_threshold)
        self._keep_versions = int(keep_versions)
        self._max_workers = max_workers
        self._query_mode = query_mode
        self._validate_reads = bool(validate_reads)
        self._lock = threading.RLock()
        self._services: List[object] = []
        self._last_report = None
        self._seq = 0

        reg = metrics if metrics is not None else obs.get_registry()
        tracer = tracer if tracer is not None else obs.get_tracer()
        self._m_edges = reg.counter(
            "csrplus_update_edges_total",
            "Edge changes (adds + removals) applied to live chains",
        )
        self._m_repaired = reg.counter(
            "csrplus_update_repaired_shards_total",
            "Shards rewritten by targeted repair across live updates",
        )
        self._m_full = reg.counter(
            "csrplus_update_full_rebuilds_total",
            "Live updates that fell back to a full rebuild",
        )

        if num_shards is None:
            initial = CSRPlusIndex(graph, self._config).prepare()
            store_path = None
        else:
            store_path = self._version_path(0)
            from repro.sharding import build_sharded_store

            build_sharded_store(
                graph,
                store_path,
                num_shards=int(num_shards),
                config=self._config,
                overwrite=True,
            )
            initial = self._open_sharded(store_path)
        self._dynamic = DynamicCSRPlus(
            graph,
            self._config,
            policy="manual",
            index=initial,
            rebuilder=self._rebuild,
            metrics=reg,
            tracer=tracer,
        )
        self._versions: List[IndexVersion] = [
            IndexVersion(version=0, index=initial, store_path=store_path)
        ]

    # ------------------------------------------------------------------
    # chain state
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The current (post-updates) graph."""
        return self._dynamic.graph

    @property
    def index(self):
        """The backend serving the newest version."""
        return self._dynamic.index

    @property
    def version(self) -> int:
        """Newest published version number."""
        with self._lock:
            return self._versions[-1].version

    @property
    def current(self) -> IndexVersion:
        """The newest :class:`IndexVersion` link."""
        with self._lock:
            return self._versions[-1]

    def versions(self) -> Tuple[IndexVersion, ...]:
        """The retained recent links, oldest first."""
        with self._lock:
            return tuple(self._versions)

    @property
    def is_sharded(self) -> bool:
        return self._num_shards is not None

    # ------------------------------------------------------------------
    # serving attachment
    # ------------------------------------------------------------------
    def attach(self, service) -> None:
        """Register a service: every future update is published to it.

        The service should already be serving :attr:`index` (construct
        it with ``CoSimRankService(chain.index, ...)``); if it is
        serving an older backend it receives the current one via
        :meth:`~repro.serving.service.CoSimRankService.publish_index`
        immediately.
        """
        with self._lock:
            current = self._versions[-1].index
            if service.index is not current:
                service.publish_index(current)
            self._services.append(service)

    def detach(self, service) -> None:
        """Stop publishing updates to ``service`` (idempotent)."""
        with self._lock:
            try:
                self._services.remove(service)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update_edges(
        self,
        added: Sequence[Tuple[int, int]] = (),
        removed: Sequence[Tuple[int, int]] = (),
    ) -> IndexVersion:
        """Apply one edge batch and publish the repaired version.

        Returns the new :class:`IndexVersion` link (or the current one
        unchanged when the batch is empty).  The sequence per batch:

        1. the evolving graph absorbs the changes
           (:class:`~repro.core.dynamic.DynamicCSRPlus` update log);
        2. the backend is rebuilt through targeted repair — only
           digest-mismatched shards are rewritten, into a fresh
           per-version directory (``dynamic.rebuild`` span);
        3. every attached service swaps atomically
           (``index.swap`` span): in-flight batches finish on the old
           version, caches are upgraded per seed.
        """
        added = list(added)
        removed = list(removed)
        if not added and not removed:
            return self.current
        with self._lock:
            edges = len(added) + len(removed)
            self._dynamic.update_edges(added, removed)
            self._last_report = None
            self._dynamic.refresh()  # routes through self._rebuild
            report = self._last_report
            new_index = self._dynamic.index
            self._seq += 1
            if report is None:  # monolithic chain
                link = IndexVersion(
                    version=self._seq,
                    index=new_index,
                    full_rebuild=True,
                    edges_applied=edges,
                )
                publish_ranges = None  # service diffs the dense factors
            else:
                n = int(self._dynamic.graph.num_nodes)
                link = IndexVersion(
                    version=self._seq,
                    index=new_index,
                    store_path=report.path,
                    repaired_shards=report.repaired_shards,
                    dirty_ranges=report.dirty_ranges,
                    full_rebuild=report.full_rebuild,
                    edges_applied=edges,
                )
                publish_ranges = report.dirty_ranges
            self._m_edges.inc(edges)
            self._m_repaired.inc(len(link.repaired_shards))
            if link.full_rebuild:
                self._m_full.inc()
            self._versions.append(link)
            del self._versions[: -self._keep_versions]
            for service in self._services:
                service.publish_index(new_index, dirty_ranges=publish_ranges)
            return link

    @property
    def staleness(self) -> int:
        """Edge changes absorbed by the graph but not yet rebuilt (0
        between :meth:`update_edges` calls — the chain always refreshes)."""
        return self._dynamic.staleness

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _version_path(self, seq: int) -> str:
        assert self._store_root is not None
        return os.path.join(self._store_root, f"v{seq:06d}")

    def _open_sharded(self, path: str):
        from repro.sharding import ShardedIndex

        return ShardedIndex(
            path,
            query_mode=self._query_mode,
            max_workers=self._max_workers,
            validate_reads=self._validate_reads,
        )

    def _rebuild(self, graph: DiGraph, config: CSRPlusConfig):
        """The :class:`DynamicCSRPlus` rebuilder seam.

        Monolithic: a fresh prepare.  Sharded: targeted repair of the
        newest version's store into the next version directory; the
        repair report is stashed for :meth:`update_edges` to read.
        """
        if self._num_shards is None:
            return CSRPlusIndex(graph, config).prepare()
        from repro.sharding import repair_sharded_store

        old_path = self._versions[-1].store_path
        assert old_path is not None
        report = repair_sharded_store(
            graph,
            old_path,
            self._version_path(self._seq + 1),
            dirty_threshold=self._dirty_threshold,
            overwrite=True,
        )
        self._last_report = report
        return self._open_sharded(report.path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = (
            f"shards={self._num_shards}" if self.is_sharded else "monolithic"
        )
        return (
            f"LiveIndexChain(version={self.version}, {backend}, "
            f"services={len(self._services)})"
        )
