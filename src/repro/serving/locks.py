"""Advisory cross-process file locks for registry critical sections.

Threads inside one :class:`~repro.serving.registry.IndexRegistry` are
already serialised by its ``RLock``, but the multi-process front end
(docs/frontend.md) runs one registry *per worker process* over the same
on-disk root.  Two workers detecting the same corrupt shard would both
quarantine it and both rebuild — wasted work at best, and at worst the
second quarantine moves the freshly repaired bytes aside and rebuilds
again.  :class:`FileLock` closes that race: the quarantine-and-rebuild
sections take an exclusive ``flock`` on a ``<name>.lock`` sidecar, and
a process that waited re-verifies the (possibly already repaired) state
under the lock before doing any work of its own.

``flock`` locks are advisory and per-open-file-description: they
serialise cooperating registries without affecting readers, vanish
automatically when the holder dies (no stale-lock recovery needed), and
are re-acquirable recursively here because the context manager counts
depth per instance.  On platforms without ``fcntl`` (Windows) the lock
degrades to a per-process mutex — single-host multi-process safety is a
POSIX feature of this codebase, matching the mmap shard design.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

try:  # POSIX only; the fallback below keeps imports working elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]


class FileLock:
    """An exclusive, re-entrant advisory lock on a sidecar file.

    Usable as a context manager from any number of processes; the file
    is created on first acquisition and deliberately never deleted
    (unlinking a locked file reintroduces the race the lock exists to
    close: a late-coming process could lock the orphaned inode while a
    newer one locks the recreated path).

    Examples
    --------
    >>> import tempfile, os
    >>> lock = FileLock(os.path.join(tempfile.mkdtemp(), "x.lock"))
    >>> with lock:
    ...     with lock:   # re-entrant within one instance
    ...         pass
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._fd: Optional[int] = None
        self._depth = 0
        # serialises threads sharing this instance; cross-instance
        # threads in one process still exclude each other through the
        # kernel lock (flock is per open file description, and each
        # instance opens its own)
        self._mutex = threading.RLock()

    @property
    def locked(self) -> bool:
        """Whether *this instance* currently holds the lock."""
        return self._depth > 0

    def acquire(self) -> "FileLock":
        self._mutex.acquire()
        if self._depth == 0 and fcntl is not None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            except OSError:
                os.close(self._fd)
                self._fd = None
                self._mutex.release()
                raise
        self._depth += 1
        return self

    def release(self) -> None:
        if self._depth <= 0:
            raise RuntimeError(f"release of unheld FileLock({self.path!r})")
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
        self._mutex.release()

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "held" if self.locked else "free"
        return f"FileLock({self.path!r}, {state})"
