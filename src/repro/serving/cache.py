"""Thread-safe LRU cache of per-seed similarity columns.

The unit of caching is one *column* of the CoSimRank block: the
length-``n`` vector ``[S]_{*,s}`` for a single seed ``s``.  Theorem 3.5
makes every column a pure function of its own seed, and
:meth:`repro.core.index.CSRPlusIndex.query_columns` evaluates columns
with a batch-independent (per-column GEMV) computation — together these
make caching *exact*: a column assembled from cache is bit-identical to
one computed fresh, whatever else is or was in the cache.

All mutation happens under one reentrant lock; the hit/miss/eviction
counters are incremented under the same lock, so ``hits + misses``
always equals the number of seed lookups ever performed (no lost
updates under concurrency).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["ColumnCache"]


class ColumnCache:
    """LRU map ``seed id -> [S]_{*,seed}`` with byte accounting.

    Parameters
    ----------
    capacity:
        Maximum number of resident columns.  ``0`` disables caching
        entirely: every lookup misses and :meth:`insert` is a no-op,
        turning the serving layer into an exact pass-through.

    Examples
    --------
    >>> import numpy as np
    >>> cache = ColumnCache(capacity=2)
    >>> cache.insert({0: np.zeros(3), 1: np.ones(3)})   # evictions caused
    0
    >>> hits, misses = cache.lookup([0, 2])
    >>> sorted(hits), misses
    ([0], [2])
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise InvalidParameterError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self._capacity = int(capacity)
        self._lock = threading.RLock()
        self._columns: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._columns)

    def __contains__(self, seed: int) -> bool:
        with self._lock:
            return int(seed) in self._columns

    def keys_in_lru_order(self) -> List[int]:
        """Resident seeds, least-recently-used first (for tests)."""
        with self._lock:
            return list(self._columns.keys())

    def counters(self) -> Dict[str, int]:
        """A consistent snapshot of all counters and occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "cached_columns": len(self._columns),
                "bytes_cached": self._bytes,
            }

    # ------------------------------------------------------------------
    # the two operations the service uses
    # ------------------------------------------------------------------
    def lookup(
        self, seeds: Iterable[int]
    ) -> Tuple[Dict[int, np.ndarray], List[int]]:
        """Probe the cache for each seed in one atomic critical section.

        Returns ``(hits, misses)`` where ``hits`` maps seed -> cached
        column (read-only array) and ``misses`` lists the seeds the
        caller must compute, in input order.  Every probed seed
        increments exactly one of the hit/miss counters.
        """
        hit_columns: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        with self._lock:
            for seed in seeds:
                seed = int(seed)
                column = self._columns.get(seed)
                if column is None:
                    self.misses += 1
                    missing.append(seed)
                else:
                    self.hits += 1
                    self._columns.move_to_end(seed)
                    hit_columns[seed] = column
        return hit_columns, missing

    def insert(self, columns: Dict[int, np.ndarray]) -> int:
        """Store freshly computed columns, evicting LRU entries as needed.

        Stored arrays are marked read-only so no caller can corrupt a
        shared column in place.  Re-inserting a resident seed replaces
        its column without double-charging the byte count (two threads
        may race to compute the same miss; both insertions are valid
        because the column is a deterministic function of the seed).

        Returns the number of columns evicted by this insertion, so the
        caller can feed eviction metrics without re-reading counters.
        """
        if self._capacity == 0 or not columns:
            return 0
        evicted_count = 0
        with self._lock:
            for seed, column in columns.items():
                seed = int(seed)
                column = np.asarray(column)
                column.flags.writeable = False
                previous = self._columns.pop(seed, None)
                if previous is not None:
                    self._bytes -= previous.nbytes
                self._columns[seed] = column
                self._bytes += column.nbytes
            while len(self._columns) > self._capacity:
                _, evicted = self._columns.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
                evicted_count += 1
        return evicted_count

    def clear(self) -> None:
        """Drop every resident column (counters are preserved)."""
        with self._lock:
            self._columns.clear()
            self._bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ColumnCache(capacity={self._capacity}, "
                f"columns={len(self._columns)}, bytes={self._bytes})"
            )
