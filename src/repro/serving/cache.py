"""Thread-safe LRU caches for the serving layer.

Two units of caching live here:

* :class:`ColumnCache` — one full column ``[S]_{*,s}`` per seed, the
  unit behind ``serve_batch``.
* :class:`TopKCache` — one *ranking* per ``(seed, exclude_self)`` pair,
  the unit behind ``serve_topk``.  A ranking is strictly smaller than a
  column (``k`` entries instead of ``n``), and a stored top-``k'``
  answers any request with ``k <= k'`` for free: the prefix of a
  deterministically ordered top-``k'`` *is* the top-``k``
  (docs/topk.md).

For :class:`ColumnCache` the unit is one *column* of the CoSimRank block: the
length-``n`` vector ``[S]_{*,s}`` for a single seed ``s``.  Theorem 3.5
makes every column a pure function of its own seed, and
:meth:`repro.core.index.CSRPlusIndex.query_columns` evaluates columns
with a batch-independent per-column kernel
(:func:`repro.core.index.exact_column_product`) — together these
make caching *exact*: a column assembled from cache is bit-identical to
one computed fresh, whatever else is or was in the cache.

All mutation happens under one reentrant lock; the hit/miss/eviction
counters are incremented under the same lock, so ``hits + misses``
always equals the number of seed lookups ever performed (no lost
updates under concurrency).

Robustness (docs/robustness.md): :meth:`insert` validates every
column's shape and dtype against the cache's declared geometry, so a
buggy producer raises :class:`~repro.errors.InvalidParameterError`
instead of poisoning later reads.  With ``validate_checksums=True`` the
cache also fingerprints each column at insert and re-verifies on every
hit — a poisoned entry is evicted and reported as a miss (the service
then recomputes it), never returned.

Live-graph versioning (docs/dynamic.md): every entry carries an index
*version tag*.  ``lookup``/``insert`` accept the version a batch pinned
at entry — a hit requires a matching tag, and an insert from a batch
still finishing on an already-replaced index is silently dropped (a
stale producer must never poison the new version's cache).  On a
version swap, :meth:`ColumnCache.advance` invalidates *per seed*
rather than flushing wholesale: seeds whose own ``U`` row changed are
dropped, surviving columns have just their dirty ``Z`` row ranges
recomputed (the partition-stable exact kernel makes the patched column
bit-identical to a fresh compute), and untouched entries are simply
retagged — staying warm across the swap.  :meth:`TopKCache.advance`
retags on a clean swap and clears otherwise: a ranking is a *global*
ordering, so any changed row can displace cached entries and no local
patch can restore the prefix guarantee.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.topk import TopKResult
from repro.errors import InvalidParameterError
from repro.testing import faults

__all__ = ["ColumnCache", "TopKCache"]


def _fingerprint(column: np.ndarray) -> int:
    """A cheap integrity fingerprint of a column's exact bytes."""
    return zlib.crc32(np.ascontiguousarray(column).view(np.uint8).data)


#: ``(start, stop)`` node ranges whose ``Z``/``U`` rows changed in a swap.
DirtyRanges = Sequence[Tuple[int, int]]


def _normalize_ranges(dirty_ranges: DirtyRanges) -> List[Tuple[int, int]]:
    ranges = []
    for start, stop in dirty_ranges:
        start, stop = int(start), int(stop)
        if stop > start:
            ranges.append((start, stop))
    return ranges


def _in_ranges(row: int, ranges: List[Tuple[int, int]]) -> bool:
    return any(start <= row < stop for start, stop in ranges)


class ColumnCache:
    """LRU map ``seed id -> [S]_{*,seed}`` with byte accounting.

    Parameters
    ----------
    capacity:
        Maximum number of resident columns.  ``0`` disables caching
        entirely: every lookup misses and :meth:`insert` is a no-op,
        turning the serving layer into an exact pass-through.
    num_rows:
        Expected column length (the graph's node count).  When set,
        :meth:`insert` rejects wrong-shaped columns.
    dtype:
        Expected column dtype.  When set, :meth:`insert` rejects
        mismatches (an implicit cast would silently change bits).
    validate_checksums:
        Re-verify each column's fingerprint on every hit; corrupted
        entries are dropped and surfaced as misses (counted in
        ``integrity_failures``).  Off by default — it costs a CRC pass
        over ``n * itemsize`` bytes per hit.

    Examples
    --------
    >>> import numpy as np
    >>> cache = ColumnCache(capacity=2)
    >>> cache.insert({0: np.zeros(3), 1: np.ones(3)})   # evictions caused
    0
    >>> hits, misses = cache.lookup([0, 2])
    >>> sorted(hits), misses
    ([0], [2])
    """

    def __init__(
        self,
        capacity: int,
        *,
        num_rows: Optional[int] = None,
        dtype: Optional[np.dtype] = None,
        validate_checksums: bool = False,
    ):
        if capacity < 0:
            raise InvalidParameterError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        if num_rows is not None and num_rows < 1:
            raise InvalidParameterError(
                f"num_rows must be >= 1 (or None), got {num_rows}"
            )
        self._capacity = int(capacity)
        self._num_rows = None if num_rows is None else int(num_rows)
        self._dtype = None if dtype is None else np.dtype(dtype)
        self._validate = bool(validate_checksums)
        self._lock = threading.RLock()
        self._columns: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._checksums: Dict[int, int] = {}
        self._tags: Dict[int, int] = {}
        self._version = 0
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.integrity_failures = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def version(self) -> int:
        """The index version current entries are tagged for."""
        with self._lock:
            return self._version

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._columns)

    def __contains__(self, seed: int) -> bool:
        with self._lock:
            return int(seed) in self._columns

    def keys_in_lru_order(self) -> List[int]:
        """Resident seeds, least-recently-used first (for tests)."""
        with self._lock:
            return list(self._columns.keys())

    def counters(self) -> Dict[str, int]:
        """A consistent snapshot of all counters and occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "integrity_failures": self.integrity_failures,
                "cached_columns": len(self._columns),
                "bytes_cached": self._bytes,
            }

    # ------------------------------------------------------------------
    # the two operations the service uses
    # ------------------------------------------------------------------
    def lookup(
        self, seeds: Iterable[int], version: Optional[int] = None
    ) -> Tuple[Dict[int, np.ndarray], List[int]]:
        """Probe the cache for each seed in one atomic critical section.

        Returns ``(hits, misses)`` where ``hits`` maps seed -> cached
        column (read-only array) and ``misses`` lists the seeds the
        caller must compute, in input order.  Every probed seed
        increments exactly one of the hit/miss counters; a hit whose
        checksum no longer matches (``validate_checksums=True``) is
        evicted and counted as a miss plus an integrity failure.

        ``version`` is the index version the caller pinned at batch
        entry (``None`` means the cache's current version).  An entry
        only hits when its tag matches — a batch still running on an
        already-swapped-out index misses and recomputes against its own
        pinned index, so every answer is exact *for its version*.
        """
        hit_columns: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        with self._lock:
            wanted = self._version if version is None else int(version)
            for seed in seeds:
                seed = int(seed)
                column = self._columns.get(seed)
                if column is not None and self._tags.get(seed, 0) != wanted:
                    # resident, but for a different index version — not
                    # an answer for this batch (and not evicted either:
                    # current-version batches can still use it)
                    column = None
                if column is not None:
                    # chaos seam: a FaultPlan may hand back a corrupted
                    # view of the stored column here
                    column = faults.transform("cache.read", column, seed=seed)
                    if self._validate and _fingerprint(column) != \
                            self._checksums.get(seed):
                        self._drop(seed)
                        self.integrity_failures += 1
                        column = None
                if column is None:
                    self.misses += 1
                    missing.append(seed)
                else:
                    self.hits += 1
                    self._columns.move_to_end(seed)
                    hit_columns[seed] = column
        return hit_columns, missing

    def insert(
        self, columns: Dict[int, np.ndarray], version: Optional[int] = None
    ) -> int:
        """Store freshly computed columns, evicting LRU entries as needed.

        ``version`` tags the entries with the index version they were
        computed against (``None`` = the cache's current version).  An
        insert carrying a version older than the cache's current one is
        silently dropped: a batch that pinned the old index before a
        swap must not overwrite entries that already reflect the new
        version.

        Every column is validated first — 1-D, the declared length, the
        declared dtype — and the whole insertion is rejected with
        :class:`~repro.errors.InvalidParameterError` on any mismatch
        (never partially applied), so a buggy producer cannot poison
        the cache with a block that would later crash or silently
        mis-assemble a response.

        Stored arrays are marked read-only so no caller can corrupt a
        shared column in place.  Re-inserting a resident seed replaces
        its column without double-charging the byte count (two threads
        may race to compute the same miss; both insertions are valid
        because the column is a deterministic function of the seed).

        Returns the number of columns evicted by this insertion, so the
        caller can feed eviction metrics without re-reading counters.
        """
        if self._capacity == 0 or not columns:
            return 0
        validated: Dict[int, np.ndarray] = {}
        for seed, column in columns.items():
            validated[int(seed)] = self._check_column(int(seed), column)
        evicted_count = 0
        with self._lock:
            tag = self._version if version is None else int(version)
            if tag != self._version:
                # stale producer (pinned a replaced index): never poison
                # the current version's entries
                return 0
            for seed, column in validated.items():
                column.flags.writeable = False
                previous = self._columns.pop(seed, None)
                if previous is not None:
                    self._bytes -= previous.nbytes
                self._columns[seed] = column
                self._tags[seed] = tag
                self._bytes += column.nbytes
                if self._validate:
                    self._checksums[seed] = _fingerprint(column)
            while len(self._columns) > self._capacity:
                evicted_seed, evicted = self._columns.popitem(last=False)
                self._checksums.pop(evicted_seed, None)
                self._tags.pop(evicted_seed, None)
                self._bytes -= evicted.nbytes
                self.evictions += 1
                evicted_count += 1
        return evicted_count

    def advance(
        self,
        version: int,
        dirty_ranges: DirtyRanges,
        recompute_rows: Optional[Callable[[int, int, int], np.ndarray]] = None,
    ) -> Dict[str, int]:
        """Publish a new index version with per-seed invalidation.

        ``dirty_ranges`` lists the ``[start, stop)`` node ranges whose
        ``Z``/``U`` rows changed between the old and new index (e.g.
        repaired shard ranges).  Per entry:

        * the seed itself falls in a dirty range — **dropped** (its
          ``U`` row may have changed, so the whole column is suspect);
        * otherwise, dirty ranges exist — the column's rows inside each
          dirty range are **patched** via ``recompute_rows(seed, start,
          stop)`` (which must return the final served values for those
          rows, identity term included).  By Theorem 3.5 row
          independence the patched column is bit-identical to a fresh
          exact compute against the new index.  Without a
          ``recompute_rows`` callback such entries are dropped instead;
        * no dirty ranges at all — the entry is **retained** untouched
          (exact pre-swap bytes) and merely retagged.

        A ``recompute_rows`` failure drops that entry rather than
        failing the publish.  Returns ``{"dropped", "patched",
        "retained"}`` counts.
        """
        ranges = _normalize_ranges(dirty_ranges)
        dropped = patched = retained = 0
        with self._lock:
            if int(version) <= self._version:
                raise InvalidParameterError(
                    f"cache version must advance monotonically: "
                    f"got {version}, current {self._version}"
                )
            for seed in list(self._columns.keys()):
                if self._tags.get(seed, 0) != self._version:
                    # an entry from an even older version (should not
                    # happen — advance retags survivors — but never
                    # carry unknown bytes forward)
                    self._drop(seed)
                    dropped += 1
                elif _in_ranges(seed, ranges):
                    self._drop(seed)
                    dropped += 1
                elif ranges:
                    if recompute_rows is None:
                        self._drop(seed)
                        dropped += 1
                        continue
                    column = self._columns[seed].copy()
                    try:
                        for start, stop in ranges:
                            column[start:stop] = recompute_rows(
                                seed, start, stop
                            )
                    except Exception:
                        self._drop(seed)
                        dropped += 1
                        continue
                    column.flags.writeable = False
                    self._columns[seed] = column
                    self._tags[seed] = int(version)
                    if self._validate:
                        self._checksums[seed] = _fingerprint(column)
                    patched += 1
                else:
                    self._tags[seed] = int(version)
                    retained += 1
            self._version = int(version)
        return {"dropped": dropped, "patched": patched, "retained": retained}

    def clear(self) -> None:
        """Drop every resident column (counters are preserved)."""
        with self._lock:
            self._columns.clear()
            self._checksums.clear()
            self._tags.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_column(self, seed: int, column: np.ndarray) -> np.ndarray:
        column = np.asarray(column)
        if column.ndim != 1:
            raise InvalidParameterError(
                f"cached column for seed {seed} must be 1-D, "
                f"got shape {column.shape}"
            )
        if self._num_rows is not None and column.shape[0] != self._num_rows:
            raise InvalidParameterError(
                f"cached column for seed {seed} has {column.shape[0]} rows, "
                f"expected {self._num_rows}"
            )
        if self._dtype is not None and column.dtype != self._dtype:
            raise InvalidParameterError(
                f"cached column for seed {seed} has dtype {column.dtype}, "
                f"expected {self._dtype}"
            )
        return column

    def _drop(self, seed: int) -> None:
        """Remove one entry (lock held by caller)."""
        column = self._columns.pop(seed, None)
        self._checksums.pop(seed, None)
        self._tags.pop(seed, None)
        if column is not None:
            self._bytes -= column.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ColumnCache(capacity={self._capacity}, "
                f"columns={len(self._columns)}, bytes={self._bytes})"
            )


class TopKCache:
    """LRU map ``(seed, exclude_self) -> (k', TopKResult)``.

    The prefix property does the heavy lifting: results are stored in
    the engine's deterministic order (descending score, ties by
    ascending id), so a resident top-``k'`` ranking answers any request
    with ``k <= k'`` by slicing its first ``k`` entries — no
    recomputation, no approximation.  A ranking that already contains
    *every* candidate (``k'`` exceeded the candidate count) answers any
    ``k`` at all.  Requests deeper than the resident entry miss, and
    the fresh, deeper result replaces the shallower one.

    Mutation mirrors :class:`ColumnCache`: one reentrant lock guards
    the map and the hit/miss/eviction counters, stored arrays are
    marked read-only, and ``capacity=0`` disables caching outright.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise InvalidParameterError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self._capacity = int(capacity)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[int, bool], Tuple[int, TopKResult]]" = (
            OrderedDict()
        )
        self._tags: Dict[Tuple[int, bool], int] = {}
        self._version = 0
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def version(self) -> int:
        """The index version current entries are tagged for."""
        with self._lock:
            return self._version

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> Dict[str, int]:
        """A consistent snapshot of all counters and occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "cached_entries": len(self._entries),
                "bytes_cached": self._bytes,
            }

    # ------------------------------------------------------------------
    @staticmethod
    def _nbytes(result: TopKResult) -> int:
        return int(result.nodes.nbytes) + int(result.scores.nbytes)

    @staticmethod
    def _answers(stored_k: int, result: TopKResult, k: int) -> bool:
        # k <= k': slice the prefix.  nodes.size < k': the ranking ran
        # out of candidates before k', i.e. it is complete — any depth
        # is answerable.
        return k <= stored_k or result.nodes.size < stored_k

    @staticmethod
    def _slice(result: TopKResult, k: int) -> TopKResult:
        if result.nodes.size <= k:
            return result
        return TopKResult(
            nodes=result.nodes[:k],
            scores=result.scores[:k],
            candidates_scored=result.candidates_scored,
            blocks_scanned=result.blocks_scanned,
            blocks_skipped=result.blocks_skipped,
        )

    def lookup(
        self,
        seeds: Iterable[int],
        k: int,
        exclude_self: bool,
        version: Optional[int] = None,
    ) -> Tuple[Dict[int, TopKResult], List[int]]:
        """Probe for each seed's ranking at depth ``k`` atomically.

        Returns ``(hits, misses)``: ``hits`` maps seed -> a
        :class:`~repro.core.topk.TopKResult` sliced to depth ``k``
        (scan counters kept from the original computation), ``misses``
        lists seeds needing a fresh scan, in input order.  An entry
        that is resident but too shallow for ``k`` counts as a miss —
        as does one tagged for a different index version than the
        caller pinned (``version=None`` means the current one).
        """
        hit_results: Dict[int, TopKResult] = {}
        missing: List[int] = []
        with self._lock:
            wanted = self._version if version is None else int(version)
            for seed in seeds:
                seed = int(seed)
                key = (seed, bool(exclude_self))
                entry = self._entries.get(key)
                if (
                    entry is not None
                    and self._tags.get(key, 0) == wanted
                    and self._answers(entry[0], entry[1], k)
                ):
                    self.hits += 1
                    self._entries.move_to_end(key)
                    hit_results[seed] = self._slice(entry[1], k)
                else:
                    self.misses += 1
                    missing.append(seed)
        return hit_results, missing

    def insert(
        self,
        results: Dict[int, TopKResult],
        k: int,
        exclude_self: bool,
        version: Optional[int] = None,
    ) -> int:
        """Store fresh depth-``k`` rankings, evicting LRU entries.

        A resident entry is replaced only when the incoming one is at
        least as deep (a shallower insert would *lose* answerable
        depths).  An insert tagged with a version older than the
        cache's current one is silently dropped (stale producer, as for
        :meth:`ColumnCache.insert`).  Returns the number of evictions
        caused.
        """
        if self._capacity == 0 or not results:
            return 0
        evicted_count = 0
        with self._lock:
            tag = self._version if version is None else int(version)
            if tag != self._version:
                return 0
            for seed, result in results.items():
                key = (int(seed), bool(exclude_self))
                previous = self._entries.get(key)
                if previous is not None and previous[0] > k:
                    self._entries.move_to_end(key)
                    continue
                result.nodes.flags.writeable = False
                result.scores.flags.writeable = False
                if previous is not None:
                    self._bytes -= self._nbytes(previous[1])
                    del self._entries[key]
                self._entries[key] = (int(k), result)
                self._tags[key] = tag
                self._bytes += self._nbytes(result)
            while len(self._entries) > self._capacity:
                evicted_key, (_, evicted) = self._entries.popitem(last=False)
                self._tags.pop(evicted_key, None)
                self._bytes -= self._nbytes(evicted)
                self.evictions += 1
                evicted_count += 1
        return evicted_count

    def advance(self, version: int, dirty_ranges: DirtyRanges) -> Dict[str, int]:
        """Publish a new index version over the ranking cache.

        A clean swap (no dirty ranges — e.g. a byte-no-op update batch)
        retags every entry: the rankings' bytes are provably unchanged.
        Any dirty range clears the cache instead: a ranking is a global
        ordering over *all* candidates, so a changed row anywhere can
        displace entries and no per-range patch can restore the prefix
        guarantee.  Returns ``{"dropped", "retained"}`` counts.
        """
        ranges = _normalize_ranges(dirty_ranges)
        with self._lock:
            if int(version) <= self._version:
                raise InvalidParameterError(
                    f"cache version must advance monotonically: "
                    f"got {version}, current {self._version}"
                )
            if ranges:
                dropped = len(self._entries)
                retained = 0
                self._entries.clear()
                self._tags.clear()
                self._bytes = 0
            else:
                dropped = 0
                retained = len(self._entries)
                for key in self._entries:
                    self._tags[key] = int(version)
            self._version = int(version)
        return {"dropped": dropped, "retained": retained}

    def clear(self) -> None:
        """Drop every resident ranking (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._tags.clear()
            self._bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"TopKCache(capacity={self._capacity}, "
                f"entries={len(self._entries)}, bytes={self._bytes})"
            )
