"""Per-request outcome types for degraded batch serving.

Theorem 3.5 makes every output column a function of its own seed, so a
batch has no shared fate: when one seed's computation fails or a
deadline cancels part of the work, the unaffected requests can still be
answered bit-exactly.  :class:`BatchResult` is the honest shape of that
fact — one :class:`RequestOutcome` per request, each either a result
block or a typed :class:`~repro.errors.ReproError`.

``CoSimRankService.serve_batch`` keeps its all-or-raise list-of-arrays
contract by default and derives it from this type; callers that want
graceful degradation use ``serve_batch_detailed`` (or
``serve_batch(..., partial=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = ["RequestOutcome", "BatchResult"]


@dataclass
class RequestOutcome:
    """The fate of one request in a batch: a block or a typed error.

    ``request_id`` is the correlation handle minted by the service
    (``batch-<seq>.<index>``): the same id appears on the batch span's
    ``request_ids`` attribute and in the slow-query JSON log line, so a
    slow or failed request can be joined across trace, log, and outcome
    (docs/observability.md).

    ``tier`` records which serving tier produced the outcome:
    ``"exact"`` for the CSR+ index path (bit-exact under Theorem 3.5),
    ``"approx"`` for the sketched replica — including requests that a
    ``quality="auto"`` batch downgraded instead of shedding.  Approx
    answers carry the :func:`~repro.serving.approx.approx_query_atol`
    error contract and are never cached into the exact caches
    (docs/approx.md).
    """

    result: Optional[np.ndarray] = None
    error: Optional[ReproError] = None
    request_id: Optional[str] = None
    tier: str = "exact"

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> np.ndarray:
        """The result block, raising the typed error for failures."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


@dataclass
class BatchResult:
    """Everything one ``serve_batch_detailed`` call produced.

    Attributes
    ----------
    outcomes:
        One :class:`RequestOutcome` per input request, in order.
    retries:
        Per-seed isolation retries attempted after chunk failures.
    failed_seeds:
        Seeds that could not be computed, with their typed errors.
    cancelled_seeds:
        Seeds never started because the deadline passed.
    """

    outcomes: List[RequestOutcome] = field(default_factory=list)
    retries: int = 0
    failed_seeds: Dict[int, ReproError] = field(default_factory=dict)
    cancelled_seeds: Tuple[int, ...] = ()
    #: Correlation id of the whole batch; each outcome's ``request_id``
    #: is ``<batch_id>.<index>``.
    batch_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def num_failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    def results(self) -> List[np.ndarray]:
        """All result blocks; raises the first typed error if any failed."""
        return [outcome.unwrap() for outcome in self.outcomes]

    def partial_results(self) -> List[Optional[np.ndarray]]:
        """Result blocks with ``None`` holes where requests failed."""
        return [outcome.result if outcome.ok else None for outcome in self.outcomes]

    def errors(self) -> List[Optional[ReproError]]:
        """Per-request errors (``None`` for successes), in request order."""
        return [outcome.error for outcome in self.outcomes]
