"""Multi-process network front end over shared-memory shards.

See docs/frontend.md.  The pieces:

* :mod:`~repro.serving.frontend.protocol` — the JSON wire format
  (bit-exact array envelopes, typed-error round-trips);
* :mod:`~repro.serving.frontend.worker` — worker processes that mmap
  the sharded store read-only and run the unchanged kernels, plus the
  :class:`WorkerPool` that owns and respawns them;
* :mod:`~repro.serving.frontend.pooled` — proxy indexes that let
  :class:`~repro.serving.service.CoSimRankService` *be* the dispatcher;
* :mod:`~repro.serving.frontend.metrics` — the summing merge of
  per-worker metric snapshots into one Prometheus scrape;
* :mod:`~repro.serving.frontend.server` — the asyncio HTTP server with
  cross-request coalescing and graceful drain;
* :mod:`~repro.serving.frontend.client` — the stdlib keep-alive client
  that quacks like the service for ``csrplus loadgen --url``.
"""

from repro.serving.frontend.client import FrontendClient
from repro.serving.frontend.metrics import (
    merge_metric_dicts,
    render_merged_prometheus,
)
from repro.serving.frontend.pooled import PooledApproxIndex, PooledIndex
from repro.serving.frontend.protocol import (
    WIRE_VERSION,
    decode_array,
    decode_batch_result,
    encode_array,
    encode_batch_result,
    error_from_wire,
    error_to_wire,
)
from repro.serving.frontend.server import (
    BackgroundFrontend,
    FrontendConfig,
    FrontendServer,
)
from repro.serving.frontend.worker import WorkerPool

__all__ = [
    "WIRE_VERSION",
    "BackgroundFrontend",
    "FrontendClient",
    "FrontendConfig",
    "FrontendServer",
    "PooledApproxIndex",
    "PooledIndex",
    "WorkerPool",
    "decode_array",
    "decode_batch_result",
    "encode_array",
    "encode_batch_result",
    "error_from_wire",
    "error_to_wire",
    "merge_metric_dicts",
    "render_merged_prometheus",
]
