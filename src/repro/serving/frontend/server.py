"""The asyncio HTTP/JSON front end (docs/frontend.md).

One :class:`FrontendServer` is the dispatcher process: it owns the
:class:`~repro.serving.frontend.worker.WorkerPool`, a
:class:`~repro.serving.service.CoSimRankService` built over a
:class:`~repro.serving.frontend.pooled.PooledIndex` (so coalescing,
the ``ColumnCache``/``TopKCache``, admission control, deadlines,
per-seed isolation retries, request-id correlation, and the
``quality=`` tiers are the *same code* that serves in process), and a
small hand-rolled HTTP/1.1 layer on asyncio streams — stdlib only, no
framework dependency.

Cross-request coalescing: concurrent HTTP requests with the same
``(quality, deadline)`` signature are merged into **one** service
batch before fan-out, so identical seeds arriving from different
connections are planned, cached, and computed exactly once
(:func:`~repro.serving.scheduler.plan_batch` dedups inside the merged
batch; the dispatcher-side caches dedup against earlier traffic).
The merge window is adaptive: the first arrival opens a
``coalesce_window_s`` collection window, and whatever lands inside it
rides along — under load, batching happens naturally while a batch is
already in flight.

HTTP status mapping (the error taxonomy on the wire):

====================================  =====
condition                             code
====================================  =====
malformed JSON / bad parameters       400
unknown route                         404
admission shed (``ServiceOverloaded``)  503
draining after SIGTERM                503
every outcome ``DeadlineExceeded``    504
anything served (even partly)         200
====================================  =====

Graceful shutdown: SIGTERM (or :meth:`FrontendServer.drain`) stops
admitting new requests (they get 503 + ``Connection: close``), lets
in-flight batches run to completion, then shuts the worker pool down
with a coordinated ``shutdown`` message per worker — no orphaned
processes, no half-answered request.
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceeded,
    InvalidParameterError,
    ReproError,
    ServiceOverloaded,
)
from repro.obs import MetricsRegistry
from repro.serving.frontend.metrics import render_merged_prometheus
from repro.serving.frontend.pooled import PooledApproxIndex, PooledIndex
from repro.serving.frontend.protocol import (
    WIRE_VERSION,
    encode_batch_result,
    error_to_wire,
)
from repro.serving.frontend.worker import WorkerPool
from repro.serving.service import QUALITY_LEVELS, CoSimRankService

logger = logging.getLogger("repro.serving.frontend")

__all__ = ["FrontendConfig", "FrontendServer", "BackgroundFrontend"]


@dataclass(frozen=True)
class FrontendConfig:
    """Knobs of the HTTP front end (see docs/frontend.md)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Worker *processes*; also sizes the dispatcher's chunk fan-out
    #: threads so every worker can be busy at once.
    workers: int = 4
    #: Seeds per worker task.  Smaller than the in-process default (64):
    #: a coalesced batch should split across processes, and the per-task
    #: pipe overhead is amortised after a handful of GEMVs.
    chunk_size: int = 16
    query_mode: Optional[str] = None
    cache_columns: int = 1024
    topk_cache_entries: int = 1024
    max_inflight_seeds: Optional[int] = None
    #: How long the first request of a merge group waits for company.
    coalesce_window_s: float = 0.002
    drain_timeout_s: float = 30.0
    max_body_bytes: int = 64 << 20
    #: Expose the ``/admin/*`` surface (publish, fault injection,
    #: worker crash) — operational/chaos hooks, not query traffic.
    admin: bool = True
    validate_reads: bool = False


class _BadRequest(Exception):
    """Parse-level HTTP failure (maps to 400)."""


class FrontendServer:
    """Asyncio HTTP server fanning CoSimRank queries to worker processes."""

    def __init__(
        self,
        store_path: str,
        *,
        config: Optional[FrontendConfig] = None,
        approx_path: Optional[str] = None,
        graph=None,
        mp_context=None,
    ):
        self.config = config or FrontendConfig()
        self.pool = WorkerPool(
            store_path,
            self.config.workers,
            query_mode=self.config.query_mode,
            validate_reads=self.config.validate_reads,
            approx_path=approx_path,
            graph=graph,
            mp_context=mp_context,
        )
        try:
            meta = self.pool.describe()
            self._meta = meta
            index = PooledIndex(self.pool, meta, version=0)
            approx = (
                PooledApproxIndex(self.pool, meta, version=0)
                if meta.get("has_approx")
                else None
            )
            self.service = CoSimRankService(
                index,
                cache_columns=self.config.cache_columns,
                topk_cache_entries=self.config.topk_cache_entries,
                max_workers=self.config.workers,
                chunk_size=self.config.chunk_size,
                query_mode=self.config.query_mode,
                max_inflight_seeds=self.config.max_inflight_seeds,
                approx_index=approx,
            )
        except Exception:
            self.pool.close(timeout_s=2.0)
            raise
        self.num_nodes = int(meta["num_nodes"])
        self._version = 0
        self._publish_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers * 2 + 4,
            thread_name_prefix="csrplus-frontend",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.port: Optional[int] = None
        self._draining = False
        self._drained = False
        self._inflight = 0
        self._writers: "set" = set()
        self._pending: Dict[tuple, List[Tuple[list, asyncio.Future]]] = {}
        self._flushers: Dict[tuple, asyncio.Task] = {}
        self._done: Optional[asyncio.Event] = None

        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "csrplus_frontend_http_requests_total",
            "HTTP requests answered by the frontend, by route and status",
        )
        self._m_by_code: Dict[Tuple[str, int], Any] = {}
        self._m_seconds = self.metrics.histogram(
            "csrplus_frontend_http_request_seconds",
            "Wall time from request parse to response flush",
        )
        self._m_coalesced_batches = self.metrics.counter(
            "csrplus_frontend_coalesced_batches_total",
            "Service batches dispatched by the coalescer",
        )
        self._m_coalesced_requests = self.metrics.counter(
            "csrplus_frontend_coalesced_requests_total",
            "HTTP requests merged into coalesced service batches",
        )
        self._m_inflight = self.metrics.gauge(
            "csrplus_frontend_inflight_requests",
            "HTTP requests currently being served",
        )
        self._m_draining = self.metrics.gauge(
            "csrplus_frontend_draining",
            "1 while the frontend refuses new work pending shutdown",
        )
        self._m_workers_alive = self.metrics.gauge(
            "csrplus_frontend_workers_alive",
            "Worker processes currently alive",
        )
        self._m_respawns = self.metrics.gauge(
            "csrplus_frontend_worker_respawns_total",
            "Worker processes respawned after a crash",
        )
        self._m_index_version = self.metrics.gauge(
            "csrplus_frontend_index_version",
            "Store version the frontend currently serves",
        )
        self._m_workers_alive.set(self.config.workers)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FrontendServer":
        self._loop = asyncio.get_event_loop()
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "frontend listening on %s:%d (%d workers, pids %s)",
            self.config.host, self.port, self.config.workers,
            self.pool.worker_pids(),
        )
        return self

    @property
    def url(self) -> str:
        if self.port is None:
            raise InvalidParameterError("server not started")
        return f"http://{self.config.host}:{self.port}"

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )

    async def run_until_drained(self) -> None:
        """Block until :meth:`drain` (typically via SIGTERM) completes."""
        assert self._done is not None, "call start() first"
        await self._done.wait()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight, stop pool."""
        if self._draining:
            return
        self._draining = True
        self._m_draining.set(1)
        logger.info("frontend draining: waiting for in-flight requests")
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self.config.drain_timeout_s
        while (
            self._inflight > 0 or self._pending or self._flushers
        ) and loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # pragma: no cover - already closed
                pass
        await loop.run_in_executor(
            None, functools.partial(self.pool.close, self.config.drain_timeout_s)
        )
        self.service.close()
        self._executor.shutdown(wait=False)
        self._drained = True
        if self._done is not None:
            self._done.set()
        logger.info("frontend drained: all workers stopped")

    # ------------------------------------------------------------------
    # live-version plumbing (docs/dynamic.md across processes)
    # ------------------------------------------------------------------
    def publish_store(
        self,
        store_path: str,
        *,
        dirty_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        approx_path: Optional[str] = None,
    ) -> int:
        """Swap every worker (and the dispatcher caches) to a new store.

        The cross-process analogue of
        :meth:`~repro.serving.service.CoSimRankService.publish_index`:
        workers open the new store alongside the old one (pinned
        batches keep finishing on the version they entered with), then
        the service swaps its :class:`PooledIndex` pointer and
        upgrades the caches — row-patching survivors through the
        pool's ``gather`` RPCs, bit-identically to a fresh compute.
        ``dirty_ranges`` defaults to everything-dirty (the
        conservative choice when the caller has no repair report).
        """
        with self._publish_lock:
            version = self._version + 1
            self.pool.publish(version, store_path, approx_path)
            meta = self.pool.describe()
            if int(meta["num_nodes"]) != self.num_nodes:
                raise InvalidParameterError(
                    "published store must cover the same node set: serving "
                    f"{self.num_nodes} nodes, got {meta['num_nodes']}"
                )
            index = PooledIndex(self.pool, meta, version)
            approx = (
                PooledApproxIndex(self.pool, meta, version)
                if meta.get("has_approx")
                else None
            )
            published = self.service.publish_index(
                index, dirty_ranges=dirty_ranges, approx_index=approx
            )
            self._version = version
            self._m_index_version.set(version)
            if published != version:  # pragma: no cover - defensive
                logger.warning(
                    "service version %d != frontend version %d",
                    published, version,
                )
            return version

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer, 400,
                        {"error": {"type": "InvalidParameterError",
                                   "message": str(exc)}},
                        close=True,
                    )
                    return
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    OSError,
                ):
                    return
                if request is None:
                    return
                method, path, headers, body = request
                if self._draining:
                    await self._respond(
                        writer, 503,
                        {"error": {
                            "type": "ServiceUnavailable",
                            "message": "server is draining",
                        }},
                        close=True,
                    )
                    return
                self._inflight += 1
                self._m_inflight.set(self._inflight)
                started = asyncio.get_event_loop().time()
                try:
                    status, payload, content_type = await self._dispatch(
                        method, path, body
                    )
                finally:
                    self._inflight -= 1
                    self._m_inflight.set(self._inflight)
                route = path.split("?", 1)[0]
                self._count_request(route, status)
                self._m_seconds.observe(
                    asyncio.get_event_loop().time() - started
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                await self._respond(
                    writer, status, payload,
                    content_type=content_type, close=not keep_alive,
                )
                if not keep_alive:
                    return
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - already closed
                pass

    def _count_request(self, route: str, code: int) -> None:
        key = (route, code)
        counter = self._m_by_code.get(key)
        if counter is None:
            counter = self.metrics.counter(
                "csrplus_frontend_http_requests_total",
                "HTTP requests answered by the frontend, by route and status",
                labels={"route": route, "code": str(code)},
            )
            self._m_by_code[key] = counter
        counter.inc()

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line: {line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n"):
                break
            if not header:
                raise _BadRequest("truncated headers")
            name, sep, value = header.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header: {header!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest("malformed Content-Length")
        if length < 0 or length > self.config.max_body_bytes:
            raise _BadRequest(
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _respond(
        self,
        writer,
        status: int,
        payload,
        *,
        content_type: str = "application/json",
        close: bool = False,
    ) -> None:
        reasons = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 503: "Service Unavailable",
            504: "Gateway Timeout",
        }
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload).encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload
        head = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if status == 503:
            head.append("Retry-After: 1")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        try:
            await writer.drain()
        except (ConnectionResetError, OSError):  # pragma: no cover - client gone
            pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._healthz(), "application/json"
            if path == "/metrics" and method == "GET":
                text = await self._run_blocking(self._render_metrics)
                return 200, text, "text/plain; version=0.0.4"
            if path in ("/healthz", "/metrics"):
                return 405, {"error": {"type": "InvalidParameterError",
                                       "message": "use GET"}}, "application/json"
            if path == "/v1/query" and method == "POST":
                return await self._handle_query(body)
            if path == "/v1/topk" and method == "POST":
                return await self._handle_topk(body)
            if path.startswith("/admin/") and self.config.admin:
                return await self._handle_admin(method, path, body)
            return 404, {"error": {"type": "InvalidParameterError",
                                   "message": f"no route {path}"}}, \
                "application/json"
        except InvalidParameterError as exc:
            return 400, {"error": error_to_wire(exc)}, "application/json"
        except ServiceOverloaded as exc:
            return 503, {"error": error_to_wire(exc)}, "application/json"
        except ReproError as exc:
            return 500, {"error": error_to_wire(exc)}, "application/json"

    def _healthz(self) -> Dict[str, Any]:
        alive = self.pool.alive_workers()
        self._m_workers_alive.set(alive)
        self._m_respawns.set(self.pool.respawns)
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": WIRE_VERSION,
            "num_nodes": self.num_nodes,
            "index_version": self._version,
            "workers_alive": alive,
            "workers_total": self.config.workers,
            "worker_pids": self.pool.worker_pids(),
            "query_mode": self.service.query_mode,
        }

    def _render_metrics(self) -> str:
        self._m_workers_alive.set(self.pool.alive_workers())
        self._m_respawns.set(self.pool.respawns)
        dumps = [
            self.service.registry.as_dict(),
            self.metrics.as_dict(),
        ]
        dumps.extend(self.pool.metrics_snapshots())
        return render_merged_prometheus(dumps)

    async def _run_blocking(self, fn, *args, **kwargs):
        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args, **kwargs)
        )

    # ------------------------------------------------------------------
    # query routes
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, Any]:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidParameterError(f"request body is not JSON: {exc}")
        if not isinstance(parsed, dict):
            raise InvalidParameterError("request body must be a JSON object")
        return parsed

    @staticmethod
    def _parse_common(obj: Dict[str, Any]) -> Tuple[str, Optional[float]]:
        quality = obj.get("quality", "exact")
        if quality not in QUALITY_LEVELS:
            raise InvalidParameterError(
                f"quality must be one of {QUALITY_LEVELS}, got {quality!r}"
            )
        deadline_ms = obj.get("deadline_ms")
        if deadline_ms is None:
            return quality, None
        try:
            deadline_s = float(deadline_ms) / 1000.0
        except (TypeError, ValueError):
            raise InvalidParameterError(
                f"deadline_ms must be a number, got {deadline_ms!r}"
            )
        if deadline_s <= 0:
            raise InvalidParameterError(
                f"deadline_ms must be > 0, got {deadline_ms}"
            )
        return quality, deadline_s

    async def _handle_query(self, body: bytes):
        obj = self._parse_json(body)
        if "requests" in obj:
            requests = obj["requests"]
        elif "seeds" in obj:
            requests = [obj["seeds"]]
        else:
            raise InvalidParameterError(
                'query body needs "requests" (list of seed lists) or '
                '"seeds" (one seed list)'
            )
        if not isinstance(requests, list) or not all(
            isinstance(request, list) for request in requests
        ):
            raise InvalidParameterError(
                '"requests" must be a list of seed lists'
            )
        if not requests:
            raise InvalidParameterError("empty batch")
        quality, deadline_s = self._parse_common(obj)
        key = ("query", quality, deadline_s)
        batch, positions = await self._coalesce(key, requests)
        wire = encode_batch_result(batch, positions)
        return self._status_for(batch, positions), wire, "application/json"

    async def _handle_topk(self, body: bytes):
        obj = self._parse_json(body)
        seeds = obj.get("seeds")
        if not isinstance(seeds, list) or not seeds:
            raise InvalidParameterError(
                'top-k body needs a non-empty "seeds" list'
            )
        try:
            k = int(obj.get("k", 10))
        except (TypeError, ValueError):
            raise InvalidParameterError(f"k must be an integer, got {obj.get('k')!r}")
        exclude_self = bool(obj.get("exclude_self", True))
        quality, deadline_s = self._parse_common(obj)
        key = ("topk", quality, deadline_s, k, exclude_self)
        batch, positions = await self._coalesce(key, seeds)
        wire = encode_batch_result(batch, positions)
        return self._status_for(batch, positions), wire, "application/json"

    def _status_for(self, batch, positions) -> int:
        outcomes = [batch.outcomes[i] for i in positions]
        if outcomes and all(
            isinstance(outcome.error, DeadlineExceeded) for outcome in outcomes
        ):
            return 504
        return 200

    # ------------------------------------------------------------------
    # the coalescer
    # ------------------------------------------------------------------
    async def _coalesce(self, key: tuple, items: list):
        """Queue ``items`` under ``key`` and await the merged result.

        Returns ``(BatchResult, positions)`` where ``positions`` index
        this caller's outcomes inside the merged batch.
        """
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.setdefault(key, []).append((items, future))
        if key not in self._flushers:
            self._flushers[key] = loop.create_task(self._flush(key))
        return await future

    async def _flush(self, key: tuple) -> None:
        try:
            if self.config.coalesce_window_s > 0:
                await asyncio.sleep(self.config.coalesce_window_s)
            else:
                await asyncio.sleep(0)
        finally:
            # unregister *before* dispatching: arrivals during the
            # service call open the next merge group
            bucket = self._pending.pop(key, [])
            self._flushers.pop(key, None)
        if not bucket:
            return
        merged: list = []
        slices: List[Tuple[asyncio.Future, List[int]]] = []
        for items, future in bucket:
            positions = list(range(len(merged), len(merged) + len(items)))
            merged.extend(items)
            slices.append((future, positions))
        self._m_coalesced_batches.inc()
        self._m_coalesced_requests.inc(len(bucket))
        kind, quality, deadline_s = key[0], key[1], key[2]
        if kind == "query":
            call = functools.partial(
                self.service.serve_batch_detailed,
                merged, deadline_s=deadline_s, quality=quality,
            )
        else:
            _, _, _, k, exclude_self = key
            call = functools.partial(
                self.service.serve_topk_detailed,
                merged, k, exclude_self=exclude_self,
                deadline_s=deadline_s, quality=quality,
            )
        try:
            batch = await self._run_blocking(call)
        except BaseException as exc:  # typed errors fan back to every waiter
            for future, _ in slices:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, positions in slices:
            if not future.done():
                future.set_result((batch, positions))

    # ------------------------------------------------------------------
    # admin surface
    # ------------------------------------------------------------------
    async def _handle_admin(self, method: str, path: str, body: bytes):
        if method != "POST":
            return 405, {"error": {"type": "InvalidParameterError",
                                   "message": "admin routes are POST"}}, \
                "application/json"
        if path == "/admin/publish":
            obj = self._parse_json(body)
            store_path = obj.get("store_path")
            if not isinstance(store_path, str) or not store_path:
                raise InvalidParameterError('publish needs a "store_path"')
            dirty = obj.get("dirty_ranges")
            if dirty is not None:
                dirty = [(int(start), int(stop)) for start, stop in dirty]
            version = await self._run_blocking(
                self.publish_store,
                store_path,
                dirty_ranges=dirty,
                approx_path=obj.get("approx_path"),
            )
            return 200, {"index_version": version}, "application/json"
        if path == "/admin/faults":
            obj = self._parse_json(body)
            rules = obj.get("rules")
            if not isinstance(rules, list):
                raise InvalidParameterError('faults needs a "rules" list')
            await self._run_blocking(self.pool.arm_faults, rules)
            return 200, {"armed": len(rules)}, "application/json"
        if path == "/admin/faults/clear":
            await self._run_blocking(self.pool.clear_faults)
            return 200, {"armed": 0}, "application/json"
        if path == "/admin/crash-worker":
            await self._run_blocking(self.pool.crash_worker)
            return 200, {"crashed": 1}, "application/json"
        return 404, {"error": {"type": "InvalidParameterError",
                               "message": f"no admin route {path}"}}, \
            "application/json"


class BackgroundFrontend:
    """A :class:`FrontendServer` on its own event-loop thread.

    The embedding used by tests, ``csrplus bench --frontend``, and any
    caller that wants an HTTP frontend without owning the process'
    main loop.  ``start()`` returns once the socket is bound;
    ``close()`` runs the same graceful drain SIGTERM triggers.
    """

    def __init__(self, store_path: str, **kwargs):
        self._store_path = store_path
        self._kwargs = kwargs
        self.server: Optional[FrontendServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> str:
        self.server = FrontendServer(self._store_path, **self._kwargs)
        self._thread = threading.Thread(
            target=self._run, name="csrplus-frontend-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():  # pragma: no cover - startup hang
            raise InvalidParameterError("frontend failed to start in 30s")
        return self.server.url

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        loop.run_forever()
        loop.close()

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def drain(self, timeout_s: float = 60.0) -> None:
        """Run the graceful shutdown from any thread."""
        if self._loop is None or self.server is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=timeout_s)

    def close(self, timeout_s: float = 60.0) -> None:
        if self._loop is None:
            return
        try:
            self.drain(timeout_s)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=timeout_s)
            self._loop = None

    def __enter__(self) -> "BackgroundFrontend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
