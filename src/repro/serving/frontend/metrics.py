"""Merging per-worker metric snapshots into one scrape (docs/frontend.md).

Every worker process keeps a private
:class:`~repro.obs.MetricsRegistry`; the dispatcher holds two more (the
service's ``csrplus_serve_*`` instruments and the frontend's
``csrplus_frontend_*`` ones).  The stock
:func:`repro.obs.metrics.render_prometheus` refuses duplicate metric
names across registries — the right contract for registries that are
supposed to be disjoint, and exactly wrong for N workers that all
increment ``csrplus_shard_reads_total``.  This module implements the
*summing* merge a multi-process exporter needs:

* samples are keyed by ``(metric name, label set)``;
* counters and histograms with the same key are **summed** (counts,
  sums, and per-bucket tallies) — the scrape reads as one logical
  server, which it is;
* gauges with the same key are summed too (the gauges workers export —
  resident store versions — are extensive quantities; per-worker
  identity, where it matters, is preserved by the ``worker=<id>``
  label the worker-level instruments carry, which keeps their keys
  distinct and the merge a pass-through);
* families with the same name but conflicting types raise
  :class:`~repro.errors.InvalidParameterError` — a scraper would
  reject such an exposition, so the server must not emit it.

Input is the JSON form produced by
:meth:`~repro.obs.MetricsRegistry.as_dict` (which is also what travels
over the worker pipe), output is Prometheus text exposition v0.0.4.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import InvalidParameterError

__all__ = ["merge_metric_dicts", "render_merged_prometheus"]

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _merge_samples(
    metric_type: str, into: Dict[str, Any], sample: Dict[str, Any], name: str
) -> None:
    if metric_type == "histogram":
        if "buckets" not in sample:
            raise InvalidParameterError(
                f"histogram {name!r} sample carries no buckets"
            )
        buckets = into.setdefault("buckets", {})
        for bound, count in sample["buckets"].items():
            buckets[bound] = buckets.get(bound, 0) + int(count)
        into["sum"] = into.get("sum", 0.0) + float(sample.get("sum", 0.0))
        into["count"] = into.get("count", 0) + int(sample.get("count", 0))
    else:  # counter / gauge
        if "value" not in sample:
            raise InvalidParameterError(
                f"{metric_type} {name!r} sample carries no value"
            )
        into["value"] = into.get("value", 0.0) + float(sample["value"])


def merge_metric_dicts(dumps: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum any number of ``as_dict`` dumps into one logical dump.

    Stable output order: families sorted by name, samples by label set
    — so two scrapes of the same state render byte-identically.
    """
    families: Dict[str, Dict[str, Any]] = {}
    merged: Dict[str, Dict[_LabelKey, Dict[str, Any]]] = {}
    for dump in dumps:
        for family in dump.get("metrics", []):
            name = family["name"]
            metric_type = family["type"]
            known = families.get(name)
            if known is None:
                families[name] = {
                    "name": name,
                    "type": metric_type,
                    "help": family.get("help", ""),
                }
                merged[name] = {}
            elif known["type"] != metric_type:
                raise InvalidParameterError(
                    f"metric {name!r} is a {known['type']} in one registry "
                    f"and a {metric_type} in another; cannot merge"
                )
            for sample in family.get("samples", []):
                key = _label_key(sample.get("labels", {}))
                into = merged[name].setdefault(key, {"labels": dict(key)})
                _merge_samples(metric_type, into, sample, name)
    out: List[Dict[str, Any]] = []
    for name in sorted(families):
        family = dict(families[name])
        family["samples"] = [merged[name][key] for key in sorted(merged[name])]
        out.append(family)
    return {"metrics": out}


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Dict[str, str], extra: List[Tuple[str, str]] = ()) -> str:
    pairs = [(k, v) for k, v in sorted(labels.items())] + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", r"\\").replace('"', r"\""))
        for k, v in pairs
    )
    return "{" + body + "}"


def _bucket_sort_key(bound: str) -> float:
    return math.inf if bound == "+Inf" else float(bound)


def render_merged_prometheus(dumps: Iterable[Dict[str, Any]]) -> str:
    """One Prometheus text exposition from many registry dumps."""
    merged = merge_metric_dicts(dumps)
    lines: List[str] = []
    for family in merged["metrics"]:
        name, metric_type = family["name"], family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {metric_type}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if metric_type == "histogram":
                for bound in sorted(sample["buckets"], key=_bucket_sort_key):
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, [('le', bound)])} "
                        f"{sample['buckets'][bound]}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
