"""Worker processes and the pool that owns them (docs/frontend.md).

Each worker is a separate Python process that opens the sharded store
*read-only via mmap* (``ShardedIndex(store, mmap=True)``), so every
worker maps the same ``.npy`` shard files and the kernel keeps exactly
one physical copy of ``Z``/``U`` in page cache however many workers
run.  Workers execute the unchanged exact/batched/top-k kernels —
:meth:`~repro.sharding.ShardedIndex.query_columns` and
:func:`~repro.core.topk.top_k_blockwise` — so a column computed in a
worker is bit-identical to one computed in process (Theorem 3.5 plus
the sharding PR's byte-identity contract).

The dispatcher talks to workers over one duplex pipe per worker with a
strict request/response discipline (at most one outstanding task per
worker), which keeps the protocol trivially free of interleaving bugs:
a worker is either idle in ``free`` or owned by exactly one submitting
thread.  A broken pipe mid-task means the worker died; the pool
respawns it before surfacing :class:`~repro.errors.WorkerCrashed`, so
the service's per-seed isolation retries land on a healthy process.

Control messages ride the same pipe between tasks: ``publish`` swaps
in a new store version for zero-downtime live updates, ``metrics``
snapshots the worker's private :class:`~repro.obs.MetricsRegistry`
for the merged ``/metrics`` scrape, and ``faults`` arms the
:mod:`repro.testing.faults` seams *inside* the worker so the chaos
suites can exercise shard-read failures across the process boundary.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError, WorkerCrashed
from repro.serving.frontend.protocol import error_to_wire

logger = logging.getLogger("repro.serving.frontend")

__all__ = ["WorkerPool", "worker_main"]

#: Store versions a worker keeps open besides the newest one: pinned
#: batches may still be finishing on the previous version when a
#: publish lands, so the immediately preceding store must stay usable.
KEEP_VERSIONS = 2


def _pick_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform has it (fast, shares the warm import
    state copy-on-write); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything a worker process keeps between tasks."""

    def __init__(
        self,
        worker_id: int,
        store_path: str,
        *,
        query_mode: Optional[str],
        validate_reads: bool,
        approx_path: Optional[str],
        graph,
    ):
        from repro.obs import MetricsRegistry

        self.worker_id = worker_id
        self.query_mode = query_mode
        self.validate_reads = validate_reads
        self.graph = graph
        self.metrics = MetricsRegistry()
        self.indexes: Dict[int, Any] = {}
        self.approxes: Dict[int, Any] = {}
        self.versions: Dict[int, Tuple[str, Optional[str]]] = {
            0: (store_path, approx_path)
        }
        self.armed_plans: List[Any] = []
        labels = {"worker": str(worker_id)}
        self.m_tasks = self.metrics.counter(
            "csrplus_worker_tasks_total",
            "Tasks executed by a frontend worker process",
            labels=labels,
        )
        self.m_columns = self.metrics.counter(
            "csrplus_worker_columns_total",
            "Similarity columns computed by a frontend worker process",
            labels=labels,
        )
        self.m_task_seconds = self.metrics.histogram(
            "csrplus_worker_task_seconds",
            "Wall time per frontend worker task",
            labels=labels,
        )
        self.m_versions = self.metrics.gauge(
            "csrplus_worker_store_versions",
            "Store versions a frontend worker currently keeps open",
            labels=labels,
        )
        self.m_versions.set(1)

    def index_for(self, version: int):
        index = self.indexes.get(version)
        if index is None:
            from repro.sharding import ShardedIndex

            try:
                store_path, _ = self.versions[version]
            except KeyError:
                raise InvalidParameterError(
                    f"worker {self.worker_id} has no store for version "
                    f"{version} (published: {sorted(self.versions)})"
                )
            index = ShardedIndex(
                store_path,
                query_mode=self.query_mode,
                max_workers=1,  # parallelism comes from processes
                mmap=True,
                validate_reads=self.validate_reads,
                metrics=self.metrics,
            )
            self.indexes[version] = index
        return index

    def approx_for(self, version: int):
        approx = self.approxes.get(version)
        if approx is None:
            from repro.serving.approx import ApproxIndex

            _, approx_path = self.versions.get(version, (None, None))
            if approx_path is None or self.graph is None:
                raise InvalidParameterError(
                    f"worker {self.worker_id} has no approx replica for "
                    f"version {version}"
                )
            approx = ApproxIndex.load(approx_path, self.graph)
            self.approxes[version] = approx
        return approx

    def publish(
        self, version: int, store_path: str, approx_path: Optional[str]
    ) -> None:
        self.versions[version] = (store_path, approx_path)
        # retire everything older than the KEEP_VERSIONS newest stores
        for old in sorted(self.versions)[:-KEEP_VERSIONS]:
            self.versions.pop(old, None)
            retired = self.indexes.pop(old, None)
            if retired is not None:
                retired.close()
            self.approxes.pop(old, None)
        self.m_versions.set(len(self.versions))

    def arm_faults(self, rules: List[Dict[str, Any]]) -> None:
        from repro.testing.faults import FaultPlan

        plan = FaultPlan()
        for rule in rules:
            kind = rule.get("kind", "fail")
            site = rule["site"]
            times = rule.get("times", 1)
            if kind == "fail":
                exc_name = rule.get("exc", "OSError")
                message = rule.get(
                    "message", f"injected worker fault at {site}"
                )
                exc_cls = {"OSError": OSError, "RuntimeError": RuntimeError}[
                    exc_name
                ]
                plan.fail(site, times=times, exc=lambda c=exc_cls, m=message: c(m))
            elif kind == "delay":
                plan.delay(site, seconds=float(rule["seconds"]), times=times)
            else:
                raise InvalidParameterError(
                    f"unknown fault kind {kind!r} (use fail or delay)"
                )
        plan.__enter__()
        self.armed_plans.append(plan)

    def clear_faults(self) -> None:
        while self.armed_plans:
            self.armed_plans.pop().__exit__(None, None, None)


def worker_main(
    conn,
    worker_id: int,
    store_path: str,
    query_mode: Optional[str] = None,
    validate_reads: bool = False,
    approx_path: Optional[str] = None,
    graph=None,
) -> None:
    """Entry point of one worker process: serve tasks until shutdown.

    The parent coordinates graceful drain by finishing in-flight tasks
    before sending ``shutdown``, so the worker ignores SIGTERM/SIGINT
    itself — a signal delivered to the whole process group must not
    kill a worker mid-column while the parent is still draining.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    state = _WorkerState(
        worker_id,
        store_path,
        query_mode=query_mode,
        validate_reads=validate_reads,
        approx_path=approx_path,
        graph=graph,
    )
    from repro.core.topk import top_k_blockwise

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died: exit quietly
            break
        op = message[0]
        if op == "shutdown":
            break
        if op == "crash":  # test hook: die exactly like a real crash
            os._exit(13)
        started = time.perf_counter()
        try:
            if op == "columns":
                _, version, seeds, mode = message
                block = state.index_for(version).query_columns(seeds, mode=mode)
                state.m_columns.inc(len(seeds))
                reply = ("ok", block)
            elif op == "topk":
                _, version, seeds, k, exclude_self, mode = message
                reply = (
                    "ok",
                    top_k_blockwise(
                        state.index_for(version),
                        seeds,
                        k,
                        exclude_self=exclude_self,
                        mode=mode,
                    ),
                )
            elif op == "approx_columns":
                _, version, seeds = message
                reply = ("ok", state.approx_for(version).query_columns(seeds))
            elif op == "approx_topk":
                _, version, seeds, k, exclude_self = message
                reply = (
                    "ok",
                    state.approx_for(version).top_k_batch(seeds, k, exclude_self),
                )
            elif op == "gather":
                _, version, which, rows = message
                index = state.index_for(version)
                rows = np.asarray(rows, dtype=np.int64)
                gathered = (
                    index.gather_z_rows(rows)
                    if which == "z"
                    else index.gather_u_rows(rows)
                )
                reply = ("ok", np.asarray(gathered))
            elif op == "describe":
                index = state.index_for(max(state.versions))
                meta: Dict[str, Any] = {
                    "num_nodes": int(index.num_nodes),
                    "dtype": str(np.dtype(index.dtype)),
                    "config": {
                        "damping": float(index.config.damping),
                        "rank": int(index.config.rank),
                        "epsilon": float(index.config.epsilon),
                        "query_mode": index.config.query_mode,
                    },
                    "num_shards": int(index._store.num_shards),
                    "versions": sorted(state.versions),
                    "pid": os.getpid(),
                    "has_approx": state.versions[max(state.versions)][1]
                    is not None,
                }
                if meta["has_approx"]:
                    approx = state.approx_for(max(state.versions))
                    meta["approx"] = {
                        "num_projections": int(approx.config.num_projections),
                        "dtype": str(np.dtype(approx.dtype)),
                        "query_atol": float(approx.query_atol()),
                    }
                reply = ("ok", meta)
            elif op == "publish":
                _, version, new_store_path, new_approx_path = message
                state.publish(version, new_store_path, new_approx_path)
                reply = ("ok", sorted(state.versions))
            elif op == "metrics":
                reply = ("ok", state.metrics.as_dict())
            elif op == "faults":
                state.arm_faults(message[1])
                reply = ("ok", None)
            elif op == "faults_clear":
                state.clear_faults()
                reply = ("ok", None)
            elif op == "ping":
                reply = ("ok", "pong")
            else:
                raise InvalidParameterError(f"unknown worker op {op!r}")
        except Exception as exc:  # typed on the other side
            reply = ("error", error_to_wire(exc))
        state.m_tasks.inc()
        state.m_task_seconds.observe(time.perf_counter() - started)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # parent died mid-task
            break
    conn.close()


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class _WorkerHandle:
    __slots__ = ("process", "conn", "worker_id")

    def __init__(self, process, conn, worker_id: int):
        self.process = process
        self.conn = conn
        self.worker_id = worker_id


class WorkerPool:
    """A fixed-size pool of shard-serving worker processes.

    Thread-safe: any number of dispatcher threads may call
    :meth:`submit` concurrently; each blocks until a worker is free,
    sends exactly one task, and returns the worker on completion.

    Parameters
    ----------
    store_path:
        The ``.shards`` directory every worker opens read-only (mmap).
    num_workers:
        Worker process count — the unit the ``>= 2x at 4 workers``
        benchmark contract scales over.
    query_mode:
        Forwarded to each worker's :class:`~repro.sharding.ShardedIndex`.
    approx_path / graph:
        Optional sketch replica (``.approx.npz``) and the graph it was
        built for; enables the ``quality="approx"``/``"auto"`` tier in
        workers.
    mp_context:
        A ``multiprocessing`` context; defaults to fork where
        available (workers inherit the warm import state) else spawn.
    """

    def __init__(
        self,
        store_path: str,
        num_workers: int = 4,
        *,
        query_mode: Optional[str] = None,
        validate_reads: bool = False,
        approx_path: Optional[str] = None,
        graph=None,
        mp_context=None,
    ):
        if num_workers < 1:
            raise InvalidParameterError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        if approx_path is not None and graph is None:
            raise InvalidParameterError(
                "approx_path requires the graph the replica was built for"
            )
        self.store_path = os.fspath(store_path)
        self.num_workers = int(num_workers)
        self.query_mode = query_mode
        self.validate_reads = validate_reads
        self._approx_path = approx_path
        self._graph = graph
        self._ctx = mp_context if mp_context is not None else _pick_context()
        self._lock = threading.Lock()
        self._free: "queue.Queue[int]" = queue.Queue()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._published: List[Tuple[int, str, Optional[str]]] = []
        self._last_metrics: Dict[int, Dict[str, Any]] = {}
        self._respawns = 0
        self._closed = False
        for worker_id in range(self.num_workers):
            self._workers[worker_id] = self._spawn(worker_id)
            self._free.put(worker_id)

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, worker_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                worker_id,
                self.store_path,
                self.query_mode,
                self.validate_reads,
                self._approx_path,
                self._graph,
            ),
            daemon=True,
            name=f"csrplus-worker-{worker_id}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process, parent_conn, worker_id)
        # replay published versions so a respawned worker can serve
        # every version its siblings can
        for version, store_path, approx_path in self._published:
            parent_conn.send(("publish", version, store_path, approx_path))
            status, payload = parent_conn.recv()
            if status != "ok":  # pragma: no cover - deterministic replay
                raise InvalidParameterError(
                    f"version replay failed on worker {worker_id}: {payload}"
                )
        return handle

    def _respawn(self, worker_id: int) -> None:
        with self._lock:
            old = self._workers.get(worker_id)
            if old is not None:
                try:
                    old.conn.close()
                except OSError:  # pragma: no cover - already gone
                    pass
                if old.process.is_alive():  # pragma: no cover - racy crash
                    old.process.terminate()
                old.process.join(timeout=5.0)
            self._workers[worker_id] = self._spawn(worker_id)
            self._respawns += 1

    @property
    def respawns(self) -> int:
        return self._respawns

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [
                handle.process.pid
                for handle in self._workers.values()
                if handle.process.pid is not None
            ]

    def alive_workers(self) -> int:
        with self._lock:
            return sum(
                1 for handle in self._workers.values() if handle.process.is_alive()
            )

    def close(self, timeout_s: float = 10.0) -> None:
        """Drain-and-stop: wait for in-flight tasks, then shut workers down.

        Acquires every worker from the free queue (so no task is
        interrupted), sends ``shutdown``, and joins.  Stragglers past
        the timeout are terminated — they hold no state worth saving.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deadline = time.monotonic() + timeout_s
        acquired: List[int] = []
        for _ in range(self.num_workers):
            remaining = max(0.0, deadline - time.monotonic())
            try:
                acquired.append(self._free.get(timeout=remaining or 0.01))
            except queue.Empty:  # pragma: no cover - stuck worker
                break
        for worker_id, handle in list(self._workers.items()):
            try:
                handle.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- task submission -----------------------------------------------
    def _call(self, worker_id: int, message: tuple):
        handle = self._workers[worker_id]
        try:
            handle.conn.send(message)
            status, payload = handle.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            reason = str(exc) or type(exc).__name__
            exit_code = handle.process.exitcode
            if exit_code is not None:
                reason = f"exit code {exit_code}"
            logger.warning(
                "worker %d crashed mid-task (%s); respawning", worker_id, reason
            )
            self._respawn(worker_id)
            raise WorkerCrashed(worker_id, reason) from exc
        if status == "error":
            from repro.serving.frontend.protocol import error_from_wire

            raise error_from_wire(payload)
        return payload

    def submit(self, op: str, *payload):
        """Run one task on the next free worker (blocking)."""
        if self._closed:
            raise InvalidParameterError("WorkerPool is closed")
        worker_id = self._free.get()
        try:
            return self._call(worker_id, (op,) + payload)
        finally:
            self._free.put(worker_id)

    # -- typed helpers -------------------------------------------------
    def columns(self, version: int, seeds, mode: Optional[str] = None):
        seeds = [int(seed) for seed in seeds]
        return self.submit("columns", version, seeds, mode)

    def topk(
        self,
        version: int,
        seeds,
        k: int,
        exclude_self: bool,
        mode: Optional[str] = None,
    ):
        seeds = [int(seed) for seed in seeds]
        return self.submit("topk", version, seeds, int(k), bool(exclude_self), mode)

    def approx_columns(self, version: int, seeds):
        return self.submit("approx_columns", version, [int(s) for s in seeds])

    def approx_topk(self, version: int, seeds, k: int, exclude_self: bool):
        return self.submit(
            "approx_topk", version, [int(s) for s in seeds], int(k),
            bool(exclude_self),
        )

    def gather(self, version: int, which: str, rows):
        return self.submit("gather", version, which, np.asarray(rows, np.int64))

    def describe(self) -> Dict[str, Any]:
        return self.submit("describe")

    # -- broadcast control ---------------------------------------------
    def _broadcast(self, message: tuple) -> Dict[int, Any]:
        """Send a control message to every worker, one at a time.

        Acquires each worker from the free queue so the message never
        interleaves with a task; busy workers are waited for (control
        traffic is rare and short).
        """
        results: Dict[int, Any] = {}
        acquired: List[int] = []
        try:
            for _ in range(self.num_workers):
                acquired.append(self._free.get())
            for worker_id in sorted(acquired):
                try:
                    results[worker_id] = self._call(worker_id, message)
                except WorkerCrashed:
                    # respawned by _call with versions replayed; a
                    # publish/faults broadcast continues with the rest
                    results[worker_id] = None
        finally:
            for worker_id in acquired:
                self._free.put(worker_id)
        return results

    def publish(
        self, version: int, store_path: str, approx_path: Optional[str] = None
    ) -> None:
        """Swap every worker onto a new store version (live updates)."""
        store_path = os.fspath(store_path)
        with self._lock:
            self._published.append((int(version), store_path, approx_path))
            # a respawned worker only needs versions that can still be
            # pinned: the newest KEEP_VERSIONS
            self._published = self._published[-KEEP_VERSIONS:]
        self._broadcast(("publish", int(version), store_path, approx_path))

    def arm_faults(self, rules: List[Dict[str, Any]]) -> None:
        self._broadcast(("faults", list(rules)))

    def clear_faults(self) -> None:
        self._broadcast(("faults_clear",))

    def crash_worker(self) -> None:
        """Kill one worker mid-protocol (chaos hook; it will respawn on
        the next task that lands on it)."""
        worker_id = self._free.get()
        handle = self._workers[worker_id]
        try:
            handle.conn.send(("crash",))
            handle.process.join(timeout=5.0)
        except (BrokenPipeError, OSError):  # pragma: no cover - already dead
            pass
        finally:
            self._free.put(worker_id)

    def metrics_snapshots(self, timeout_s: float = 1.0) -> List[Dict[str, Any]]:
        """Per-worker registry dumps for the merged ``/metrics`` scrape.

        Busy workers are skipped after ``timeout_s`` and answered from
        their last snapshot — a scrape must never block behind a long
        chunk, and slightly stale samples are normal Prometheus
        behaviour.
        """
        deadline = time.monotonic() + timeout_s
        acquired: List[int] = []
        while len(acquired) < self.num_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                acquired.append(self._free.get(timeout=remaining))
            except queue.Empty:
                break
        try:
            for worker_id in acquired:
                try:
                    self._last_metrics[worker_id] = self._call(
                        worker_id, ("metrics",)
                    )
                except WorkerCrashed:  # pragma: no cover - crash during scrape
                    pass
        finally:
            for worker_id in acquired:
                self._free.put(worker_id)
        return [
            snapshot
            for _, snapshot in sorted(self._last_metrics.items())
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(workers={self.num_workers}, "
            f"store={self.store_path!r}, respawns={self._respawns})"
        )
