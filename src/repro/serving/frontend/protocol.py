"""Wire protocol for the multi-process HTTP front end (docs/frontend.md).

JSON on the outside, raw array bytes on the inside: every numpy array
crossing the HTTP boundary travels as ``{"dtype", "shape", "order",
"data"}`` with ``data`` holding the base64 of the array's exact bytes.
Base64 is lossless, so a decoded block is *bit-identical* to the block
the dispatcher assembled — the frontend inherits the serving layer's
exactness contract (Theorem 3.5 column purity) across the network with
no float-text round-trip in between.

Typed errors cross the wire as ``{"type", "message", ...fields}`` and
are reconstructed into the same :mod:`repro.errors` taxonomy on the
client, so ``csrplus loadgen --url`` classifies HTTP-served outcomes
(shed / deadline / degraded / failed) with the exact rules it applies
in process.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.topk import TopKResult
from repro.errors import (
    ColumnComputeFailed,
    DeadlineExceeded,
    IndexCorrupted,
    InvalidParameterError,
    ReproError,
    ServiceOverloaded,
    ShardCorrupted,
    WorkerCrashed,
)
from repro.serving.results import BatchResult, RequestOutcome

__all__ = [
    "WIRE_VERSION",
    "encode_array",
    "decode_array",
    "encode_topk",
    "decode_topk",
    "error_to_wire",
    "error_from_wire",
    "encode_batch_result",
    "decode_batch_result",
]

#: Version tag embedded in ``/healthz`` so clients can detect skew.
WIRE_VERSION = "csrplus-frontend/v1"

#: Hard cap on a single decoded array (guards the server against a
#: hostile or buggy client allocating unbounded memory).
MAX_ARRAY_BYTES = 1 << 31


# ----------------------------------------------------------------------
# arrays
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """A JSON-safe envelope around an array's exact bytes.

    2-D blocks keep their memory order (the serving layer assembles
    F-ordered blocks; preserving order makes decode a straight
    ``frombuffer`` + reshape with zero copies of the payload beyond the
    base64 transform).
    """
    array = np.asarray(array)
    order = "F" if array.ndim > 1 and array.flags.f_contiguous else "C"
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "order": order,
        "data": base64.b64encode(array.tobytes(order=order)).decode("ascii"),
    }


def decode_array(obj: Dict[str, Any]) -> np.ndarray:
    """Rebuild an array bit-identically from :func:`encode_array` output."""
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(dim) for dim in obj["shape"])
        order = obj.get("order", "C")
        raw = base64.b64decode(obj["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed array envelope: {exc}") from exc
    if order not in ("C", "F"):
        raise InvalidParameterError(f"array order must be C or F, got {order!r}")
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if expected != len(raw):
        raise InvalidParameterError(
            f"array envelope carries {len(raw)} bytes but dtype/shape "
            f"require {expected}"
        )
    if expected > MAX_ARRAY_BYTES:
        raise InvalidParameterError(
            f"array envelope of {expected} bytes exceeds the "
            f"{MAX_ARRAY_BYTES}-byte wire limit"
        )
    flat = np.frombuffer(raw, dtype=dtype)
    # copy out of the read-only base64 buffer into owned, writable memory
    return np.array(flat.reshape(shape, order=order), order=order, copy=True)


# ----------------------------------------------------------------------
# top-k rankings
# ----------------------------------------------------------------------
def encode_topk(result: TopKResult) -> Dict[str, Any]:
    return {
        "nodes": encode_array(result.nodes),
        "scores": encode_array(result.scores),
        "candidates_scored": int(result.candidates_scored),
        "blocks_scanned": int(result.blocks_scanned),
        "blocks_skipped": int(result.blocks_skipped),
    }


def decode_topk(obj: Dict[str, Any]) -> TopKResult:
    try:
        return TopKResult(
            nodes=decode_array(obj["nodes"]),
            scores=decode_array(obj["scores"]),
            candidates_scored=int(obj.get("candidates_scored", 0)),
            blocks_scanned=int(obj.get("blocks_scanned", 0)),
            blocks_skipped=int(obj.get("blocks_skipped", 0)),
        )
    except (KeyError, TypeError) as exc:
        raise InvalidParameterError(f"malformed top-k envelope: {exc}") from exc


# ----------------------------------------------------------------------
# typed errors
# ----------------------------------------------------------------------
def error_to_wire(error: BaseException) -> Dict[str, Any]:
    """Flatten a typed error into its reconstructible wire form."""
    wire: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, DeadlineExceeded):
        wire.update(
            deadline_seconds=error.deadline_seconds,
            elapsed_seconds=error.elapsed_seconds,
            completed_seeds=error.completed_seeds,
            cancelled_seeds=error.cancelled_seeds,
        )
    elif isinstance(error, ServiceOverloaded):
        wire.update(
            requested=error.requested,
            in_flight=error.in_flight,
            budget=error.budget,
        )
    elif isinstance(error, ColumnComputeFailed):
        cause = getattr(error, "__cause__", None)
        wire.update(
            seed=error.seed,
            reason=str(cause) if cause is not None else "",
        )
    elif isinstance(error, ShardCorrupted):
        wire.update(path=error.path, shard=error.shard, reason=error.reason)
    elif isinstance(error, IndexCorrupted):
        wire.update(path=error.path, reason=error.reason)
    elif isinstance(error, WorkerCrashed):
        wire.update(worker_id=error.worker_id, reason=error.reason)
    return wire


def error_from_wire(obj: Dict[str, Any]) -> ReproError:
    """Rebuild the typed error a wire envelope describes.

    Unknown types degrade to a plain :class:`~repro.errors.ReproError`
    carrying the original type name in its message, so a newer server
    never crashes an older client — it just loses classification
    granularity.
    """
    kind = obj.get("type", "ReproError")
    message = str(obj.get("message", ""))
    try:
        if kind == "DeadlineExceeded":
            return DeadlineExceeded(
                float(obj["deadline_seconds"]),
                float(obj["elapsed_seconds"]),
                completed_seeds=int(obj.get("completed_seeds", 0)),
                cancelled_seeds=int(obj.get("cancelled_seeds", 0)),
            )
        if kind == "ServiceOverloaded":
            return ServiceOverloaded(
                int(obj["requested"]), int(obj["in_flight"]), int(obj["budget"])
            )
        if kind == "ColumnComputeFailed":
            return ColumnComputeFailed(int(obj["seed"]), str(obj.get("reason", "")))
        if kind == "ShardCorrupted":
            return ShardCorrupted(
                str(obj["path"]), int(obj["shard"]), str(obj["reason"])
            )
        if kind == "IndexCorrupted":
            return IndexCorrupted(str(obj["path"]), str(obj["reason"]))
        if kind == "WorkerCrashed":
            return WorkerCrashed(int(obj["worker_id"]), str(obj.get("reason", "")))
        if kind == "InvalidParameterError":
            return InvalidParameterError(message)
    except (KeyError, TypeError, ValueError):
        pass  # malformed fields: fall through to the generic form
    if kind == "ReproError":
        return ReproError(message)
    return ReproError(f"{kind}: {message}")


# ----------------------------------------------------------------------
# batch results
# ----------------------------------------------------------------------
def _encode_outcome(outcome: RequestOutcome) -> Dict[str, Any]:
    wire: Dict[str, Any] = {
        "request_id": outcome.request_id,
        "tier": outcome.tier,
    }
    if outcome.ok:
        result = outcome.result
        if isinstance(result, TopKResult):
            wire["topk"] = encode_topk(result)
        else:
            wire["block"] = encode_array(result)
    else:
        wire["error"] = error_to_wire(outcome.error)
    return wire


def _decode_outcome(obj: Dict[str, Any]) -> RequestOutcome:
    request_id = obj.get("request_id")
    tier = str(obj.get("tier", "exact"))
    if "error" in obj:
        return RequestOutcome(
            error=error_from_wire(obj["error"]), request_id=request_id, tier=tier
        )
    if "topk" in obj:
        return RequestOutcome(
            result=decode_topk(obj["topk"]), request_id=request_id, tier=tier
        )
    if "block" in obj:
        return RequestOutcome(
            result=decode_array(obj["block"]), request_id=request_id, tier=tier
        )
    raise InvalidParameterError(
        "outcome envelope carries neither a result nor an error"
    )


def encode_batch_result(
    batch: BatchResult, positions: Optional[Sequence[int]] = None
) -> Dict[str, Any]:
    """The full :class:`~repro.serving.results.BatchResult` on the wire.

    ``positions`` selects a slice of the outcomes (the coalescer splits
    one merged service batch back into the HTTP requests it came from)
    while batch-level correlation fields are shared by every slice.
    """
    outcomes = batch.outcomes
    if positions is not None:
        outcomes = [batch.outcomes[i] for i in positions]
    return {
        "batch_id": batch.batch_id,
        "retries": int(batch.retries),
        "failed_seeds": {
            str(seed): error_to_wire(error)
            for seed, error in batch.failed_seeds.items()
        },
        "cancelled_seeds": [int(seed) for seed in batch.cancelled_seeds],
        "outcomes": [_encode_outcome(outcome) for outcome in outcomes],
    }


def decode_batch_result(obj: Dict[str, Any]) -> BatchResult:
    try:
        outcomes: List[RequestOutcome] = [
            _decode_outcome(entry) for entry in obj.get("outcomes", [])
        ]
        return BatchResult(
            outcomes=outcomes,
            retries=int(obj.get("retries", 0)),
            failed_seeds={
                int(seed): error_from_wire(error)
                for seed, error in obj.get("failed_seeds", {}).items()
            },
            cancelled_seeds=tuple(
                int(seed) for seed in obj.get("cancelled_seeds", [])
            ),
            batch_id=obj.get("batch_id"),
        )
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed batch envelope: {exc}") from exc
