"""Stdlib HTTP client for the frontend (docs/frontend.md).

:class:`FrontendClient` duck-types the slice of the
:class:`~repro.serving.service.CoSimRankService` surface that
:func:`~repro.serving.loadgen.run_load` (and user code) drives —
``serve_batch`` / ``serve_batch_detailed`` / ``serve_topk`` /
``serve_topk_detailed`` plus a ``registry`` attribute — so the same
open-loop load generator and the same SLO verdicts run unchanged
against a server across the network.  Built on
:class:`http.client.HTTPConnection` with keep-alive; no third-party
HTTP dependency.

Error mapping mirrors the server's status codes back into the typed
taxonomy: a 503 carrying a ``ServiceOverloaded`` envelope raises
``ServiceOverloaded`` (so the load generator counts a shed, exactly as
in process); 200/504 bodies decode into per-request
:class:`~repro.serving.results.RequestOutcome` objects with their
typed errors reconstructed; transport failures (connection refused,
reset mid-response) degrade to ``ColumnComputeFailed`` outcomes so a
flaky network reads as failed requests, not a crashed load run.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.errors import (
    ColumnComputeFailed,
    InvalidParameterError,
    ReproError,
    ServiceOverloaded,
)
from repro.obs import MetricsRegistry
from repro.serving.frontend.protocol import (
    decode_batch_result,
    error_from_wire,
)
from repro.serving.results import BatchResult, RequestOutcome

__all__ = ["FrontendClient"]


class FrontendClient:
    """A keep-alive HTTP client that quacks like ``CoSimRankService``."""

    def __init__(self, url: str, *, timeout_s: float = 60.0):
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise InvalidParameterError(
                f"frontend URL must look like http://host:port, got {url!r}"
            )
        self.url = url.rstrip("/")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout_s = float(timeout_s)
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Client-side instruments; :func:`run_load` adds its own
        #: ``csrplus_loadgen_*`` family on top of this registry.
        self.registry = MetricsRegistry()
        self._m_requests = self.registry.counter(
            "csrplus_client_http_requests_total",
            "HTTP requests issued by this client",
        )
        self._m_transport_errors = self.registry.counter(
            "csrplus_client_transport_errors_total",
            "Requests that died in transport (refused, reset, timeout)",
        )
        self._m_reconnects = self.registry.counter(
            "csrplus_client_reconnects_total",
            "Times the keep-alive connection had to be re-established",
        )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout_s
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - already dead
                pass
            self._conn = None

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, bytes]:
        """One round-trip; retries exactly once on a stale keep-alive."""
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        headers = {"Content-Type": "application/json"}
        self._m_requests.inc()
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                if response.getheader("Connection", "").lower() == "close":
                    self._drop_connection()
                return response.status, data
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ) as exc:
                self._drop_connection()
                if attempt == 0:
                    # a keep-alive connection the server idled out looks
                    # like a reset on first reuse; one clean retry
                    # distinguishes that from a down server
                    self._m_reconnects.inc()
                    continue
                self._m_transport_errors.inc()
                raise ConnectionError(
                    f"frontend at {self.url} unreachable: {exc}"
                ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def _call(self, path: str, body: Dict[str, Any]) -> Dict[str, Any]:
        status, data = self._request("POST", path, body)
        try:
            obj = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"frontend returned undecodable body (HTTP {status})"
            ) from exc
        if status in (200, 504):
            # 504 = every outcome deadlined; the body still carries the
            # per-request outcomes, decoded like any served batch
            return obj
        error = obj.get("error")
        if isinstance(error, dict):
            raise error_from_wire(error)
        raise ReproError(f"frontend returned HTTP {status}: {data[:200]!r}")

    # ------------------------------------------------------------------
    # the service surface
    # ------------------------------------------------------------------
    def serve_batch_detailed(
        self,
        requests: Sequence[Sequence[int]],
        *,
        deadline_s: Optional[float] = None,
        quality: str = "exact",
    ) -> BatchResult:
        body: Dict[str, Any] = {
            "requests": [[int(seed) for seed in request] for request in requests],
            "quality": quality,
        }
        if deadline_s is not None:
            body["deadline_ms"] = deadline_s * 1000.0
        try:
            wire = self._call("/v1/query", body)
        except (ConnectionError, ReproError) as exc:
            if isinstance(exc, (ServiceOverloaded, InvalidParameterError)):
                raise
            return self._transport_failure(len(requests), exc)
        return decode_batch_result(wire)

    def serve_batch(
        self,
        requests: Sequence[Sequence[int]],
        *,
        deadline_s: Optional[float] = None,
        quality: str = "exact",
    ) -> List[np.ndarray]:
        batch = self.serve_batch_detailed(
            requests, deadline_s=deadline_s, quality=quality
        )
        return [outcome.unwrap() for outcome in batch.outcomes]

    def serve_topk_detailed(
        self,
        seeds: Sequence[int],
        k: int,
        *,
        exclude_self: bool = True,
        deadline_s: Optional[float] = None,
        quality: str = "exact",
    ) -> BatchResult:
        body: Dict[str, Any] = {
            "seeds": [int(seed) for seed in seeds],
            "k": int(k),
            "exclude_self": bool(exclude_self),
            "quality": quality,
        }
        if deadline_s is not None:
            body["deadline_ms"] = deadline_s * 1000.0
        try:
            wire = self._call("/v1/topk", body)
        except (ConnectionError, ReproError) as exc:
            if isinstance(exc, (ServiceOverloaded, InvalidParameterError)):
                raise
            return self._transport_failure(len(seeds), exc)
        return decode_batch_result(wire)

    def serve_topk(
        self,
        seeds: Sequence[int],
        k: int,
        *,
        exclude_self: bool = True,
        deadline_s: Optional[float] = None,
        quality: str = "exact",
    ):
        batch = self.serve_topk_detailed(
            seeds, k, exclude_self=exclude_self,
            deadline_s=deadline_s, quality=quality,
        )
        return [outcome.unwrap() for outcome in batch.outcomes]

    @staticmethod
    def _transport_failure(count: int, exc: BaseException) -> BatchResult:
        outcomes = [
            RequestOutcome(
                error=ColumnComputeFailed(-1, f"transport: {exc}"),
                tier="exact",
            )
            for _ in range(count)
        ]
        return BatchResult(outcomes=outcomes, failed_seeds={})

    # ------------------------------------------------------------------
    # introspection / admin
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        status, data = self._request("GET", "/healthz")
        obj = json.loads(data.decode("utf-8"))
        if status not in (200, 503):
            raise ReproError(f"healthz returned HTTP {status}")
        return obj

    @property
    def num_nodes(self) -> int:
        return int(self.healthz()["num_nodes"])

    def metrics_text(self) -> str:
        status, data = self._request("GET", "/metrics")
        if status != 200:
            raise ReproError(f"/metrics returned HTTP {status}")
        return data.decode("utf-8")

    def publish(
        self,
        store_path: str,
        *,
        dirty_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        approx_path: Optional[str] = None,
    ) -> int:
        body: Dict[str, Any] = {"store_path": str(store_path)}
        if dirty_ranges is not None:
            body["dirty_ranges"] = [
                [int(start), int(stop)] for start, stop in dirty_ranges
            ]
        if approx_path is not None:
            body["approx_path"] = str(approx_path)
        return int(self._call("/admin/publish", body)["index_version"])

    def arm_faults(self, rules: Sequence[Dict[str, Any]]) -> None:
        self._call("/admin/faults", {"rules": list(rules)})

    def clear_faults(self) -> None:
        self._call("/admin/faults/clear", {})

    def crash_worker(self) -> None:
        self._call("/admin/crash-worker", {})

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "FrontendClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrontendClient({self.url!r})"
