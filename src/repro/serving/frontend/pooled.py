"""Proxy indexes that route kernel calls to the worker pool.

:class:`PooledIndex` presents the backend surface
:class:`~repro.serving.service.CoSimRankService` computes against —
``query_columns``, the ``top_k_chunk`` hook, and the
``gather_z_rows``/``gather_u_rows`` pair the cache row-patcher uses —
but every call is an RPC to a :class:`~repro.serving.frontend.worker.
WorkerPool` process.  The service therefore *is* the frontend
dispatcher: plan/coalesce/cache/budget/deadline/retry logic runs once
in the dispatcher process, and only cache *misses* cross the process
boundary, chunked exactly as the in-process path chunks them.  Because
the workers run the unchanged kernels over the same shard bytes, a
block served through a :class:`PooledIndex` is bit-identical to one
served by an in-process :class:`~repro.sharding.ShardedIndex`.

Each proxy is pinned to one store *version*: ``publish`` hands the
frontend a fresh :class:`PooledIndex` for the new version while
batches that pinned the old proxy keep resolving against the old
store (workers keep the previous version open — see
``KEEP_VERSIONS``), which is how
:meth:`~repro.serving.service.CoSimRankService.publish_index`'s
zero-downtime contract extends across processes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.config import CSRPlusConfig
from repro.errors import InvalidParameterError
from repro.serving.approx import approx_query_atol

__all__ = ["PooledIndex", "PooledApproxIndex"]


class PooledIndex:
    """The exact serving surface, evaluated in worker processes."""

    def __init__(self, pool, meta: Dict[str, Any], version: int = 0):
        self._pool = pool
        self._meta = dict(meta)
        self.version = int(version)
        self.num_nodes = int(meta["num_nodes"])
        self.dtype = np.dtype(meta["dtype"])
        config = meta.get("config", {})
        self.config = CSRPlusConfig(
            damping=float(config.get("damping", 0.6)),
            rank=int(config.get("rank", 5)),
            epsilon=float(config.get("epsilon", 1e-4)),
            dtype=str(np.dtype(meta["dtype"])),
            query_mode=config.get("query_mode", "exact"),
        )

    # -- backend surface the service computes against ------------------
    def prepare(self) -> "PooledIndex":
        return self

    @property
    def is_prepared(self) -> bool:
        return True

    def query_columns(self, seeds, mode: Optional[str] = None) -> np.ndarray:
        return self._pool.columns(self.version, seeds, mode)

    def top_k_chunk(
        self,
        seeds,
        k: int,
        *,
        exclude_self: bool = True,
        mode: Optional[str] = None,
    ) -> List[Any]:
        """Whole top-k chunks ranked inside one worker.

        This is the optional backend hook ``CoSimRankService`` prefers
        over running :func:`~repro.core.topk.top_k_blockwise` itself —
        shipping the chunk to the worker keeps the blockwise scan next
        to the mmapped shard bytes instead of streaming row blocks over
        the pipe.
        """
        return self._pool.topk(self.version, seeds, k, exclude_self, mode)

    def gather_z_rows(self, rows) -> np.ndarray:
        return self._pool.gather(self.version, "z", rows)

    def gather_u_rows(self, rows) -> np.ndarray:
        return self._pool.gather(self.version, "u", rows)

    def close(self) -> None:
        """The pool outlives its proxies; closing a proxy is a no-op."""

    def at_version(self, version: int, meta: Optional[Dict[str, Any]] = None):
        """A sibling proxy pinned to another published version."""
        return PooledIndex(self._pool, meta or self._meta, version)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PooledIndex(n={self.num_nodes}, version={self.version}, "
            f"pool={self._pool!r})"
        )


class PooledApproxIndex:
    """The approximate tier's surface, evaluated in worker processes.

    Mirrors what :meth:`CoSimRankService._serve_batch_approx` and
    ``_serve_topk_approx`` touch on an
    :class:`~repro.serving.approx.ApproxIndex`: ``query_columns`` (one
    call per downgraded batch), ``top_k_batch``, ``num_nodes``,
    ``dtype``, ``config.num_projections``, and ``query_atol``.
    """

    class _Config:
        __slots__ = ("num_projections",)

        def __init__(self, num_projections: int):
            self.num_projections = int(num_projections)

    def __init__(self, pool, meta: Dict[str, Any], version: int = 0):
        approx = meta.get("approx")
        if not approx:
            raise InvalidParameterError(
                "worker pool has no approx replica (build the store with "
                "an .approx.npz sidecar to enable quality=approx)"
            )
        self._pool = pool
        self._meta = dict(meta)
        self.version = int(version)
        self.num_nodes = int(meta["num_nodes"])
        self.dtype = np.dtype(approx["dtype"])
        self.config = self._Config(approx["num_projections"])
        self._atol = float(
            approx.get(
                "query_atol",
                approx_query_atol(
                    self.config.num_projections,
                    float(meta.get("config", {}).get("damping", 0.6)),
                ),
            )
        )

    def prepare(self) -> "PooledApproxIndex":
        return self

    def query_atol(self) -> float:
        return self._atol

    def query_columns(self, seeds, mode: Optional[str] = None) -> np.ndarray:
        return self._pool.approx_columns(self.version, seeds)

    def top_k_batch(self, seeds, k: int, exclude_self: bool = True) -> List[Any]:
        return self._pool.approx_topk(self.version, seeds, k, exclude_self)

    def at_version(self, version: int, meta: Optional[Dict[str, Any]] = None):
        return PooledApproxIndex(self._pool, meta or self._meta, version)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PooledApproxIndex(n={self.num_nodes}, "
            f"d={self.config.num_projections}, version={self.version})"
        )
