"""Retry with capped, jittered exponential backoff.

:class:`RetryPolicy` is pure data plus the delay formula; all the
side-effectful parts of :class:`Retrier` — the clock, the sleeper, the
jitter source — are injectable, so tests assert the *exact* sleep
sequence a policy produces without waiting a single real millisecond.

Retry classification follows :mod:`repro.errors`: ``OSError`` (flaky
disk/network) and :class:`~repro.errors.RetryableError` subclasses are
transient; everything else — and in particular
:class:`~repro.errors.IndexCorrupted`, where retrying re-reads the same
bad bytes — propagates on the first attempt.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Type

from repro.errors import InvalidParameterError, RetryableError

__all__ = ["RetryPolicy", "Retrier", "DEFAULT_RETRY_ON"]

#: Exception types retried by default: genuinely transient failures.
DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (OSError, RetryableError)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base * multiplier**k``, capped, then jittered.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retrying).
    base_delay_s / multiplier / max_delay_s:
        Delay before retry ``k`` (1-based) is
        ``min(base_delay_s * multiplier**(k-1), max_delay_s)``.
    jitter:
        Fractional symmetric jitter: the capped delay is scaled by a
        uniform factor in ``[1 - jitter, 1 + jitter]`` so synchronized
        clients fan out instead of retry-stampeding.  ``0`` makes the
        schedule fully deterministic.
    retry_on:
        Exception classes considered transient.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise InvalidParameterError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.multiplier < 1.0:
            raise InvalidParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay_s < self.base_delay_s:
            raise InvalidParameterError(
                f"max_delay_s ({self.max_delay_s}) must be >= "
                f"base_delay_s ({self.base_delay_s})"
            )
        if not (0.0 <= self.jitter < 1.0):
            raise InvalidParameterError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay_for(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """The sleep before retry number ``attempt`` (1-based).

        With ``rng=None`` (or ``jitter=0``) the capped exponential value
        is returned exactly — the deterministic skeleton the jittered
        schedule always stays within ``±jitter`` of.
        """
        if attempt < 1:
            raise InvalidParameterError(
                f"attempt must be >= 1, got {attempt}"
            )
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retry_on)


class Retrier:
    """Executes callables under a :class:`RetryPolicy`.

    Parameters
    ----------
    policy:
        The backoff schedule; defaults to :class:`RetryPolicy()`.
    sleep / rng:
        Injectable side effects.  Tests pass a recording fake for
        ``sleep`` and a seeded ``random.Random`` for ``rng``.
    on_retry:
        Callback ``(attempt, delay_s, exc)`` invoked before each sleep —
        the hook the registry uses to bump its retry counters.

    The ``sleeps`` list records every delay actually requested, oldest
    first, so a test can assert the exact schedule.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    ):
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._on_retry = on_retry
        self.sleeps: List[float] = []

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """``fn(*args, **kwargs)``, retried per the policy.

        The final failure is re-raised unchanged (never wrapped), so
        callers still see the original exception type after the budget
        is exhausted.
        """
        attempt = 1
        while True:
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:
                if (
                    not self.policy.is_retryable(exc)
                    or attempt >= self.policy.max_attempts
                ):
                    raise
                delay = self.policy.delay_for(
                    attempt, self._rng if self.policy.jitter else None
                )
                self.sleeps.append(delay)
                if self._on_retry is not None:
                    self._on_retry(attempt, delay, exc)
                self._sleep(delay)
                attempt += 1
