"""Serving-layer statistics.

:class:`ServingStats` is an immutable-by-convention snapshot of what a
:class:`~repro.serving.service.CoSimRankService` has done so far:
traffic volume, cache effectiveness, and where the wall time went.
The live counters are the ``csrplus_serve_*`` instruments in the
service's :class:`~repro.obs.metrics.MetricsRegistry` (updated under
the service's stats lock); this dataclass is only the *exported* view,
so reading one is always race-free, and its fields agree with a
Prometheus scrape of the same registry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["ServingStats"]


@dataclass
class ServingStats:
    """A consistent snapshot of a service's counters.

    Attributes
    ----------
    requests:
        Individual query requests answered (a batch of ``k`` requests
        counts ``k``).
    batches:
        ``serve_batch`` calls (a single :meth:`~repro.serving.service.
        CoSimRankService.query` counts as a batch of one).
    seeds_requested:
        Total seed columns returned, duplicates included.
    unique_seeds:
        Total distinct seeds looked up in the cache, summed per batch
        (the same seed in two different batches counts twice).  Always
        equals ``hits + misses``.
    hits / misses:
        Cache lookup outcomes, counted per distinct seed per batch.
    evictions:
        Columns discarded by the LRU policy since construction.
    cached_columns / bytes_cached:
        Current cache occupancy.
    cache_capacity:
        Maximum number of resident columns (0 = caching disabled).
    retries:
        Per-seed isolation retries after worker chunk failures
        (``csrplus_serve_retries_total``).
    shed:
        Batches rejected by admission control
        (``csrplus_serve_shed_total``).
    deadline_exceeded:
        Batches whose deadline cancelled at least one seed column
        (``csrplus_serve_deadline_exceeded_total``).
    degraded_requests:
        Requests answered with a typed error while the rest of their
        batch was served (``csrplus_serve_degraded_requests_total``).
    cache_integrity_failures:
        Cached columns dropped because their checksum no longer matched
        (only with ``cache_validate=True``).
    lookup_seconds / compute_seconds / assemble_seconds:
        Cumulative wall time in the three serving phases: cache
        probing, miss computation (``query_columns``), and scattering
        columns into per-request result blocks.  Measured by the
        ``serve.*`` spans, so they are zero while instrumentation is
        disabled (:func:`repro.obs.disable`).
    tier_exact / tier_approx:
        Answered requests per serving tier (docs/approx.md) — column
        requests plus top-k seed requests, each counted exactly once:
        ``tier_exact + tier_approx`` always equals
        ``requests + topk seeds served``.
    approx_batches:
        Batches answered on the approximate tier
        (``csrplus_approx_batches_total``).
    approx_downgrades:
        ``quality="auto"`` batches downgraded to the approximate tier
        instead of shed (``csrplus_approx_downgrades_total``).
    budget_underflows:
        ``SeedBudget.release`` calls exceeding what was acquired — a
        double-release accounting bug surfaced, never swallowed
        (``csrplus_serve_budget_underflow_total``).
    """

    requests: int = 0
    batches: int = 0
    seeds_requested: int = 0
    unique_seeds: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cached_columns: int = 0
    bytes_cached: int = 0
    cache_capacity: int = 0
    retries: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    degraded_requests: int = 0
    cache_integrity_failures: int = 0
    lookup_seconds: float = 0.0
    compute_seconds: float = 0.0
    assemble_seconds: float = 0.0
    tier_exact: int = 0
    tier_approx: int = 0
    approx_batches: int = 0
    approx_downgrades: int = 0
    budget_underflows: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of distinct-seed lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-friendly), including ``hit_rate``."""
        payload = asdict(self)
        payload["hit_rate"] = self.hit_rate
        return payload
