"""The concurrent query-serving front-end for a prepared CSR+ index.

:class:`CoSimRankService` answers multi-source CoSimRank requests on
behalf of many callers:

1. **coalesce** — a batch of requests is validated and its seed set
   deduplicated (:func:`~repro.serving.scheduler.plan_batch`);
2. **admit** — the batch's distinct-seed cost is charged against the
   bounded in-flight budget (:class:`~repro.serving.admission.
   SeedBudget`); over budget, the batch is shed with
   :class:`~repro.errors.ServiceOverloaded` instead of queued;
3. **lookup** — distinct seeds are probed in the per-seed
   :class:`~repro.serving.cache.ColumnCache`;
4. **compute** — cache misses are split into chunks and evaluated with
   :meth:`~repro.core.index.CSRPlusIndex.query_columns`, optionally in
   parallel on a ``ThreadPoolExecutor`` (NumPy's BLAS releases the GIL
   during the matrix products, so threads give real speedup);
5. **assemble** — each request's ``n x |Q|`` block is scattered
   together from the column map.

Exactness (``query_mode="exact"``, the default): because a column is a
pure, batch-independent function of its seed (Theorem 3.5 + per-column
evaluation in ``query_columns``), the service's output is
``np.array_equal`` to calling ``index.query(request)`` directly — for
a cold cache, a warm cache, a tiny cache mid-eviction, or no cache at
all.

Batched fast path (``query_mode="batched"``): each miss chunk is
evaluated as one ``Z @ (U[Q,:])^T`` GEMM — far higher column
throughput under heavy multi-source traffic — and the cache stores the
batch-computed columns under a *tolerance-equivalence* contract
instead of the bit-exact one: every served entry is within
:func:`~repro.core.index.batched_query_atol` of the exact value, and a
cache hit replays the exact bytes of the first computation (serving
stays deterministic per cache state, but a column's bits depend on
which seeds shared its first chunk).  See docs/serving.md.

Robustness (docs/robustness.md): the same per-seed independence means
a batch has no shared fate.  A worker chunk that throws is degraded to
per-seed isolation retries; seeds that still fail poison only the
requests that need them (typed :class:`~repro.errors.
ColumnComputeFailed`), and every other request is answered bit-exactly.
Per-batch deadlines (``deadline_s``) cancel not-yet-started chunks
cooperatively and either raise :class:`~repro.errors.DeadlineExceeded`
or, under the partial-result policy, return the completed blocks.
Every failure path counts in the service's metrics registry
(``csrplus_serve_{retries,shed,deadline_exceeded,degraded_requests}_*``).

Degradation tier (docs/approx.md): a service constructed with an
``approx_index=`` replica (:class:`~repro.serving.approx.ApproxIndex`,
the random-projection sketch of the same graph) gains a per-request
``quality=`` knob on :meth:`CoSimRankService.serve_batch` /
:meth:`CoSimRankService.serve_topk`: ``"exact"`` (default) keeps
today's behaviour, ``"approx"`` answers straight from the sketched
replica, and ``"auto"`` serves exactly until admission control would
shed the batch — then *downgrades* it onto the replica instead of
raising :class:`~repro.errors.ServiceOverloaded`.  Approximate answers
carry ``tier="approx"`` on their outcomes, satisfy the
:func:`~repro.serving.approx.approx_query_atol` AvgDiff contract
against the exact tier, never enter the exact ``ColumnCache`` /
``TopKCache``, and never charge the seed budget (the whole point is
that the sketch is cheap enough to absorb overload).  Tier traffic is
accounted exactly once in ``csrplus_serve_tier_{exact,approx}_total``.

Observability (docs/observability.md): every batch emits a
``serve.batch`` span with nested ``serve.coalesce`` / ``serve.lookup``
/ ``serve.compute`` (plus one ``serve.compute.chunk`` per worker task
and one ``serve.compute.retry`` per isolation retry) /
``serve.assemble`` children, and the service maintains counters,
gauges, and a per-batch latency histogram in a
:class:`~repro.obs.metrics.MetricsRegistry`.
:class:`~repro.serving.stats.ServingStats` snapshots are read straight
from those instruments.  Batches slower than ``slow_query_seconds`` are
logged on the ``repro.serving`` logger and kept in a bounded in-memory
ring (:meth:`CoSimRankService.slow_queries`).
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.core.base import QueryLike, normalize_queries
from repro.core.index import CSRPlusIndex, exact_column_product
from repro.core.topk import TopKResult, top_k_blockwise
from repro.errors import (
    ColumnComputeFailed,
    DeadlineExceeded,
    InvalidParameterError,
    ReproError,
    ServiceOverloaded,
)
from repro.obs.latency import LatencyWindow
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer
from repro.serving.admission import SeedBudget
from repro.serving.cache import ColumnCache, TopKCache
from repro.serving.results import BatchResult, RequestOutcome
from repro.core.config import QUERY_MODES
from repro.serving.scheduler import chunk_seeds, effective_chunk_size, plan_batch
from repro.serving.stats import ServingStats
from repro.testing import faults

__all__ = ["CoSimRankService", "QUALITY_LEVELS"]

logger = logging.getLogger("repro.serving")

#: Serving phases tracked by the ``csrplus_serve_phase_seconds_total``
#: counter and the per-phase spans.
PHASES = ("coalesce", "lookup", "compute", "assemble")

#: Per-request quality knob: ``"exact"`` serves only from the exact
#: index (over budget -> shed), ``"approx"`` serves only from the
#: sketched replica, ``"auto"`` serves exactly but downgrades a batch
#: the budget would shed onto the replica (docs/approx.md).
QUALITY_LEVELS = ("exact", "approx", "auto")


class CoSimRankService:
    """Thread-safe serving wrapper around a prepared :class:`CSRPlusIndex`.

    Parameters
    ----------
    index:
        The index to serve; :meth:`~repro.core.base.SimilarityEngine.
        prepare` is called if it has not run yet.  The service only
        ever *reads* the index factors, so one index may back several
        services.  Any object with the backend surface (``prepare()``,
        ``num_nodes``, ``dtype``, ``config.query_mode``,
        ``query_columns(seeds, mode=...)``) works — in particular a
        :class:`~repro.sharding.ShardedIndex`, which serves node-range
        shards bit-identically to the monolithic index it was sharded
        from (docs/sharding.md).
    cache_columns:
        LRU capacity in columns (each column is ``n * itemsize`` bytes).
        ``0`` disables caching.
    topk_cache_entries:
        LRU capacity of the separate top-k ranking cache backing
        :meth:`serve_topk` (each entry is ``O(k)`` bytes — far smaller
        than a column).  Entries are keyed ``(seed, exclude_self)`` and
        a cached top-``k'`` answers any ``k <= k'`` by prefix slicing
        (docs/topk.md).  ``0`` disables top-k caching.
    max_workers:
        Thread count for miss computation.  ``None`` (default) uses
        ``os.cpu_count()``; ``1`` computes misses serially on the
        calling thread (no executor is ever created).
    chunk_size:
        Misses handed to one worker task at a time.  In exact mode this
        is scheduling granularity only — results never depend on it.
        It is also the cancellation granularity for deadlines and the
        blast radius of a worker failure before per-seed isolation
        kicks in.  In batched mode each chunk is one GEMM, so chunks
        are widened to at least
        :data:`~repro.serving.scheduler.GEMM_MIN_CHUNK` columns (see
        :func:`~repro.serving.scheduler.effective_chunk_size`) and the
        chunking determines which seeds share a product.
    query_mode:
        ``"exact"``, ``"batched"``, or ``None`` (default) to inherit
        the index's ``config.query_mode``.  Exact serves bit-exact
        columns; batched computes whole miss chunks as single GEMMs and
        serves/caches them under the tolerance-equivalence contract
        (module docstring above).
    max_inflight_seeds:
        Admission-control budget: the maximum number of distinct seed
        columns allowed in flight across all concurrent batches.
        Batches that would exceed it raise
        :class:`~repro.errors.ServiceOverloaded` (load shedding) —
        unless they asked for ``quality="auto"`` and an
        ``approx_index`` replica is attached, in which case they are
        downgraded onto the approximate tier instead.
        ``None`` (default) disables admission control.
    approx_index:
        Optional :class:`~repro.serving.approx.ApproxIndex` replica
        over the same graph, enabling ``quality="approx"`` /
        ``"auto"`` (docs/approx.md).  Prepared if needed; must match
        the exact index's ``num_nodes``.  Approximate answers never
        enter the exact caches and never charge the seed budget.
    cache_validate:
        Fingerprint cached columns and re-verify on every hit; a
        corrupted entry is evicted and recomputed instead of served
        (see :class:`~repro.serving.cache.ColumnCache`).
    registry:
        Metrics registry backing this service's counters.  Defaults to
        a *private* :class:`~repro.obs.metrics.MetricsRegistry` so two
        services never mix traffic; pass a shared registry (or
        :func:`repro.obs.get_registry`) to aggregate.
    tracer:
        Span collector; defaults to the process-global tracer so serve
        spans land next to the engines' prepare/query spans.
    clock:
        Monotonic-seconds source for deadline checks (injectable so
        deadline behaviour is unit-testable without real waiting).
    slow_query_seconds:
        If set, any ``serve_batch`` call slower than this is counted,
        logged at ``WARNING`` on ``repro.serving``, and retained in a
        bounded ring readable via :meth:`slow_queries`.  Requires
        instrumentation to be enabled (spans provide the batch timing).
    slow_query_log_size:
        Capacity of the slow-query ring (oldest entries dropped).
    latency_window_samples:
        Ring capacity of the live latency window backing
        :meth:`latency_percentiles` (exact p50/p95/p99 over the most
        recent batches, independent of the bucketed histogram).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs import ring
    >>> from repro.core.index import CSRPlusIndex
    >>> service = CoSimRankService(CSRPlusIndex(ring(8), rank=4), max_workers=1)
    >>> cold = service.query([0, 3])                  # == index.query([0, 3])
    >>> np.array_equal(cold, service.query([0, 3]))   # warm: from cache
    True
    >>> (service.stats().hits, service.stats().misses)
    (2, 2)
    >>> service.close()
    """

    def __init__(
        self,
        index: CSRPlusIndex,
        *,
        cache_columns: int = 1024,
        topk_cache_entries: int = 1024,
        max_workers: Optional[int] = None,
        chunk_size: int = 64,
        query_mode: Optional[str] = None,
        max_inflight_seeds: Optional[int] = None,
        approx_index=None,
        cache_validate: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        clock: Callable[[], float] = time.monotonic,
        slow_query_seconds: Optional[float] = None,
        slow_query_log_size: int = 64,
        latency_window_samples: int = 1024,
    ):
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1 (or None for auto), got {max_workers}"
            )
        if chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if query_mode is not None and query_mode not in QUERY_MODES:
            raise InvalidParameterError(
                f"query_mode must be one of {QUERY_MODES} (or None to "
                f"inherit the index's), got {query_mode!r}"
            )
        if slow_query_seconds is not None and slow_query_seconds <= 0:
            raise InvalidParameterError(
                f"slow_query_seconds must be > 0 (or None to disable), "
                f"got {slow_query_seconds}"
            )
        if slow_query_log_size < 1:
            raise InvalidParameterError(
                f"slow_query_log_size must be >= 1, got {slow_query_log_size}"
            )
        index.prepare()
        self.index = index
        # live-graph versioning (docs/dynamic.md): batches pin
        # (index, version) under _swap_lock at entry, publish_index
        # replaces both atomically — in-flight batches finish on the
        # old index while new batches already serve the new one
        self._index_version = 0
        self._swap_lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self.query_mode = query_mode or index.config.query_mode
        self.chunk_size = effective_chunk_size(chunk_size, self.query_mode)
        self.max_workers = int(max_workers or (os.cpu_count() or 1))
        self.slow_query_seconds = slow_query_seconds
        self._clock = clock
        self._budget = SeedBudget(
            max_inflight_seeds, on_underflow=self._on_budget_underflow
        )
        if approx_index is not None:
            approx_index.prepare()
            if int(approx_index.num_nodes) != int(index.num_nodes):
                raise InvalidParameterError(
                    "approx_index must cover the same node set: serving "
                    f"{index.num_nodes} nodes, replica has "
                    f"{approx_index.num_nodes}"
                )
        # the replica is version-tagged alongside the exact index;
        # publish_index swaps both under _swap_lock (docs/approx.md)
        self._approx_index = approx_index
        self._approx_version = 0
        self._cache = ColumnCache(
            cache_columns,
            num_rows=index.num_nodes,
            dtype=index.dtype,
            validate_checksums=cache_validate,
        )
        self._topk_cache = TopKCache(topk_cache_entries)
        self._stats_lock = threading.Lock()
        self._slow_log: "deque[dict]" = deque(maxlen=int(slow_query_log_size))
        # request-id mint: next(itertools.count()) is atomic under the
        # GIL, so concurrent batches get distinct monotone sequence ids
        self._batch_seq = itertools.count(1)
        self.latency_window = LatencyWindow(max_samples=latency_window_samples)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False

        self.registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else obs.get_tracer()
        reg = self.registry
        self._m_requests = reg.counter(
            "csrplus_serve_requests_total", "Individual requests answered"
        )
        self._m_batches = reg.counter(
            "csrplus_serve_batches_total", "serve_batch calls"
        )
        self._m_seeds = reg.counter(
            "csrplus_serve_seeds_requested_total",
            "Seed columns returned, duplicates included",
        )
        self._m_unique = reg.counter(
            "csrplus_serve_unique_seeds_total",
            "Distinct seeds looked up in the cache, summed per batch",
        )
        self._m_hits = reg.counter(
            "csrplus_serve_cache_hits_total", "Cache lookup hits"
        )
        self._m_misses = reg.counter(
            "csrplus_serve_cache_misses_total", "Cache lookup misses"
        )
        self._m_evictions = reg.counter(
            "csrplus_serve_cache_evictions_total", "Columns evicted by LRU"
        )
        self._m_cached_columns = reg.gauge(
            "csrplus_serve_cache_columns", "Resident cached columns"
        )
        self._m_cache_bytes = reg.gauge(
            "csrplus_serve_cache_bytes", "Bytes held by the column cache"
        )
        self._m_cache_capacity = reg.gauge(
            "csrplus_serve_cache_capacity", "Column cache capacity"
        )
        self._m_cache_capacity.set(self._cache.capacity)
        self._m_integrity = reg.gauge(
            "csrplus_serve_cache_integrity_failures",
            "Cached columns dropped because their checksum no longer matched",
        )
        self._m_shed = reg.counter(
            "csrplus_serve_shed_total",
            "Batches rejected by admission control (load shedding)",
        )
        self._m_deadline = reg.counter(
            "csrplus_serve_deadline_exceeded_total",
            "Batches whose deadline cancelled at least one seed column",
        )
        self._m_retries = reg.counter(
            "csrplus_serve_retries_total",
            "Per-seed isolation retries after worker chunk failures",
        )
        self._m_degraded = reg.counter(
            "csrplus_serve_degraded_requests_total",
            "Requests that failed while the rest of their batch was served",
        )
        self._m_phase = {
            phase: reg.counter(
                "csrplus_serve_phase_seconds_total",
                "Cumulative wall time per serving phase",
                labels={"phase": phase},
            )
            for phase in PHASES
        }
        self._m_batch_seconds = reg.histogram(
            "csrplus_serve_batch_seconds", "serve_batch wall time"
        )
        self._m_slow = reg.counter(
            "csrplus_serve_slow_batches_total",
            "Batches slower than the slow-query threshold",
        )
        self._m_topk_batches = reg.counter(
            "csrplus_topk_batches_total", "serve_topk calls"
        )
        self._m_topk_seeds = reg.counter(
            "csrplus_topk_seeds_total",
            "Top-k rankings returned, duplicates included",
        )
        self._m_topk_hits = reg.counter(
            "csrplus_topk_cache_hits_total",
            "Top-k lookups answered from a resident ranking",
        )
        self._m_topk_misses = reg.counter(
            "csrplus_topk_cache_misses_total",
            "Top-k lookups that needed a fresh blockwise scan",
        )
        self._m_topk_evictions = reg.counter(
            "csrplus_topk_cache_evictions_total",
            "Rankings evicted from the top-k LRU",
        )
        self._m_topk_entries = reg.gauge(
            "csrplus_topk_cache_entries", "Resident cached rankings"
        )
        self._m_topk_candidates = reg.counter(
            "csrplus_topk_candidates_scored_total",
            "Candidates scored by the blockwise kernel (pruning visible "
            "as this staying well under seeds * n)",
        )
        self._m_topk_blocks_scanned = reg.counter(
            "csrplus_topk_blocks_scanned_total",
            "Row-blocks whose scores were computed",
        )
        self._m_topk_blocks_skipped = reg.counter(
            "csrplus_topk_blocks_skipped_total",
            "Row-blocks skipped by the norm bound",
        )
        self._m_topk_retries = reg.counter(
            "csrplus_topk_retries_total",
            "Per-seed isolation retries after top-k chunk failures",
        )
        self._m_topk_deadline = reg.counter(
            "csrplus_topk_deadline_exceeded_total",
            "serve_topk batches whose deadline cancelled at least one seed",
        )
        self._m_topk_degraded = reg.counter(
            "csrplus_topk_degraded_requests_total",
            "Top-k requests that failed while the rest of their batch "
            "was served",
        )
        # info-style gauge: scrapes (and regressions) can attribute this
        # service's numbers to the mode that produced them
        self._m_query_mode = reg.gauge(
            "csrplus_serve_query_mode",
            "Active column evaluation strategy (1 for the mode in use)",
            labels={"mode": self.query_mode},
        )
        self._m_query_mode.set(1)
        self._m_index_version = reg.gauge(
            "csrplus_index_version",
            "Version of the index currently being served",
        )
        self._m_index_version.set(0)
        self._m_swap_seconds = reg.histogram(
            "csrplus_update_swap_seconds",
            "Wall time of publish_index (swap + per-seed cache upgrade)",
        )
        self._m_cache_invalidated = reg.counter(
            "csrplus_serve_cache_invalidated_total",
            "Cached columns dropped by version swaps (touched seeds)",
        )
        self._m_cache_patched = reg.counter(
            "csrplus_serve_cache_patched_total",
            "Cached columns row-patched across version swaps",
        )
        self._m_cache_retained = reg.counter(
            "csrplus_serve_cache_retained_total",
            "Cached columns retained untouched across version swaps",
        )
        self._m_topk_invalidated = reg.counter(
            "csrplus_topk_cache_invalidated_total",
            "Cached rankings dropped by version swaps",
        )
        self._m_topk_retained = reg.counter(
            "csrplus_topk_cache_retained_total",
            "Cached rankings retained across clean version swaps",
        )
        # approximate-tier accounting (docs/approx.md): every answered
        # request lands in exactly one tier counter
        self._m_tier_exact = reg.counter(
            "csrplus_serve_tier_exact_total",
            "Requests answered by the exact tier (columns and top-k)",
        )
        self._m_tier_approx = reg.counter(
            "csrplus_serve_tier_approx_total",
            "Requests answered by the approximate (sketched) tier",
        )
        self._m_approx_batches = reg.counter(
            "csrplus_approx_batches_total",
            "Batches answered on the approximate tier",
        )
        self._m_approx_downgrades = reg.counter(
            "csrplus_approx_downgrades_total",
            "quality=auto batches downgraded to the approximate tier "
            "instead of being shed",
        )
        self._m_approx_seeds = reg.counter(
            "csrplus_approx_seeds_total",
            "Distinct sketch columns evaluated by the approximate tier",
        )
        self._m_approx_index_version = reg.gauge(
            "csrplus_approx_index_version",
            "Version of the approximate replica currently attached",
        )
        self._m_approx_atol = reg.gauge(
            "csrplus_approx_atol",
            "Published AvgDiff error contract of the attached replica "
            "(approx_query_atol)",
        )
        if approx_index is not None:
            self._m_approx_atol.set(approx_index.query_atol())
        self._m_budget_underflow = reg.counter(
            "csrplus_serve_budget_underflow_total",
            "SeedBudget.release calls exceeding what was acquired "
            "(double-release accounting bugs, surfaced not swallowed)",
        )

    def _on_budget_underflow(self, deficit: int) -> None:
        """Wired into :class:`SeedBudget`; counts unmatched releases."""
        with self._stats_lock:
            self._m_budget_underflow.inc()

    # ------------------------------------------------------------------
    # serving entry points
    # ------------------------------------------------------------------
    def query(self, seeds: QueryLike) -> np.ndarray:
        """Answer one request; identical to ``index.query(seeds)``."""
        return self.serve_batch([seeds])[0]

    def serve_batch(
        self,
        requests: Sequence[QueryLike],
        *,
        deadline_s: Optional[float] = None,
        partial: bool = False,
        quality: str = "exact",
    ) -> List[np.ndarray]:
        """Answer a batch of requests, one ``n x |Q_i|`` block each.

        Seeds shared between requests (or with earlier traffic, via the
        cache) are computed once.  Safe to call from many threads
        concurrently.

        Parameters
        ----------
        deadline_s:
            Per-batch deadline in seconds.  Cancellation is cooperative
            and chunk-grained: chunks not yet started when the deadline
            passes are never computed.
        partial:
            Failure policy.  ``False`` (default): any failed request
            raises its typed error (:class:`~repro.errors.
            DeadlineExceeded`, :class:`~repro.errors.
            ColumnComputeFailed`, ...) — all-or-nothing, the original
            contract.  ``True``: graceful degradation — the returned
            list has ``None`` holes for failed requests while every
            successful block is still bit-exact.  Use
            :meth:`serve_batch_detailed` to see the per-request errors.
        quality:
            One of :data:`QUALITY_LEVELS`.  ``"exact"`` (default)
            serves from the exact index only; ``"approx"`` answers
            from the sketched replica (within the
            :func:`~repro.serving.approx.approx_query_atol` contract);
            ``"auto"`` serves exactly unless admission control would
            shed the batch, in which case it is downgraded onto the
            replica instead of raising.  Requires an ``approx_index``
            for ``"approx"``; ``"auto"`` without one degrades to plain
            exact-or-shed.

        Raises
        ------
        ServiceOverloaded
            When admission control sheds the batch (both policies — an
            over-budget batch produces no results at all), unless
            ``quality="auto"`` downgraded it onto the replica.
        """
        detailed = self.serve_batch_detailed(
            requests, deadline_s=deadline_s, quality=quality
        )
        if partial:
            return detailed.partial_results()
        return detailed.results()

    def serve_batch_detailed(
        self,
        requests: Sequence[QueryLike],
        *,
        deadline_s: Optional[float] = None,
        quality: str = "exact",
    ) -> BatchResult:
        """Like :meth:`serve_batch` but with per-request outcomes.

        Never raises for individual request failures — each
        :class:`~repro.serving.results.RequestOutcome` carries either a
        bit-exact block or a typed :class:`~repro.errors.ReproError`.
        Batch-level rejections (invalid requests, load shedding) still
        raise, since no per-request answer exists.  Every outcome's
        ``tier`` names the tier that produced it (``"exact"`` /
        ``"approx"``, see the ``quality`` parameter on
        :meth:`serve_batch`).
        """
        if deadline_s is not None and deadline_s <= 0:
            raise InvalidParameterError(
                f"deadline_s must be > 0 (or None), got {deadline_s}"
            )
        if quality not in QUALITY_LEVELS:
            raise InvalidParameterError(
                f"quality must be one of {QUALITY_LEVELS}, got {quality!r}"
            )
        started = self._clock()
        deadline_at = started + deadline_s if deadline_s is not None else None
        batch_id = f"batch-{next(self._batch_seq)}"
        request_ids = [f"{batch_id}.{i}" for i in range(len(requests))]
        # pin (index, version) for the whole batch: a publish_index
        # racing with this batch never mixes versions inside one answer
        with self._swap_lock:
            index = self.index
            version = self._index_version
            approx_index = self._approx_index
            approx_version = self._approx_version
        if quality == "approx" and approx_index is None:
            raise InvalidParameterError(
                'quality="approx" requires an approx_index replica '
                "(pass approx_index= to the service constructor)"
            )
        if quality == "approx":
            return self._serve_batch_approx(
                requests,
                batch_id=batch_id,
                request_ids=request_ids,
                started=started,
                deadline_s=deadline_s,
                index=approx_index,
                version=approx_version,
                downgraded=False,
            )
        tracer = self._tracer
        with tracer.span("serve.batch", batch_id=batch_id) as batch_span:
            with tracer.span("serve.coalesce") as coalesce_span:
                plan = plan_batch(requests, index.num_nodes)
            batch_span.set_attribute("requests", plan.num_requests)
            batch_span.set_attribute("unique_seeds", int(plan.unique_seeds.size))
            batch_span.set_attribute("query_mode", self.query_mode)
            batch_span.set_attribute("index_version", version)
            batch_span.set_attribute("request_ids", list(request_ids))

            n_seeds = int(plan.unique_seeds.size)
            if not self._budget.try_acquire(n_seeds):
                if quality == "auto" and approx_index is not None:
                    # the degrade policy: answer from the sketched
                    # replica instead of shedding (docs/approx.md)
                    with self._stats_lock:
                        self._m_approx_downgrades.inc()
                    return self._serve_batch_approx(
                        requests,
                        batch_id=batch_id,
                        request_ids=request_ids,
                        started=started,
                        deadline_s=deadline_s,
                        index=approx_index,
                        version=approx_version,
                        downgraded=True,
                        plan=plan,
                    )
                with self._stats_lock:
                    self._m_shed.inc()
                assert self._budget.max_inflight is not None
                raise ServiceOverloaded(
                    n_seeds, self._budget.in_flight, self._budget.max_inflight
                )
            try:
                with tracer.span("serve.lookup") as lookup_span:
                    hit_columns, missing = self._cache.lookup(
                        plan.unique_seeds, version=version
                    )
                # captured now: assembly below merges fresh columns into
                # the same dict, which would inflate the hit count
                num_hits = len(hit_columns)

                with tracer.span(
                    "serve.compute",
                    misses=len(missing),
                    query_mode=self.query_mode,
                ) as compute_span:
                    fresh, failures, cancelled, retries = self._compute_missing(
                        missing, compute_span, deadline_at, index
                    )
                    evicted = self._cache.insert(fresh, version=version)

                with tracer.span("serve.assemble") as assemble_span:
                    column_map = hit_columns
                    column_map.update(fresh)
                    outcomes = self._assemble_outcomes(
                        plan,
                        column_map,
                        failures,
                        cancelled,
                        deadline_s=deadline_s,
                        started=started,
                        request_ids=request_ids,
                        index=index,
                    )
            finally:
                self._budget.release(n_seeds)

        num_failed = sum(1 for outcome in outcomes if not outcome.ok)
        self._record_batch(
            plan,
            hits=num_hits,
            misses=len(missing),
            evicted=evicted,
            retries=retries,
            num_failed=num_failed,
            deadline_hit=bool(cancelled),
            batch_span=batch_span,
            batch_id=batch_id,
            request_ids=request_ids,
            phase_spans={
                "coalesce": coalesce_span,
                "lookup": lookup_span,
                "compute": compute_span,
                "assemble": assemble_span,
            },
        )
        return BatchResult(
            outcomes=outcomes,
            retries=retries,
            failed_seeds=failures,
            cancelled_seeds=tuple(cancelled),
            batch_id=batch_id,
        )

    # ------------------------------------------------------------------
    # approximate tier (docs/approx.md)
    # ------------------------------------------------------------------
    def _serve_batch_approx(
        self,
        requests: Sequence[QueryLike],
        *,
        batch_id: str,
        request_ids: List[str],
        started: float,
        deadline_s: Optional[float],
        index,
        version: int,
        downgraded: bool,
        plan=None,
    ) -> BatchResult:
        """Answer a whole batch from the sketched replica.

        No budget charge (the sketch is the overload absorber), no
        exact-cache interaction (approximate columns must never be
        replayed as exact answers), outcomes tagged ``tier="approx"``.
        ``plan`` is passed when the auto-downgrade path already
        coalesced the batch.
        """
        tracer = self._tracer
        deadline_at = started + deadline_s if deadline_s is not None else None
        with tracer.span(
            "serve.approx",
            batch_id=batch_id,
            downgraded=downgraded,
            index_version=version,
            num_projections=int(index.config.num_projections),
        ) as approx_span:
            if plan is None:
                with tracer.span("serve.coalesce"):
                    plan = plan_batch(requests, index.num_nodes)
            approx_span.set_attribute("requests", plan.num_requests)
            approx_span.set_attribute(
                "unique_seeds", int(plan.unique_seeds.size)
            )
            approx_span.set_attribute("request_ids", list(request_ids))
            outcomes: List[RequestOutcome] = []
            deadline_hit = False
            failures: Dict[int, ReproError] = {}
            if deadline_at is not None and self._clock() >= deadline_at:
                # the replica's answer is one GEMM — either the whole
                # batch makes the deadline or none of it does
                deadline_hit = True
                for request_id in request_ids:
                    outcomes.append(
                        RequestOutcome(
                            error=DeadlineExceeded(
                                deadline_s if deadline_s is not None else 0.0,
                                self._clock() - started,
                                completed_seeds=0,
                                cancelled_seeds=int(plan.unique_seeds.size),
                            ),
                            request_id=request_id,
                            tier="approx",
                        )
                    )
            else:
                try:
                    block = index.query_columns(plan.unique_seeds)
                    column_map = {
                        int(seed): block[:, j]
                        for j, seed in enumerate(plan.unique_seeds)
                    }
                except Exception as exc:
                    for position, ids in enumerate(plan.request_ids):
                        seed = int(ids[0]) if ids.size else -1
                        error = ColumnComputeFailed(
                            seed, str(exc) or type(exc).__name__
                        )
                        error.__cause__ = exc
                        failures[seed] = error
                        outcomes.append(
                            RequestOutcome(
                                error=error,
                                request_id=request_ids[position],
                                tier="approx",
                            )
                        )
                else:
                    for position, ids in enumerate(plan.request_ids):
                        out = np.empty(
                            (index.num_nodes, ids.size),
                            dtype=index.dtype,
                            order="F",
                        )
                        for j, seed in enumerate(ids):
                            out[:, j] = column_map[int(seed)]
                        outcomes.append(
                            RequestOutcome(
                                result=out,
                                request_id=request_ids[position],
                                tier="approx",
                            )
                        )
        num_failed = sum(1 for outcome in outcomes if not outcome.ok)
        with self._stats_lock:
            self._m_batches.inc()
            self._m_requests.inc(plan.num_requests)
            self._m_tier_approx.inc(plan.num_requests)
            self._m_seeds.inc(plan.seeds_requested)
            self._m_approx_batches.inc()
            self._m_approx_seeds.inc(int(plan.unique_seeds.size))
            self._m_degraded.inc(num_failed)
            if deadline_hit:
                self._m_deadline.inc()
            if approx_span is not obs.NULL_SPAN:
                self._m_batch_seconds.observe(approx_span.wall_seconds)
                self.latency_window.observe(approx_span.wall_seconds)
        return BatchResult(
            outcomes=outcomes,
            failed_seeds=failures,
            batch_id=batch_id,
        )

    def _serve_topk_approx(
        self,
        seed_ids: np.ndarray,
        k: int,
        exclude_self: bool,
        *,
        batch_id: str,
        request_ids: List[str],
        started: float,
        deadline_s: Optional[float],
        index,
        version: int,
        downgraded: bool,
    ) -> BatchResult:
        """Rank the replica's estimated columns for a top-k batch.

        Mirrors :meth:`_serve_batch_approx`: no budget charge, no
        ``TopKCache`` interaction, ``tier="approx"`` outcomes.
        """
        tracer = self._tracer
        deadline_at = started + deadline_s if deadline_s is not None else None
        with tracer.span(
            "serve.approx",
            batch_id=batch_id,
            downgraded=downgraded,
            index_version=version,
            num_projections=int(index.config.num_projections),
            k=int(k),
        ) as approx_span:
            unique = np.unique(seed_ids)
            approx_span.set_attribute("requests", int(seed_ids.size))
            approx_span.set_attribute("unique_seeds", int(unique.size))
            outcomes: List[RequestOutcome] = []
            deadline_hit = False
            failures: Dict[int, ReproError] = {}
            if deadline_at is not None and self._clock() >= deadline_at:
                deadline_hit = True
                for request_id in request_ids:
                    outcomes.append(
                        RequestOutcome(
                            error=DeadlineExceeded(
                                deadline_s if deadline_s is not None else 0.0,
                                self._clock() - started,
                                completed_seeds=0,
                                cancelled_seeds=int(unique.size),
                            ),
                            request_id=request_id,
                            tier="approx",
                        )
                    )
            else:
                try:
                    results = index.top_k_batch(unique, k, exclude_self)
                    result_map = dict(zip((int(s) for s in unique), results))
                except Exception as exc:
                    for position, seed in enumerate(seed_ids):
                        error = ColumnComputeFailed(
                            int(seed), str(exc) or type(exc).__name__
                        )
                        error.__cause__ = exc
                        failures[int(seed)] = error
                        outcomes.append(
                            RequestOutcome(
                                error=error,
                                request_id=request_ids[position],
                                tier="approx",
                            )
                        )
                else:
                    for position, seed in enumerate(seed_ids):
                        outcomes.append(
                            RequestOutcome(
                                result=result_map[int(seed)],
                                request_id=request_ids[position],
                                tier="approx",
                            )
                        )
        num_failed = sum(1 for outcome in outcomes if not outcome.ok)
        with self._stats_lock:
            self._m_topk_batches.inc()
            self._m_topk_seeds.inc(int(seed_ids.size))
            self._m_tier_approx.inc(int(seed_ids.size))
            self._m_approx_batches.inc()
            self._m_approx_seeds.inc(int(np.unique(seed_ids).size))
            self._m_topk_degraded.inc(num_failed)
            if deadline_hit:
                self._m_topk_deadline.inc()
        return BatchResult(
            outcomes=outcomes,
            failed_seeds=failures,
            batch_id=batch_id,
        )

    # ------------------------------------------------------------------
    # top-k serving
    # ------------------------------------------------------------------
    def serve_topk(
        self,
        seeds: QueryLike,
        k: int,
        *,
        exclude_self: bool = True,
        deadline_s: Optional[float] = None,
        partial: bool = False,
        quality: str = "exact",
    ) -> List[TopKResult]:
        """Top-``k`` most-similar nodes for each seed, served.

        One :class:`~repro.core.topk.TopKResult` per input seed, in
        input order.  Rankings are produced by the blockwise pruned
        kernel (:func:`~repro.core.topk.top_k_blockwise`) — in exact
        mode the returned nodes, scores, and tie order are
        *bit-identical* to ``index.top_k(seed, k)`` plus the matching
        column entries; batched mode carries the
        :func:`~repro.core.index.batched_query_atol` contract.  Results
        are cached per ``(seed, exclude_self)``: a cached top-``k'``
        with ``k' >= k`` answers ``k`` by prefix slicing, without
        touching the index.

        The robustness surface matches :meth:`serve_batch`: admission
        control sheds over-budget batches
        (:class:`~repro.errors.ServiceOverloaded`), ``deadline_s``
        cancels not-yet-started work cooperatively, failed chunks are
        degraded to per-seed isolation retries, and with
        ``partial=True`` failed seeds come back as ``None`` holes
        instead of raising.  Use :meth:`serve_topk_detailed` for the
        per-seed typed errors.

        ``quality`` works as in :meth:`serve_batch`: ``"approx"``
        ranks the sketched replica's estimated columns (full scan, the
        canonical tie order), ``"auto"`` downgrades to that instead of
        shedding.  Approximate rankings never enter the
        :class:`~repro.serving.cache.TopKCache`.
        """
        detailed = self.serve_topk_detailed(
            seeds, k, exclude_self=exclude_self, deadline_s=deadline_s,
            quality=quality,
        )
        if partial:
            return detailed.partial_results()
        return detailed.results()

    def serve_topk_detailed(
        self,
        seeds: QueryLike,
        k: int,
        *,
        exclude_self: bool = True,
        deadline_s: Optional[float] = None,
        quality: str = "exact",
    ) -> BatchResult:
        """Like :meth:`serve_topk` but with per-seed outcomes.

        Never raises for individual seed failures — each
        :class:`~repro.serving.results.RequestOutcome` carries either a
        :class:`~repro.core.topk.TopKResult` or a typed
        :class:`~repro.errors.ReproError`.  Batch-level rejections
        (invalid seeds, bad ``k``, load shedding) still raise.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if deadline_s is not None and deadline_s <= 0:
            raise InvalidParameterError(
                f"deadline_s must be > 0 (or None), got {deadline_s}"
            )
        if quality not in QUALITY_LEVELS:
            raise InvalidParameterError(
                f"quality must be one of {QUALITY_LEVELS}, got {quality!r}"
            )
        started = self._clock()
        deadline_at = started + deadline_s if deadline_s is not None else None
        # pin (index, version) for the whole batch (see serve_batch_detailed)
        with self._swap_lock:
            index = self.index
            version = self._index_version
            approx_index = self._approx_index
            approx_version = self._approx_version
        if quality == "approx" and approx_index is None:
            raise InvalidParameterError(
                'quality="approx" requires an approx_index replica '
                "(pass approx_index= to the service constructor)"
            )
        seed_ids = normalize_queries(seeds, index.num_nodes)
        batch_id = f"topk-{next(self._batch_seq)}"
        request_ids = [f"{batch_id}.{i}" for i in range(int(seed_ids.size))]
        if quality == "approx":
            return self._serve_topk_approx(
                seed_ids, int(k), exclude_self,
                batch_id=batch_id, request_ids=request_ids,
                started=started, deadline_s=deadline_s,
                index=approx_index, version=approx_version,
                downgraded=False,
            )
        tracer = self._tracer
        with tracer.span(
            "serve.topk",
            seeds=int(seed_ids.size),
            k=int(k),
            exclude_self=bool(exclude_self),
            query_mode=self.query_mode,
            batch_id=batch_id,
            index_version=version,
            request_ids=list(request_ids),
        ):
            unique = np.unique(seed_ids)
            n_seeds = int(unique.size)
            if not self._budget.try_acquire(n_seeds):
                if quality == "auto" and approx_index is not None:
                    with self._stats_lock:
                        self._m_approx_downgrades.inc()
                    return self._serve_topk_approx(
                        seed_ids, int(k), exclude_self,
                        batch_id=batch_id, request_ids=request_ids,
                        started=started, deadline_s=deadline_s,
                        index=approx_index, version=approx_version,
                        downgraded=True,
                    )
                with self._stats_lock:
                    self._m_shed.inc()
                assert self._budget.max_inflight is not None
                raise ServiceOverloaded(
                    n_seeds, self._budget.in_flight, self._budget.max_inflight
                )
            try:
                hit_results, missing = self._topk_cache.lookup(
                    unique, int(k), exclude_self, version=version
                )
                num_hits = len(hit_results)
                with tracer.span(
                    "serve.topk.compute",
                    misses=len(missing),
                    query_mode=self.query_mode,
                ) as compute_span:
                    fresh, failures, cancelled, retries = (
                        self._compute_topk_missing(
                            missing, int(k), exclude_self,
                            compute_span, deadline_at, index,
                        )
                    )
                    evicted = self._topk_cache.insert(
                        fresh, int(k), exclude_self, version=version
                    )
                result_map = dict(hit_results)
                result_map.update(fresh)
                cancelled_set = set(cancelled)
                outcomes: List[RequestOutcome] = []
                for position, seed in enumerate(seed_ids):
                    seed = int(seed)
                    request_id = request_ids[position]
                    if seed in result_map:
                        outcomes.append(
                            RequestOutcome(
                                result=result_map[seed],
                                request_id=request_id,
                            )
                        )
                    elif seed in cancelled_set:
                        outcomes.append(
                            RequestOutcome(
                                error=DeadlineExceeded(
                                    deadline_s if deadline_s is not None
                                    else 0.0,
                                    self._clock() - started,
                                    completed_seeds=len(result_map),
                                    cancelled_seeds=len(cancelled_set),
                                ),
                                request_id=request_id,
                            )
                        )
                    else:
                        outcomes.append(
                            RequestOutcome(
                                error=failures[seed], request_id=request_id
                            )
                        )
            finally:
                self._budget.release(n_seeds)

        with self._stats_lock:
            self._m_topk_batches.inc()
            self._m_topk_seeds.inc(int(seed_ids.size))
            self._m_tier_exact.inc(int(seed_ids.size))
            self._m_topk_hits.inc(num_hits)
            self._m_topk_misses.inc(len(missing))
            self._m_topk_evictions.inc(evicted)
            self._m_topk_retries.inc(retries)
            self._m_topk_degraded.inc(
                sum(1 for outcome in outcomes if not outcome.ok)
            )
            if cancelled:
                self._m_topk_deadline.inc()
            for result in fresh.values():
                self._m_topk_candidates.inc(result.candidates_scored)
                self._m_topk_blocks_scanned.inc(result.blocks_scanned)
                self._m_topk_blocks_skipped.inc(result.blocks_skipped)
            self._m_topk_entries.set(
                self._topk_cache.counters()["cached_entries"]
            )
        return BatchResult(
            outcomes=outcomes,
            retries=retries,
            failed_seeds=failures,
            cancelled_seeds=tuple(cancelled),
            batch_id=batch_id,
        )

    def _compute_topk_missing(
        self,
        missing: List[int],
        k: int,
        exclude_self: bool,
        parent_span: Optional[Span],
        deadline_at: Optional[float],
        index=None,
    ) -> Tuple[Dict[int, TopKResult], Dict[int, ReproError], List[int], int]:
        """Blockwise-scan missing seeds with isolation and cancellation.

        The same degradation ladder as :meth:`_compute_missing`: chunks
        run (possibly in parallel), a failed chunk is retried seed by
        seed in exact mode, and seeds that miss the deadline are
        cancelled rather than computed late.
        """
        results: Dict[int, TopKResult] = {}
        failures: Dict[int, ReproError] = {}
        cancelled: List[int] = []
        retries = 0
        if not missing:
            return results, failures, cancelled, retries
        if index is None:
            index = self.index
        chunks = chunk_seeds(missing, self.chunk_size)

        def run_chunk(chunk):
            if deadline_at is not None and self._clock() >= deadline_at:
                return ("cancelled", None)
            with self._tracer.span(
                "serve.topk.chunk", parent=parent_span, seeds=len(chunk)
            ) as chunk_span:
                try:
                    faults.fire(
                        "compute.chunk", seeds=[int(s) for s in chunk]
                    )
                    # backends that rank remotely (a PooledIndex fans
                    # the chunk to a worker process, keeping the
                    # blockwise scan next to the shard bytes) expose
                    # top_k_chunk; everything else runs the kernel here
                    if hasattr(index, "top_k_chunk"):
                        return (
                            "ok",
                            index.top_k_chunk(
                                chunk,
                                k,
                                exclude_self=exclude_self,
                                mode=self.query_mode,
                            ),
                        )
                    return (
                        "ok",
                        top_k_blockwise(
                            index,
                            chunk,
                            k,
                            exclude_self=exclude_self,
                            mode=self.query_mode,
                            tracer=self._tracer,
                            parent_span=chunk_span,
                        ),
                    )
                except Exception as exc:  # isolated below, per seed
                    return ("error", exc)

        if self.max_workers == 1 or len(chunks) == 1:
            outcomes = [run_chunk(chunk) for chunk in chunks]
        else:
            outcomes = list(self._get_executor().map(run_chunk, chunks))

        failed_chunks = []
        for chunk, (status, payload) in zip(chunks, outcomes):
            if status == "ok":
                for seed, result in zip(chunk, payload):
                    results[int(seed)] = result
            elif status == "cancelled":
                cancelled.extend(int(seed) for seed in chunk)
            else:
                failed_chunks.append((chunk, payload))

        for chunk, _chunk_exc in failed_chunks:
            for seed in chunk:
                seed = int(seed)
                if deadline_at is not None and self._clock() >= deadline_at:
                    cancelled.append(seed)
                    continue
                retries += 1
                with self._tracer.span(
                    "serve.topk.retry", parent=parent_span, seed=seed
                ) as retry_span:
                    try:
                        faults.fire("compute.chunk", seeds=[seed])
                        # isolation retries are single-seed; exact mode
                        # makes the retried ranking canonical, exactly
                        # as column retries do
                        if hasattr(index, "top_k_chunk"):
                            results[seed] = index.top_k_chunk(
                                [seed],
                                k,
                                exclude_self=exclude_self,
                                mode="exact",
                            )[0]
                        else:
                            results[seed] = top_k_blockwise(
                                index,
                                [seed],
                                k,
                                exclude_self=exclude_self,
                                mode="exact",
                                tracer=self._tracer,
                                parent_span=retry_span,
                            )[0]
                    except Exception as exc:
                        error = ColumnComputeFailed(
                            seed, str(exc) or type(exc).__name__
                        )
                        error.__cause__ = exc
                        failures[seed] = error
        return results, failures, cancelled, retries

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compute_missing(
        self,
        missing: List[int],
        parent_span: Optional[Span],
        deadline_at: Optional[float],
        index=None,
    ) -> Tuple[Dict[int, np.ndarray], Dict[int, ReproError], List[int], int]:
        """Evaluate missing columns with isolation and cancellation.

        ``index`` is the batch-pinned index (defaults to the currently
        published one).  Returns ``(columns, failures, cancelled,
        retries)``: computed columns, per-seed typed errors for seeds
        that failed even in isolation, seeds cancelled by the deadline,
        and the number of isolation retries attempted.
        """
        columns: Dict[int, np.ndarray] = {}
        failures: Dict[int, ReproError] = {}
        cancelled: List[int] = []
        retries = 0
        if not missing:
            return columns, failures, cancelled, retries
        if index is None:
            index = self.index
        chunks = chunk_seeds(missing, self.chunk_size)

        def run_chunk(chunk):
            # cooperative cancellation: a chunk that has not started by
            # the deadline is abandoned, not computed late
            if deadline_at is not None and self._clock() >= deadline_at:
                return ("cancelled", None)
            # Explicit parent: worker threads have no open span of their
            # own, so the chunk spans nest under this batch's compute
            # span instead of becoming disconnected roots.
            with self._tracer.span(
                "serve.compute.chunk", parent=parent_span, seeds=len(chunk)
            ):
                try:
                    faults.fire(
                        "compute.chunk", seeds=[int(s) for s in chunk]
                    )
                    return (
                        "ok",
                        index.query_columns(chunk, mode=self.query_mode),
                    )
                except Exception as exc:  # isolated below, per seed
                    return ("error", exc)

        if self.max_workers == 1 or len(chunks) == 1:
            outcomes = [run_chunk(chunk) for chunk in chunks]
        else:
            outcomes = list(self._get_executor().map(run_chunk, chunks))

        failed_chunks = []
        for chunk, (status, payload) in zip(chunks, outcomes):
            if status == "ok":
                for j, seed in enumerate(chunk):
                    # copy: a column view would pin the whole chunk block
                    # in memory for as long as the cache retains any one
                    # column
                    columns[int(seed)] = payload[:, j].copy()
            elif status == "cancelled":
                cancelled.extend(int(seed) for seed in chunk)
            else:
                failed_chunks.append((chunk, payload))

        # graceful degradation: a failed chunk is retried seed by seed,
        # so one poisonous seed cannot take its chunk-mates down with it
        for chunk, _chunk_exc in failed_chunks:
            for seed in chunk:
                seed = int(seed)
                if deadline_at is not None and self._clock() >= deadline_at:
                    cancelled.append(seed)
                    continue
                retries += 1
                with self._tracer.span(
                    "serve.compute.retry", parent=parent_span, seed=seed
                ):
                    try:
                        faults.fire("compute.chunk", seeds=[seed])
                        # isolation retries are single-seed, where the
                        # batched GEMM degenerates to the exact GEMV —
                        # use exact so a retried column is canonical
                        columns[seed] = index.query_columns(
                            [seed], mode="exact"
                        )[:, 0].copy()
                    except Exception as exc:
                        error = ColumnComputeFailed(
                            seed, str(exc) or type(exc).__name__
                        )
                        error.__cause__ = exc
                        failures[seed] = error
        return columns, failures, cancelled, retries

    def _assemble_outcomes(
        self,
        plan,
        column_map: Dict[int, np.ndarray],
        failures: Dict[int, ReproError],
        cancelled: List[int],
        *,
        deadline_s: Optional[float],
        started: float,
        request_ids: Optional[List[str]] = None,
        index: Optional[object] = None,
    ) -> List[RequestOutcome]:
        """One outcome per request: a block, or the typed reason why not."""
        if index is None:
            index = self.index
        cancelled_set = set(cancelled)
        outcomes: List[RequestOutcome] = []
        for position, ids in enumerate(plan.request_ids):
            request_id = request_ids[position] if request_ids else None
            needed = [int(seed) for seed in ids]
            unavailable = [seed for seed in needed if seed not in column_map]
            if not unavailable:
                outcomes.append(
                    RequestOutcome(
                        result=self._assemble(ids, column_map, index),
                        request_id=request_id,
                    )
                )
            elif any(seed in cancelled_set for seed in unavailable):
                outcomes.append(
                    RequestOutcome(
                        error=DeadlineExceeded(
                            deadline_s if deadline_s is not None else 0.0,
                            self._clock() - started,
                            completed_seeds=len(column_map),
                            cancelled_seeds=len(cancelled_set),
                        ),
                        request_id=request_id,
                    )
                )
            else:
                outcomes.append(
                    RequestOutcome(
                        error=failures[unavailable[0]], request_id=request_id
                    )
                )
        return outcomes

    def _assemble(
        self,
        request_ids: np.ndarray,
        column_map: Dict[int, np.ndarray],
        index: Optional[object] = None,
    ) -> np.ndarray:
        if index is None:
            index = self.index
        out = np.empty(
            (index.num_nodes, request_ids.size),
            dtype=index.dtype,
            order="F",
        )
        for j, seed in enumerate(request_ids):
            out[:, j] = column_map[int(seed)]
        return out

    def _record_batch(
        self,
        plan,
        *,
        hits: int,
        misses: int,
        evicted: int,
        retries: int,
        num_failed: int,
        deadline_hit: bool,
        batch_span,
        batch_id: Optional[str] = None,
        request_ids: Optional[List[str]] = None,
        phase_spans,
    ) -> None:
        """Fold one batch's outcome into the registry (consistent snapshot)."""
        cache = self._cache.counters()
        with self._stats_lock:
            self._m_batches.inc()
            self._m_requests.inc(plan.num_requests)
            self._m_tier_exact.inc(plan.num_requests)
            self._m_seeds.inc(plan.seeds_requested)
            self._m_unique.inc(int(plan.unique_seeds.size))
            self._m_hits.inc(hits)
            self._m_misses.inc(misses)
            self._m_evictions.inc(evicted)
            self._m_retries.inc(retries)
            self._m_degraded.inc(num_failed)
            if deadline_hit:
                self._m_deadline.inc()
            self._m_cached_columns.set(cache["cached_columns"])
            self._m_cache_bytes.set(cache["bytes_cached"])
            self._m_integrity.set(cache["integrity_failures"])
            for phase, span in phase_spans.items():
                self._m_phase[phase].inc(span.wall_seconds)
            if batch_span is not obs.NULL_SPAN:
                self._m_batch_seconds.observe(batch_span.wall_seconds)
                self.latency_window.observe(batch_span.wall_seconds)
        if (
            self.slow_query_seconds is not None
            and batch_span.wall_seconds >= self.slow_query_seconds
        ):
            entry = {
                "batch_id": batch_id,
                "request_ids": list(request_ids or []),
                "seconds": batch_span.wall_seconds,
                "requests": plan.num_requests,
                "unique_seeds": int(plan.unique_seeds.size),
                "hits": hits,
                "misses": misses,
                "phases": {
                    phase: span.wall_seconds
                    for phase, span in phase_spans.items()
                },
            }
            with self._stats_lock:
                self._m_slow.inc()
                self._slow_log.append(entry)
            # structured JSON so log pipelines can join the slow batch
            # with its trace span and outcomes by batch_id/request_ids;
            # the "slow batch" event name is the stable grep handle
            logger.warning(
                "%s",
                json.dumps(
                    {
                        "event": "slow batch",
                        "threshold_seconds": self.slow_query_seconds,
                        **entry,
                    },
                    sort_keys=False,
                ),
            )

    def _get_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise InvalidParameterError("service is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="cosimrank-serve",
                )
            return self._executor

    # ------------------------------------------------------------------
    # live-graph version swaps (docs/dynamic.md)
    # ------------------------------------------------------------------
    @property
    def index_version(self) -> int:
        """Monotone version of the currently published index."""
        with self._swap_lock:
            return self._index_version

    @property
    def approx_index(self):
        """The attached approximate replica, or ``None``."""
        with self._swap_lock:
            return self._approx_index

    @property
    def approx_version(self) -> int:
        """Version tag of the attached approximate replica."""
        with self._swap_lock:
            return self._approx_version

    def publish_index(
        self,
        new_index,
        *,
        dirty_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        approx_index=None,
    ) -> int:
        """Atomically swap in a rebuilt index — zero downtime.

        The swap itself is one pointer exchange under ``_swap_lock``:
        batches entering after it serve the new index; batches that
        pinned the old one at entry finish on it undisturbed (the old
        index object is never mutated, so no request ever mixes
        versions inside one answer).

        Caches are *upgraded*, not flushed: entries whose seed row
        ranges were untouched by the rebuild are retagged to the new
        version wholesale; entries overlapping a dirty row range are
        row-patched with the canonical exact kernel (bit-identical to a
        fresh recompute, Theorem 3.5 row independence) or dropped when
        their seed itself went dirty.  See
        :meth:`~repro.serving.cache.ColumnCache.advance`.

        Parameters
        ----------
        new_index:
            A prepared index for the updated graph.  Must have the same
            ``num_nodes`` and ``dtype`` as the one being replaced (the
            per-seed caches are shaped for them).
        dirty_ranges:
            Row ranges ``(start, stop)`` whose ``Z``/``U`` rows changed
            in the rebuild (e.g. from
            :class:`~repro.sharding.ShardRepairReport.dirty_ranges`).
            ``None`` infers them by diffing factors when both indexes
            are monolithic, else conservatively marks every row dirty.
        approx_index:
            Optional rebuilt :class:`~repro.serving.approx.ApproxIndex`
            replica for the updated graph; swapped atomically alongside
            the exact index and version-tagged with the same new
            version.  ``None`` keeps the current replica (it then
            serves stale sketches until the next publish supplies one —
            acceptable for an approximate tier, but the version gauges
            make the skew visible).

        Returns
        -------
        The new version number (old version + 1).
        """
        if hasattr(new_index, "prepare"):
            new_index.prepare()
        if approx_index is not None:
            approx_index.prepare()
            if int(approx_index.num_nodes) != int(new_index.num_nodes):
                raise InvalidParameterError(
                    "published approx_index must cover the same node set: "
                    f"index has {new_index.num_nodes} nodes, replica has "
                    f"{approx_index.num_nodes}"
                )
        started = self._clock()
        with self._publish_lock:
            old_index = self.index
            if int(new_index.num_nodes) != int(old_index.num_nodes):
                raise InvalidParameterError(
                    "publish_index requires an index over the same node "
                    f"set: serving {old_index.num_nodes} nodes, got "
                    f"{new_index.num_nodes}"
                )
            if np.dtype(new_index.dtype) != np.dtype(old_index.dtype):
                raise InvalidParameterError(
                    "publish_index requires the serving dtype to match: "
                    f"serving {np.dtype(old_index.dtype)}, got "
                    f"{np.dtype(new_index.dtype)}"
                )
            if dirty_ranges is None:
                dirty_ranges = self._infer_dirty_ranges(old_index, new_index)
            ranges = tuple(
                (int(start), int(stop))
                for start, stop in dirty_ranges
                if int(stop) > int(start)
            )
            with self._tracer.span(
                "index.swap",
                from_version=self._index_version,
                to_version=self._index_version + 1,
                dirty_ranges=len(ranges),
                dirty_rows=sum(stop - start for start, stop in ranges),
            ):
                with self._swap_lock:
                    self.index = new_index
                    self._index_version += 1
                    version = self._index_version
                    if approx_index is not None:
                        self._approx_index = approx_index
                        self._approx_version = version
                # in-flight batches pinned the old (index, version) pair
                # and keep finishing on it; from here on every new batch
                # sees the new pair.  The cache upgrade below happens
                # outside _swap_lock — stale-version inserts are dropped
                # by the caches, so old batches cannot poison entries.
                patcher = self._make_row_patcher(new_index)
                col = self._cache.advance(
                    version, ranges, recompute_rows=patcher
                )
                topk = self._topk_cache.advance(version, ranges)
            elapsed = self._clock() - started
            with self._stats_lock:
                self._m_index_version.set(version)
                if approx_index is not None:
                    self._m_approx_index_version.set(version)
                    self._m_approx_atol.set(approx_index.query_atol())
                self._m_swap_seconds.observe(elapsed)
                self._m_cache_invalidated.inc(col["dropped"])
                self._m_cache_patched.inc(col["patched"])
                self._m_cache_retained.inc(col["retained"])
                self._m_topk_invalidated.inc(topk["dropped"])
                self._m_topk_retained.inc(topk["retained"])
        return version

    @staticmethod
    def _infer_dirty_ranges(old_index, new_index):
        """Row ranges whose factors changed, by direct comparison.

        Only possible when both backends expose dense ``factors``
        (monolithic indexes); otherwise every row is conservatively
        dirty — sharded rebuilds should pass the repair report's
        digest-diffed ranges instead.
        """
        n = int(new_index.num_nodes)
        if not (hasattr(old_index, "factors") and hasattr(new_index, "factors")):
            return ((0, n),)
        old_u, _, _, old_z = old_index.factors
        new_u, _, _, new_z = new_index.factors
        if old_u.shape != new_u.shape or old_z.shape != new_z.shape:
            return ((0, n),)
        dirty = np.any(old_z != new_z, axis=1) | np.any(old_u != new_u, axis=1)
        ranges: List[Tuple[int, int]] = []
        start = None
        for row in range(n):
            if dirty[row] and start is None:
                start = row
            elif not dirty[row] and start is not None:
                ranges.append((start, row))
                start = None
        if start is not None:
            ranges.append((start, n))
        return tuple(ranges)

    @staticmethod
    def _make_row_patcher(index):
        """``recompute_rows(seed, start, stop)`` against ``index``.

        Returns the *final* cached-column values for rows
        ``[start, stop)`` of seed's column — damping applied and the
        identity contribution included — via the same expression, cast,
        and add order as the backends' exact paths, so a patched column
        is bit-identical to a fresh ``query_columns([seed])``
        (partition stability of :func:`~repro.core.index.
        exact_column_product`).
        """
        damping = index.config.damping
        dtype = np.dtype(index.dtype)
        if hasattr(index, "gather_z_rows"):
            # sharded backend: gather the stored-dtype rows from owner
            # shards (same bytes the shard kernel reads)
            def load(seed, start, stop):
                z_rows = index.gather_z_rows(
                    np.arange(start, stop, dtype=np.int64)
                )
                u_row = index.gather_u_rows(
                    np.asarray([seed], dtype=np.int64)
                )[0]
                return z_rows, u_row
        else:
            u_all, _sigma, _p, z_all = index.factors

            def load(seed, start, stop):
                return z_all[start:stop], u_all[int(seed), :]

        def recompute_rows(seed, start, stop):
            z_rows, u_row = load(seed, start, stop)
            rows = damping * exact_column_product(z_rows, u_row)
            rows = np.asarray(rows, dtype=dtype)
            if start <= seed < stop:
                rows[seed - start] += 1.0
            return rows

        return recompute_rows

    # ------------------------------------------------------------------
    # stats and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServingStats:
        """A consistent snapshot of traffic, cache, and phase timings.

        Values are read from the backing metrics registry (the
        ``csrplus_serve_*`` instruments), so this dataclass and a
        Prometheus scrape of :attr:`registry` always agree.
        """
        cache = self._cache.counters()
        with self._stats_lock:
            self._m_cached_columns.set(cache["cached_columns"])
            self._m_cache_bytes.set(cache["bytes_cached"])
            self._m_integrity.set(cache["integrity_failures"])
            return ServingStats(
                requests=int(self._m_requests.value),
                batches=int(self._m_batches.value),
                seeds_requested=int(self._m_seeds.value),
                unique_seeds=int(self._m_unique.value),
                hits=int(self._m_hits.value),
                misses=int(self._m_misses.value),
                evictions=int(self._m_evictions.value),
                cached_columns=cache["cached_columns"],
                bytes_cached=cache["bytes_cached"],
                cache_capacity=self._cache.capacity,
                retries=int(self._m_retries.value),
                shed=int(self._m_shed.value),
                deadline_exceeded=int(self._m_deadline.value),
                degraded_requests=int(self._m_degraded.value),
                cache_integrity_failures=cache["integrity_failures"],
                lookup_seconds=self._m_phase["lookup"].value,
                compute_seconds=self._m_phase["compute"].value,
                assemble_seconds=self._m_phase["assemble"].value,
                tier_exact=int(self._m_tier_exact.value),
                tier_approx=int(self._m_tier_approx.value),
                approx_batches=int(self._m_approx_batches.value),
                approx_downgrades=int(self._m_approx_downgrades.value),
                budget_underflows=int(self._m_budget_underflow.value),
            )

    def topk_stats(self) -> Dict[str, int]:
        """A consistent snapshot of the ``csrplus_topk_*`` instruments."""
        cache = self._topk_cache.counters()
        with self._stats_lock:
            self._m_topk_entries.set(cache["cached_entries"])
            return {
                "batches": int(self._m_topk_batches.value),
                "seeds": int(self._m_topk_seeds.value),
                "hits": int(self._m_topk_hits.value),
                "misses": int(self._m_topk_misses.value),
                "evictions": int(self._m_topk_evictions.value),
                "cached_entries": cache["cached_entries"],
                "bytes_cached": cache["bytes_cached"],
                "candidates_scored": int(self._m_topk_candidates.value),
                "blocks_scanned": int(self._m_topk_blocks_scanned.value),
                "blocks_skipped": int(self._m_topk_blocks_skipped.value),
                "retries": int(self._m_topk_retries.value),
                "deadline_exceeded": int(self._m_topk_deadline.value),
                "degraded_requests": int(self._m_topk_degraded.value),
            }

    def slow_queries(self) -> List[dict]:
        """Recent slow-batch records, oldest first (bounded ring)."""
        with self._stats_lock:
            return list(self._slow_log)

    def latency_percentiles(self) -> Dict[str, float]:
        """Exact p50/p95/p99 over the most recent batch latencies.

        Computed from the sliding :class:`~repro.obs.latency.
        LatencyWindow` (raw samples), so unlike
        ``csrplus_serve_batch_seconds`` quantiles the values carry no
        bucket-interpolation error — at the cost of covering only the
        window's last ``latency_window_samples`` batches.  All ``nan``
        when instrumentation is disabled or no batch has completed.
        """
        return self.latency_window.snapshot()

    def clear_cache(self) -> None:
        """Drop all cached columns and rankings (for cold-start runs)."""
        self._cache.clear()
        self._topk_cache.clear()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "CoSimRankService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoSimRankService(n={self.index.num_nodes}, "
            f"cache_columns={self._cache.capacity}, "
            f"max_workers={self.max_workers}, chunk_size={self.chunk_size}, "
            f"query_mode={self.query_mode!r})"
        )
