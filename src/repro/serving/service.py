"""The concurrent query-serving front-end for a prepared CSR+ index.

:class:`CoSimRankService` answers multi-source CoSimRank requests on
behalf of many callers:

1. **coalesce** — a batch of requests is validated and its seed set
   deduplicated (:func:`~repro.serving.scheduler.plan_batch`);
2. **lookup** — distinct seeds are probed in the per-seed
   :class:`~repro.serving.cache.ColumnCache`;
3. **compute** — cache misses are split into chunks and evaluated with
   :meth:`~repro.core.index.CSRPlusIndex.query_columns`, optionally in
   parallel on a ``ThreadPoolExecutor`` (NumPy's BLAS releases the GIL
   during the matrix-vector products, so threads give real speedup);
4. **assemble** — each request's ``n x |Q|`` block is scattered
   together from the column map.

Exactness: because a column is a pure, batch-independent function of
its seed (Theorem 3.5 + per-column evaluation in ``query_columns``),
the service's output is ``np.array_equal`` to calling
``index.query(request)`` directly — for a cold cache, a warm cache, a
tiny cache mid-eviction, or no cache at all.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import QueryLike
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.serving.cache import ColumnCache
from repro.serving.scheduler import chunk_seeds, plan_batch
from repro.serving.stats import ServingStats

__all__ = ["CoSimRankService"]


class CoSimRankService:
    """Thread-safe serving wrapper around a prepared :class:`CSRPlusIndex`.

    Parameters
    ----------
    index:
        The index to serve; :meth:`~repro.core.base.SimilarityEngine.
        prepare` is called if it has not run yet.  The service only
        ever *reads* the index factors, so one index may back several
        services.
    cache_columns:
        LRU capacity in columns (each column is ``n * itemsize`` bytes).
        ``0`` disables caching.
    max_workers:
        Thread count for miss computation.  ``None`` (default) uses
        ``os.cpu_count()``; ``1`` computes misses serially on the
        calling thread (no executor is ever created).
    chunk_size:
        Misses handed to one worker task at a time.  Scheduling
        granularity only — results never depend on it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graphs import ring
    >>> from repro.core.index import CSRPlusIndex
    >>> service = CoSimRankService(CSRPlusIndex(ring(8), rank=4), max_workers=1)
    >>> cold = service.query([0, 3])                  # == index.query([0, 3])
    >>> np.array_equal(cold, service.query([0, 3]))   # warm: from cache
    True
    >>> (service.stats().hits, service.stats().misses)
    (2, 2)
    >>> service.close()
    """

    def __init__(
        self,
        index: CSRPlusIndex,
        *,
        cache_columns: int = 1024,
        max_workers: Optional[int] = None,
        chunk_size: int = 64,
    ):
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1 (or None for auto), got {max_workers}"
            )
        if chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        index.prepare()
        self.index = index
        self.chunk_size = int(chunk_size)
        self.max_workers = int(max_workers or (os.cpu_count() or 1))
        self._cache = ColumnCache(cache_columns)
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._seeds_requested = 0
        self._unique_seeds = 0
        self._lookup_seconds = 0.0
        self._compute_seconds = 0.0
        self._assemble_seconds = 0.0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # serving entry points
    # ------------------------------------------------------------------
    def query(self, seeds: QueryLike) -> np.ndarray:
        """Answer one request; identical to ``index.query(seeds)``."""
        return self.serve_batch([seeds])[0]

    def serve_batch(self, requests: Sequence[QueryLike]) -> List[np.ndarray]:
        """Answer a batch of requests, one ``n x |Q_i|`` block each.

        Seeds shared between requests (or with earlier traffic, via the
        cache) are computed once.  Safe to call from many threads
        concurrently.
        """
        plan = plan_batch(requests, self.index.num_nodes)

        started = time.perf_counter()
        hit_columns, missing = self._cache.lookup(plan.unique_seeds)
        lookup_seconds = time.perf_counter() - started

        started = time.perf_counter()
        fresh_columns = self._compute_missing(missing)
        self._cache.insert(fresh_columns)
        compute_seconds = time.perf_counter() - started

        started = time.perf_counter()
        column_map = hit_columns
        column_map.update(fresh_columns)
        results = [self._assemble(ids, column_map) for ids in plan.request_ids]
        assemble_seconds = time.perf_counter() - started

        with self._stats_lock:
            self._batches += 1
            self._requests += plan.num_requests
            self._seeds_requested += plan.seeds_requested
            self._unique_seeds += int(plan.unique_seeds.size)
            self._lookup_seconds += lookup_seconds
            self._compute_seconds += compute_seconds
            self._assemble_seconds += assemble_seconds
        return results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compute_missing(self, missing: List[int]) -> Dict[int, np.ndarray]:
        """Evaluate missing columns, in parallel chunks when it pays."""
        if not missing:
            return {}
        chunks = chunk_seeds(missing, self.chunk_size)
        if self.max_workers == 1 or len(chunks) == 1:
            blocks = [self.index.query_columns(chunk) for chunk in chunks]
        else:
            blocks = list(
                self._get_executor().map(self.index.query_columns, chunks)
            )
        columns: Dict[int, np.ndarray] = {}
        for chunk, block in zip(chunks, blocks):
            for j, seed in enumerate(chunk):
                # copy: a column view would pin the whole chunk block in
                # memory for as long as the cache retains any one column
                columns[int(seed)] = block[:, j].copy()
        return columns

    def _assemble(
        self, request_ids: np.ndarray, column_map: Dict[int, np.ndarray]
    ) -> np.ndarray:
        out = np.empty(
            (self.index.num_nodes, request_ids.size),
            dtype=self.index.factors[3].dtype,
            order="F",
        )
        for j, seed in enumerate(request_ids):
            out[:, j] = column_map[int(seed)]
        return out

    def _get_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise InvalidParameterError("service is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="cosimrank-serve",
                )
            return self._executor

    # ------------------------------------------------------------------
    # stats and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServingStats:
        """A consistent snapshot of traffic, cache, and phase timings."""
        cache = self._cache.counters()
        with self._stats_lock:
            return ServingStats(
                requests=self._requests,
                batches=self._batches,
                seeds_requested=self._seeds_requested,
                unique_seeds=self._unique_seeds,
                hits=cache["hits"],
                misses=cache["misses"],
                evictions=cache["evictions"],
                cached_columns=cache["cached_columns"],
                bytes_cached=cache["bytes_cached"],
                cache_capacity=self._cache.capacity,
                lookup_seconds=self._lookup_seconds,
                compute_seconds=self._compute_seconds,
                assemble_seconds=self._assemble_seconds,
            )

    def clear_cache(self) -> None:
        """Drop all cached columns (useful for cold-start measurements)."""
        self._cache.clear()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "CoSimRankService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoSimRankService(n={self.index.num_nodes}, "
            f"cache_columns={self._cache.capacity}, "
            f"max_workers={self.max_workers}, chunk_size={self.chunk_size})"
        )
