"""Deterministic open-loop load generation for the serving stack.

The serving experiments in the paper report throughput under synthetic
multi-source traffic; this module makes that traffic reproducible and
gives it realistic shape:

* **Open loop** — arrivals follow a schedule fixed *before* the run, so
  a slow service cannot slow the offered load down.  Each request's
  latency is measured from its *scheduled* arrival time, which charges
  queueing delay to the service instead of silently dropping it
  (coordinated-omission-free accounting).
* **Zipf popularity** — seed ids are drawn from a rank-``s`` Zipf
  distribution over a seeded random permutation of the node ids, so a
  small hot set dominates (exercising the column cache) without the
  hot set being the low node ids.
* **Bursts** — the arrival rate alternates between the base QPS and
  ``burst_factor``× it with a fixed period and duty cycle, stressing
  admission control and deadlines the way diurnal or thundering-herd
  traffic does.
* **Determinism** — the schedule is a pure function of the
  :class:`LoadProfile` (``numpy.random.default_rng(seed)``), carries a
  SHA-256 digest, and :func:`run_load` takes an injectable clock/sleep
  pair.  With :class:`SimulatedClock` two runs of the same profile
  produce byte-identical reports (the determinism test and the CI
  perf-smoke lane rely on this).

Results land in three places: a :class:`LoadReport` (QPS, p50/p95/p99,
per-outcome rates, SLO verdicts), ``csrplus_loadgen_*`` instruments in
a metrics registry (scrapeable next to the service's own), and —
through the service — the ordinary ``csrplus_serve_*`` metrics and
spans.  ``csrplus loadgen`` is the CLI front-end and ``csrplus bench``
snapshots the report into the perf trajectory (docs/observability.md).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    ColumnComputeFailed,
    InvalidParameterError,
    ReproError,
    DeadlineExceeded,
    IndexCorrupted,
    ServiceOverloaded,
    ShardCorrupted,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import AvailabilitySLO, LatencySLO, SLOReport, evaluate_slos

__all__ = [
    "LoadProfile",
    "ScheduledRequest",
    "LoadSchedule",
    "LoadReport",
    "SimulatedClock",
    "build_schedule",
    "run_load",
    "zipf_probabilities",
    "loadgen_slos",
    "OUTCOMES",
]

#: Terminal states a generated request can end in.  ``ok`` (exact
#: answer) and ``approx`` (answered by the approximate tier, within its
#: published atol — the ``quality="auto"`` degrade policy turning
#: would-be sheds into served requests, docs/approx.md) are the good
#: ones; ``shed`` / ``deadline`` / ``degraded`` / ``failed`` are the
#: availability SLO's bad outcomes.  ``failed`` is the hard-failure
#: bucket (corruption, compute errors) — distinct from ``degraded``
#: (soft, retryable degradation), so chaos-induced corruption can
#: never masquerade as graceful degradation in a report.
OUTCOMES = ("ok", "approx", "shed", "deadline", "degraded", "failed")

#: Error types classified as ``failed``: the request did not get an
#: answer *and* the cause was data loss or a compute fault, not an
#: explicit serving policy (admission, deadline).
_HARD_FAILURES = (IndexCorrupted, ShardCorrupted, ColumnComputeFailed)


@dataclass(frozen=True)
class LoadProfile:
    """Everything that determines a workload, and nothing else.

    Two equal profiles always produce the same schedule; the digest of
    that schedule is recorded in reports so drift is detectable.

    Parameters
    ----------
    requests:
        Number of requests to generate.
    qps:
        Base offered rate (arrivals are Poisson at this rate outside
        bursts).
    seeds_per_request:
        Distinct seed ids per multi-source request.
    zipf_s:
        Popularity skew exponent; ``0`` is uniform, ``~1`` is web-like.
    burst_factor:
        Rate multiplier during burst windows (``1`` disables bursts).
    burst_period_s:
        Length of one burst cycle in seconds.
    burst_duty:
        Fraction of each cycle spent at the burst rate, in ``[0, 1]``.
    seed:
        RNG seed; the sole source of randomness.
    """

    requests: int = 100
    qps: float = 100.0
    seeds_per_request: int = 4
    zipf_s: float = 1.1
    burst_factor: float = 1.0
    burst_period_s: float = 1.0
    burst_duty: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise InvalidParameterError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.qps <= 0:
            raise InvalidParameterError(f"qps must be > 0, got {self.qps}")
        if self.seeds_per_request < 1:
            raise InvalidParameterError(
                f"seeds_per_request must be >= 1, got {self.seeds_per_request}"
            )
        if self.zipf_s < 0:
            raise InvalidParameterError(
                f"zipf_s must be >= 0, got {self.zipf_s}"
            )
        if self.burst_factor < 1.0:
            raise InvalidParameterError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_period_s <= 0:
            raise InvalidParameterError(
                f"burst_period_s must be > 0, got {self.burst_period_s}"
            )
        if not 0.0 <= self.burst_duty <= 1.0:
            raise InvalidParameterError(
                f"burst_duty must be in [0, 1], got {self.burst_duty}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "qps": self.qps,
            "seeds_per_request": self.seeds_per_request,
            "zipf_s": self.zipf_s,
            "burst_factor": self.burst_factor,
            "burst_period_s": self.burst_period_s,
            "burst_duty": self.burst_duty,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned arrival: when, and which seeds to ask for."""

    at_s: float
    seeds: Tuple[int, ...]


@dataclass(frozen=True)
class LoadSchedule:
    """An immutable arrival plan produced by :func:`build_schedule`."""

    profile: LoadProfile
    num_nodes: int
    requests: Tuple[ScheduledRequest, ...]

    @property
    def duration_s(self) -> float:
        """Time of the last scheduled arrival."""
        return self.requests[-1].at_s if self.requests else 0.0

    def digest(self) -> str:
        """SHA-256 over the canonical schedule (arrival times + seeds).

        Identical profiles yield identical digests; any change to the
        generator, the profile, or numpy's bit-stream shows up here
        before it silently shifts benchmark numbers.
        """
        canonical = json.dumps(
            [[round(req.at_s, 9), list(req.seeds)] for req in self.requests],
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()


def zipf_probabilities(
    num_nodes: int, s: float, rng: np.random.Generator
) -> np.ndarray:
    """Zipf(``s``) popularity over a random permutation of the nodes.

    Rank ``r`` (1-based) gets weight ``r**-s``; the permutation
    decouples popularity from node id so locality in the id space never
    masquerades as cache friendliness.  ``s = 0`` degenerates to
    uniform.
    """
    if num_nodes < 1:
        raise InvalidParameterError(f"num_nodes must be >= 1, got {num_nodes}")
    weights = np.arange(1, num_nodes + 1, dtype=np.float64) ** (-float(s))
    probabilities = np.empty(num_nodes, dtype=np.float64)
    probabilities[rng.permutation(num_nodes)] = weights / weights.sum()
    return probabilities


def build_schedule(profile: LoadProfile, num_nodes: int) -> LoadSchedule:
    """Materialise the arrival plan for a profile (pure, deterministic).

    Inter-arrival gaps are exponential with the rate the burst wave
    dictates at the *current* arrival time: inside a burst window
    (the first ``burst_duty`` fraction of each ``burst_period_s``
    cycle) the rate is ``qps * burst_factor``, outside it is ``qps``.
    """
    rng = np.random.default_rng(profile.seed)
    probabilities = zipf_probabilities(num_nodes, profile.zipf_s, rng)
    replace = profile.seeds_per_request > num_nodes
    scheduled: List[ScheduledRequest] = []
    now = 0.0
    for _ in range(profile.requests):
        phase = (now % profile.burst_period_s) / profile.burst_period_s
        rate = profile.qps * (
            profile.burst_factor if phase < profile.burst_duty else 1.0
        )
        now += float(rng.exponential(1.0 / rate))
        seeds = rng.choice(
            num_nodes,
            size=profile.seeds_per_request,
            replace=replace,
            p=probabilities,
        )
        scheduled.append(
            ScheduledRequest(at_s=now, seeds=tuple(int(s) for s in seeds))
        )
    return LoadSchedule(
        profile=profile, num_nodes=num_nodes, requests=tuple(scheduled)
    )


class SimulatedClock:
    """Virtual monotonic time for fully deterministic load runs.

    ``sleep`` advances the clock instead of waiting, and every ``now``
    reading advances it by ``tick`` — so "work" takes a deterministic
    nonzero amount of virtual time proportional to how often the run
    consults the clock.  Inject as ``run_load(..., clock=sim.now,
    sleep=sim.sleep)`` to make two identical runs produce identical
    reports, latencies included.
    """

    def __init__(self, start: float = 0.0, tick: float = 1e-4):
        if tick < 0:
            raise InvalidParameterError(f"tick must be >= 0, got {tick}")
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        self._now += self.tick
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds


@dataclass
class LoadReport:
    """Everything one :func:`run_load` pass measured."""

    profile: Dict[str, object]
    schedule_digest: str
    num_nodes: int
    requests: int
    duration_s: float
    qps_offered: float
    qps_achieved: float
    latency_s: Dict[str, float]          # p50 / p95 / p99 / mean / max
    outcomes: Dict[str, int]             # per-OUTCOMES counts
    slo: Optional[Dict[str, object]] = None
    topk: Optional[int] = None
    mutations: int = 0
    latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def ok_rate(self) -> float:
        return self.outcomes.get("ok", 0) / max(1, self.requests)

    @property
    def served_rate(self) -> float:
        """Fraction of requests that got an answer (exact or approx)."""
        served = self.outcomes.get("ok", 0) + self.outcomes.get("approx", 0)
        return served / max(1, self.requests)

    @property
    def slo_ok(self) -> bool:
        """True when no evaluated objective failed (vacuously true)."""
        return bool(self.slo["ok"]) if self.slo else True

    def as_dict(self) -> Dict[str, object]:
        payload = {
            "profile": dict(self.profile),
            "schedule_digest": self.schedule_digest,
            "num_nodes": self.num_nodes,
            "requests": self.requests,
            "duration_s": self.duration_s,
            "qps_offered": self.qps_offered,
            "qps_achieved": self.qps_achieved,
            "latency_s": dict(self.latency_s),
            "outcomes": dict(self.outcomes),
            "ok_rate": self.ok_rate,
            "served_rate": self.served_rate,
        }
        if self.topk is not None:
            payload["topk"] = self.topk
        if self.mutations:
            payload["mutations"] = self.mutations
        if self.slo is not None:
            payload["slo"] = self.slo
        return payload

    def render(self) -> str:
        """Human-readable run summary (plus the SLO table if evaluated)."""
        kind = f"top-{self.topk}" if self.topk is not None else "column"
        lines = [
            f"loadgen: {self.requests} {kind} requests over "
            f"{self.duration_s:.3f}s  "
            f"(offered {self.qps_offered:.1f} qps, achieved "
            f"{self.qps_achieved:.1f} qps)",
            f"schedule: digest {self.schedule_digest[:16]}…  "
            f"zipf_s={self.profile['zipf_s']:g} "
            f"burst_factor={self.profile['burst_factor']:g} "
            f"seed={self.profile['seed']}",
            "latency: "
            + "  ".join(
                f"{key} {self.latency_s[key] * 1000:.2f}ms"
                for key in ("p50", "p95", "p99", "max")
            ),
            "outcomes: "
            + "  ".join(
                f"{outcome}={self.outcomes.get(outcome, 0)}"
                for outcome in OUTCOMES
            )
            + f"  (ok rate {self.ok_rate:.2%}, "
            f"served rate {self.served_rate:.2%})",
        ]
        if self.mutations:
            lines.append(
                f"mutations: {self.mutations} live edge batches applied "
                "mid-run (docs/dynamic.md)"
            )
        return "\n".join(lines)


def loadgen_slos(
    *,
    p99_ms: Optional[float] = None,
    p50_ms: Optional[float] = None,
    availability: Optional[float] = None,
) -> Tuple[object, ...]:
    """Objectives wired to the ``csrplus_loadgen_*`` metric names.

    The defaults in :data:`~repro.obs.slo.DEFAULT_SERVE_SLOS` read the
    service's own instruments; a load run instead judges what *it*
    observed — scheduled-arrival latency and per-request outcomes —
    which is the client's view of the service.
    """
    slos: List[object] = []
    if p99_ms is not None:
        slos.append(LatencySLO(
            name="loadgen-p99",
            threshold_s=p99_ms / 1000.0,
            percentile=99.0,
            metric="csrplus_loadgen_request_seconds",
        ))
    if p50_ms is not None:
        slos.append(LatencySLO(
            name="loadgen-p50",
            threshold_s=p50_ms / 1000.0,
            percentile=50.0,
            metric="csrplus_loadgen_request_seconds",
        ))
    if availability is not None:
        slos.append(AvailabilitySLO(
            name="loadgen-availability",
            target=availability,
            total_metric="csrplus_loadgen_requests_total",
            bad_metrics=(
                "csrplus_loadgen_shed_total",
                "csrplus_loadgen_deadline_total",
                "csrplus_loadgen_degraded_total",
                "csrplus_loadgen_failed_total",
            ),
        ))
    return tuple(slos)


def _classify(error: Optional[ReproError], tier: str = "exact") -> str:
    """Map one request's (error, tier) pair to its terminal outcome.

    Hard failures (:data:`_HARD_FAILURES` — corruption, compute faults)
    are ``"failed"``, never ``"degraded"``: lumping them together let
    chaos-induced corruption read as graceful degradation in
    availability verdicts.  An errorless answer from the approximate
    tier is ``"approx"`` — served, within its atol contract, but worth
    telling apart from ``"ok"``.
    """
    if error is None:
        return "approx" if tier == "approx" else "ok"
    if isinstance(error, ServiceOverloaded):
        return "shed"
    if isinstance(error, DeadlineExceeded):
        return "deadline"
    if isinstance(error, _HARD_FAILURES):
        return "failed"
    return "degraded"


def run_load(
    service,
    schedule: LoadSchedule,
    *,
    topk: Optional[int] = None,
    deadline_s: Optional[float] = None,
    quality: Optional[str] = None,
    slos: Sequence[object] = (),
    registry: Optional[MetricsRegistry] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    mutator: Optional[Callable[[int], None]] = None,
    mutate_every: int = 0,
) -> LoadReport:
    """Drive a service through a schedule and report what happened.

    Requests are dispatched serially on the calling thread in schedule
    order; a request whose arrival time has already passed (because an
    earlier one ran long) is dispatched immediately and its queueing
    delay counts against its latency — open-loop accounting, per the
    module docstring.  ``topk`` switches each request from
    ``serve_batch`` to ``serve_topk``; shed / deadline / per-request
    failures are recorded as outcomes, never raised.

    ``quality`` is forwarded to the service's ``quality=`` knob
    (docs/approx.md): with ``"auto"`` and an attached approximate
    replica, overload shows up as ``approx`` outcomes (served, counted
    good by the availability SLO) instead of ``shed``.  ``None``
    (default) leaves the service's default, so reports from services
    without the knob stay comparable.

    ``mutator`` / ``mutate_every`` interleave live-graph updates with
    the traffic (docs/dynamic.md): after every ``mutate_every``-th
    dispatched request, ``mutator(mutation_index)`` is called — the
    hook typically routes an edge batch through a
    :class:`~repro.serving.live.LiveIndexChain` attached to the
    service, so the run measures serving behaviour *across* version
    swaps.  A mutator that raises aborts the run (mutations are part of
    the scenario, not traffic, so their failures are not outcomes).

    ``registry`` (default: a fresh private one) receives the
    ``csrplus_loadgen_*`` instruments; pass ``slos`` (for example from
    :func:`loadgen_slos`) to have the verdicts evaluated over that
    registry, exported as ``csrplus_slo_*`` gauges, and embedded in the
    returned :class:`LoadReport`.
    """
    if topk is not None and topk < 1:
        raise InvalidParameterError(f"topk must be >= 1, got {topk}")
    if mutate_every < 0:
        raise InvalidParameterError(
            f"mutate_every must be >= 0, got {mutate_every}"
        )
    if mutate_every and mutator is None:
        raise InvalidParameterError(
            "mutate_every > 0 requires a mutator callable"
        )
    reg = registry if registry is not None else MetricsRegistry()
    m_requests = reg.counter(
        "csrplus_loadgen_requests_total", "Requests dispatched by the generator"
    )
    m_outcomes = {
        outcome: reg.counter(
            "csrplus_loadgen_outcomes_total",
            "Generated requests by terminal outcome",
            labels={"outcome": outcome},
        )
        for outcome in OUTCOMES
    }
    # unlabelled aliases: AvailabilitySLO sums whole families by name,
    # so each bad outcome also gets its own family (cf. the serve-side
    # csrplus_serve_{shed,deadline_exceeded,degraded_requests}_* trio)
    m_bad = {
        "shed": reg.counter(
            "csrplus_loadgen_shed_total", "Generated requests shed by admission"
        ),
        "deadline": reg.counter(
            "csrplus_loadgen_deadline_total",
            "Generated requests that exceeded their deadline",
        ),
        "degraded": reg.counter(
            "csrplus_loadgen_degraded_total",
            "Generated requests that degraded for soft, non-deadline reasons",
        ),
        "failed": reg.counter(
            "csrplus_loadgen_failed_total",
            "Generated requests lost to hard failures (corruption, "
            "compute faults)",
        ),
    }
    m_latency = reg.histogram(
        "csrplus_loadgen_request_seconds",
        "Per-request latency from scheduled arrival to completion",
    )

    m_mutations = reg.counter(
        "csrplus_loadgen_mutations_total",
        "Live edge batches applied by the mutation schedule",
    )

    outcomes = {outcome: 0 for outcome in OUTCOMES}
    latencies: List[float] = []
    mutations = 0
    start = clock()
    for position, request in enumerate(schedule.requests):
        if (
            mutator is not None
            and mutate_every
            and position
            and position % mutate_every == 0
        ):
            mutator(mutations)
            mutations += 1
            m_mutations.inc()
        arrival = start + request.at_s
        delay = arrival - clock()
        if delay > 0:
            sleep(delay)
        # only forward quality when asked for, so services without the
        # knob keep working under the generator
        extra = {} if quality is None else {"quality": quality}
        try:
            if topk is not None:
                detailed = service.serve_topk_detailed(
                    list(request.seeds), topk, deadline_s=deadline_s, **extra
                )
                first_bad = next(
                    (o for o in detailed.outcomes if not o.ok), None
                )
                judged = first_bad if first_bad is not None else (
                    detailed.outcomes[0] if detailed.outcomes else None
                )
                outcome = _classify(
                    judged.error if judged is not None else None,
                    getattr(judged, "tier", "exact"),
                )
            else:
                detailed = service.serve_batch_detailed(
                    [list(request.seeds)], deadline_s=deadline_s, **extra
                )
                judged = detailed.outcomes[0]
                outcome = _classify(
                    judged.error, getattr(judged, "tier", "exact")
                )
        except ServiceOverloaded:
            outcome = "shed"
        except DeadlineExceeded:  # pragma: no cover - detailed never raises it
            outcome = "deadline"
        latency = max(0.0, clock() - arrival)
        latencies.append(latency)
        outcomes[outcome] += 1
        m_requests.inc()
        m_outcomes[outcome].inc()
        if outcome in m_bad:
            m_bad[outcome].inc()
        m_latency.observe(latency)
    elapsed = max(clock() - start, 1e-12)

    samples = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.percentile(samples, (50.0, 95.0, 99.0))
    report = LoadReport(
        profile=schedule.profile.as_dict(),
        schedule_digest=schedule.digest(),
        num_nodes=schedule.num_nodes,
        requests=len(schedule.requests),
        duration_s=elapsed,
        qps_offered=len(schedule.requests) / max(schedule.duration_s, 1e-12),
        qps_achieved=len(schedule.requests) / elapsed,
        latency_s={
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "mean": float(samples.mean()),
            "max": float(samples.max()),
        },
        outcomes=outcomes,
        topk=topk,
        mutations=mutations,
        latencies=latencies,
    )
    if slos:
        slo_report: SLOReport = evaluate_slos(slos, reg, service.registry)
        slo_report.export(reg)
        report.slo = slo_report.as_dict()
    return report
