"""Admission control: a bounded in-flight seed budget.

Seeds (distinct columns to produce) are the serving layer's real unit
of work — compute is per seed and peak memory is one column per seed —
so the overload guard bounds *seeds in flight*, not batches: ten small
batches and one huge one are charged what they actually cost.

:class:`SeedBudget` is deliberately non-blocking: an over-budget batch
is *shed* immediately (the caller raises
:class:`~repro.errors.ServiceOverloaded`) rather than queued.  Queueing
under overload only converts an explicit, retryable error into
unbounded latency — shedding keeps the latency of admitted work flat,
which is the behaviour the ROADMAP's "heavy traffic" target needs.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Optional

from repro.errors import InvalidParameterError

__all__ = ["SeedBudget"]

logger = logging.getLogger("repro.serving")


class SeedBudget:
    """Thread-safe counter of in-flight seeds with a hard ceiling.

    Parameters
    ----------
    max_inflight:
        Ceiling on concurrently admitted seeds; ``None`` disables
        admission control (every batch is admitted).
    on_underflow:
        Optional callback invoked with the seed deficit whenever
        :meth:`release` returns more than was acquired (the service
        wires this to ``csrplus_serve_budget_underflow_total``).

    An unmatched :meth:`release` — a double-release in some degrade
    path — is an accounting bug, but it is *surfaced*, not raised:
    ``release`` runs inside ``finally`` blocks, where raising would
    mask the batch's original error.  Instead the in-flight count is
    clamped to zero, the event is counted in :attr:`underflows`,
    reported through ``on_underflow``, and logged at WARNING.

    Examples
    --------
    >>> budget = SeedBudget(4)
    >>> budget.try_acquire(3)
    True
    >>> budget.try_acquire(2)          # 3 + 2 > 4: shed
    False
    >>> budget.release(3)
    >>> budget.in_flight
    0
    """

    def __init__(
        self,
        max_inflight: Optional[int],
        *,
        on_underflow: Optional[Callable[[int], None]] = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise InvalidParameterError(
                f"max_inflight must be >= 1 (or None to disable), "
                f"got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._in_flight = 0
        self._underflows = 0
        self._on_underflow = on_underflow

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def underflows(self) -> int:
        """How many times ``release`` exceeded what was acquired."""
        with self._lock:
            return self._underflows

    def try_acquire(self, seeds: int) -> bool:
        """Reserve ``seeds`` units; ``False`` (no side effect) if full."""
        if seeds < 0:
            raise InvalidParameterError(f"seeds must be >= 0, got {seeds}")
        with self._lock:
            if (
                self.max_inflight is not None
                and self._in_flight + seeds > self.max_inflight
            ):
                return False
            self._in_flight += seeds
            return True

    def release(self, seeds: int) -> None:
        """Return ``seeds`` units to the budget (paired with acquire).

        A release that exceeds what was acquired clamps to zero and is
        surfaced (counter + callback + WARNING) instead of raised — see
        the class docstring.
        """
        deficit = 0
        with self._lock:
            self._in_flight -= seeds
            if self._in_flight < 0:
                deficit = -self._in_flight
                self._in_flight = 0
                self._underflows += 1
        if deficit:
            logger.warning(
                "SeedBudget.release(%d) without a matching try_acquire "
                "(deficit %d seeds); in-flight clamped to 0",
                seeds,
                deficit,
            )
            if self._on_underflow is not None:
                self._on_underflow(deficit)
