"""Admission control: a bounded in-flight seed budget.

Seeds (distinct columns to produce) are the serving layer's real unit
of work — compute is per seed and peak memory is one column per seed —
so the overload guard bounds *seeds in flight*, not batches: ten small
batches and one huge one are charged what they actually cost.

:class:`SeedBudget` is deliberately non-blocking: an over-budget batch
is *shed* immediately (the caller raises
:class:`~repro.errors.ServiceOverloaded`) rather than queued.  Queueing
under overload only converts an explicit, retryable error into
unbounded latency — shedding keeps the latency of admitted work flat,
which is the behaviour the ROADMAP's "heavy traffic" target needs.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import InvalidParameterError

__all__ = ["SeedBudget"]


class SeedBudget:
    """Thread-safe counter of in-flight seeds with a hard ceiling.

    Parameters
    ----------
    max_inflight:
        Ceiling on concurrently admitted seeds; ``None`` disables
        admission control (every batch is admitted).

    Examples
    --------
    >>> budget = SeedBudget(4)
    >>> budget.try_acquire(3)
    True
    >>> budget.try_acquire(2)          # 3 + 2 > 4: shed
    False
    >>> budget.release(3)
    >>> budget.in_flight
    0
    """

    def __init__(self, max_inflight: Optional[int]):
        if max_inflight is not None and max_inflight < 1:
            raise InvalidParameterError(
                f"max_inflight must be >= 1 (or None to disable), "
                f"got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def try_acquire(self, seeds: int) -> bool:
        """Reserve ``seeds`` units; ``False`` (no side effect) if full."""
        if seeds < 0:
            raise InvalidParameterError(f"seeds must be >= 0, got {seeds}")
        with self._lock:
            if (
                self.max_inflight is not None
                and self._in_flight + seeds > self.max_inflight
            ):
                return False
            self._in_flight += seeds
            return True

    def release(self, seeds: int) -> None:
        """Return ``seeds`` units to the budget (paired with acquire)."""
        with self._lock:
            self._in_flight -= seeds
            if self._in_flight < 0:  # pragma: no cover - programming error
                self._in_flight = 0
                raise InvalidParameterError(
                    "SeedBudget.release without a matching try_acquire"
                )
