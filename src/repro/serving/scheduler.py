"""Batch planning: coalesce requests, dedupe seeds, chunk the misses.

The scheduler is deliberately pure — it turns a list of raw requests
into a :class:`BatchPlan` (validated per-request ids plus the distinct
seed union) and splits miss lists into work chunks.  All locking,
caching, and execution policy lives in
:class:`~repro.serving.service.CoSimRankService`; keeping the planning
side-effect-free makes it independently testable and trivially
thread-safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.base import QueryLike, normalize_queries
from repro.errors import InvalidParameterError

__all__ = [
    "BatchPlan",
    "plan_batch",
    "chunk_seeds",
    "effective_chunk_size",
    "GEMM_MIN_CHUNK",
]

#: Minimum worker-chunk width in batched query mode.  A batched
#: ``Z @ (U[Q,:])^T`` product narrower than this wastes the GEMM's
#: blocking (the kernel's advantage over per-seed GEMV only
#: materialises at |Q| ≳ 64); exact mode is width-indifferent.
GEMM_MIN_CHUNK = 64


@dataclass(frozen=True)
class BatchPlan:
    """A validated, deduplicated execution plan for one request batch.

    Attributes
    ----------
    request_ids:
        One validated int64 array per request, in request order
        (duplicates within a request preserved — one output column per
        requested seed).
    unique_seeds:
        Sorted distinct union of all requested seeds; the only seeds
        that ever touch the cache or the index.
    """

    request_ids: Tuple[np.ndarray, ...]
    unique_seeds: np.ndarray

    @property
    def num_requests(self) -> int:
        return len(self.request_ids)

    @property
    def seeds_requested(self) -> int:
        """Total output columns, duplicates included."""
        return int(sum(ids.size for ids in self.request_ids))


def plan_batch(requests: Sequence[QueryLike], num_nodes: int) -> BatchPlan:
    """Validate every request and coalesce the batch's seed set.

    Each request is normalised exactly like
    :meth:`~repro.core.base.SimilarityEngine.query` input (so the
    service rejects precisely what the index would reject), then the
    union of all seeds is deduplicated once for the whole batch —
    a seed shared by ten requests is looked up and computed at most
    once.
    """
    request_ids = tuple(
        normalize_queries(request, num_nodes) for request in requests
    )
    if request_ids:
        unique_seeds = np.unique(np.concatenate(request_ids))
    else:
        unique_seeds = np.empty(0, dtype=np.int64)
    return BatchPlan(request_ids=request_ids, unique_seeds=unique_seeds)


def effective_chunk_size(chunk_size: int, query_mode: str = "exact") -> int:
    """Worker-chunk width tuned for the query mode's kernel shape.

    ``"exact"`` mode evaluates one GEMV per seed, so the configured
    ``chunk_size`` is purely a scheduling granularity and passes
    through unchanged.  ``"batched"`` mode evaluates each chunk as one
    GEMM whose width *is* the chunk size; chunks are widened to at
    least :data:`GEMM_MIN_CHUNK` columns so the kernel amortises its
    blocking (narrower chunks would pay GEMM overheads at GEMV speed).
    """
    if chunk_size < 1:
        raise InvalidParameterError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    if query_mode == "batched":
        return max(int(chunk_size), GEMM_MIN_CHUNK)
    return int(chunk_size)


def chunk_seeds(seeds: Sequence[int], chunk_size: int) -> List[np.ndarray]:
    """Split a miss list into contiguous chunks of at most ``chunk_size``.

    In exact query mode, chunking only affects *scheduling* granularity,
    never values: columns are evaluated per seed (see
    :meth:`~repro.core.index.CSRPlusIndex.query_columns`), so any
    chunking of the same miss set yields bit-identical columns.  In
    batched mode a chunk is one GEMM, so the chunking *is* the batch
    structure — size chunks with :func:`effective_chunk_size`.
    """
    if chunk_size < 1:
        raise InvalidParameterError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    seed_array = np.asarray(seeds, dtype=np.int64).ravel()
    return [
        seed_array[start : start + chunk_size]
        for start in range(0, seed_array.size, chunk_size)
    ]
