"""Concurrent query serving for CSR+ (docs/serving.md).

This package turns a prepared :class:`~repro.core.index.CSRPlusIndex`
into a traffic-serving component:

* :class:`~repro.serving.service.CoSimRankService` — the front-end:
  request coalescing, per-seed column caching, parallel miss
  computation, bit-exact results;
* :class:`~repro.serving.cache.ColumnCache` — thread-safe LRU of
  ``[S]_{*,s}`` columns;
* :class:`~repro.serving.scheduler.BatchPlan` /
  :func:`~repro.serving.scheduler.plan_batch` /
  :func:`~repro.serving.scheduler.chunk_seeds` — pure batch planning;
* :class:`~repro.serving.stats.ServingStats` — traffic/cache/timing
  snapshot;
* :class:`~repro.serving.registry.IndexRegistry` — named, lazily
  loaded on-disk indexes.
"""

from repro.serving.cache import ColumnCache
from repro.serving.registry import IndexRegistry
from repro.serving.scheduler import BatchPlan, chunk_seeds, plan_batch
from repro.serving.service import CoSimRankService
from repro.serving.stats import ServingStats

__all__ = [
    "CoSimRankService",
    "ColumnCache",
    "ServingStats",
    "IndexRegistry",
    "BatchPlan",
    "plan_batch",
    "chunk_seeds",
]
