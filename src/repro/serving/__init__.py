"""Concurrent query serving for CSR+ (docs/serving.md, docs/robustness.md).

This package turns a prepared :class:`~repro.core.index.CSRPlusIndex`
into a traffic-serving component:

* :class:`~repro.serving.service.CoSimRankService` — the front-end:
  request coalescing, per-seed column caching, parallel miss
  computation, bit-exact results; plus the robustness layer — per-batch
  deadlines, admission control with load shedding, and per-seed failure
  isolation (graceful degradation);
* :class:`~repro.serving.cache.ColumnCache` — thread-safe LRU of
  ``[S]_{*,s}`` columns with shape/dtype validation and optional
  checksum integrity;
* :class:`~repro.serving.scheduler.BatchPlan` /
  :func:`~repro.serving.scheduler.plan_batch` /
  :func:`~repro.serving.scheduler.chunk_seeds` — pure batch planning;
* :class:`~repro.serving.admission.SeedBudget` — bounded in-flight
  seed budget backing the load shedder;
* :class:`~repro.serving.retry.RetryPolicy` /
  :class:`~repro.serving.retry.Retrier` — capped, jittered exponential
  backoff with injectable clock/sleep;
* :class:`~repro.serving.results.BatchResult` /
  :class:`~repro.serving.results.RequestOutcome` — per-request
  outcomes for degraded batches;
* :class:`~repro.serving.stats.ServingStats` — traffic/cache/timing/
  failure snapshot;
* :class:`~repro.serving.registry.IndexRegistry` — named, lazily
  loaded on-disk indexes with retry, checksum validation, and
  automatic re-prepare on corruption;
* :class:`~repro.serving.live.LiveIndexChain` /
  :class:`~repro.serving.live.IndexVersion` — live-graph serving
  (docs/dynamic.md): edge batches repaired into per-version stores and
  published to attached services with zero downtime
  (:meth:`~repro.serving.service.CoSimRankService.publish_index`);
* :mod:`repro.serving.loadgen` — deterministic open-loop load
  generation (Zipf popularity, bursts, SLO verdicts, and live-mutation
  schedules) behind ``csrplus loadgen`` and ``csrplus bench``;
* :class:`~repro.serving.approx.ApproxIndex` /
  :func:`~repro.serving.approx.approx_query_atol` — the approximate
  serving tier (docs/approx.md): random-projection sketches behind the
  exact index's query surface, with a published AvgDiff error
  contract, backing the ``quality="approx"``/``"auto"`` degrade
  policy;
* :mod:`repro.serving.frontend` — the multi-process network front end
  (docs/frontend.md): an asyncio HTTP/JSON server fanning queries to a
  pool of worker processes that mmap the sharded store read-only (one
  physical copy of ``Z`` in page cache), with cross-request
  coalescing, merged Prometheus scrapes, graceful drain, and
  crashed-worker respawn;
* :class:`~repro.serving.locks.FileLock` — re-entrant advisory file
  lock coordinating multi-process access to on-disk index state.
"""

from repro.serving.admission import SeedBudget
from repro.serving.approx import ApproxConfig, ApproxIndex, approx_query_atol
from repro.serving.cache import ColumnCache, TopKCache
from repro.serving.loadgen import (
    LoadProfile,
    LoadReport,
    LoadSchedule,
    ScheduledRequest,
    SimulatedClock,
    build_schedule,
    loadgen_slos,
    run_load,
    zipf_probabilities,
)
from repro.serving.live import IndexVersion, LiveIndexChain
from repro.serving.registry import IndexRegistry
from repro.serving.results import BatchResult, RequestOutcome
from repro.serving.retry import Retrier, RetryPolicy
from repro.serving.scheduler import (
    GEMM_MIN_CHUNK,
    BatchPlan,
    chunk_seeds,
    effective_chunk_size,
    plan_batch,
)
from repro.serving.locks import FileLock
from repro.serving.service import QUALITY_LEVELS, CoSimRankService
from repro.serving.stats import ServingStats

# the frontend imports repro.serving.service directly, so pulling it in
# last keeps the package import acyclic
from repro.serving.frontend import (  # noqa: E402  (deliberate ordering)
    BackgroundFrontend,
    FrontendClient,
    FrontendConfig,
    FrontendServer,
    WorkerPool,
)

__all__ = [
    "CoSimRankService",
    "QUALITY_LEVELS",
    "ApproxConfig",
    "ApproxIndex",
    "approx_query_atol",
    "ColumnCache",
    "TopKCache",
    "ServingStats",
    "IndexRegistry",
    "LiveIndexChain",
    "IndexVersion",
    "BatchPlan",
    "plan_batch",
    "chunk_seeds",
    "effective_chunk_size",
    "GEMM_MIN_CHUNK",
    "SeedBudget",
    "RetryPolicy",
    "Retrier",
    "BatchResult",
    "RequestOutcome",
    "LoadProfile",
    "LoadSchedule",
    "ScheduledRequest",
    "LoadReport",
    "SimulatedClock",
    "build_schedule",
    "run_load",
    "zipf_probabilities",
    "loadgen_slos",
    "BackgroundFrontend",
    "FileLock",
    "FrontendClient",
    "FrontendConfig",
    "FrontendServer",
    "WorkerPool",
]
