"""The approximate serving tier: sketched CoSimRank behind the index surface.

:class:`ApproxIndex` packages :class:`~repro.baselines.rpcosim.RPCoSimEngine`'s
multi-source Johnson–Lindenstrauss sketches (``Y_k = R Q^k``, ``d x n`` each)
behind the same column / top-k query surface as
:class:`~repro.core.index.CSRPlusIndex` — ``query_columns``, ``top_k``,
``save``/``load`` — so :class:`~repro.serving.service.CoSimRankService` can
hold it as a *replica* next to the exact index and downgrade an over-budget
batch onto it instead of shedding (``quality="auto"``, docs/approx.md).

The tier's answers are estimates, and the contract says exactly how wrong
they may be: :func:`approx_query_atol` bounds the AvgDiff (the paper's §6
accuracy metric, :func:`repro.metrics.accuracy.avg_diff`) between an
approximate block and the exact tier's block for the same seeds.  It plays
the same role for this tier that
:func:`~repro.core.index.batched_query_atol` plays for batched-GEMM exact
serving: a published tolerance the test suite and the serving layer both
enforce.

Why the replica is cheap enough to always keep resident: the sketches are
``(K+1) * d * n`` floats with ``d ~ 256`` — for large ``n`` that is far
smaller than the exact index's ``O(r n)`` factors *plus* its column cache,
and the query is one ``(d x n)^T @ (d x |Q|)`` GEMM per retained power.
"""

from __future__ import annotations

import math
import os
from dataclasses import asdict, dataclass
from typing import List, Optional, Union

import numpy as np

from repro.baselines.rpcosim import RPCoSimEngine
from repro.core.config import QUERY_MODES
from repro.core.iterations import baseline_iterations_for_rank
from repro.core.topk import TopKResult
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["ApproxConfig", "ApproxIndex", "approx_query_atol"]

#: Safety factor over the estimator's per-entry noise scale.  The mean
#: absolute sketch error per entry is ``sigma * sqrt(2/pi) ~ 0.8 sigma``
#: with ``sigma <= standard_error_bound()``, so 8x covers both the tail
#: fluctuation of the AvgDiff average at small ``n * |Q|`` and the exact
#: tier's own (far smaller) low-rank deviation from the truncated series.
APPROX_ATOL_SAFETY = 8.0


def approx_query_atol(num_projections: int, damping: float) -> float:
    """AvgDiff tolerance between the approximate and exact tiers.

    Derived from ``RPCoSimEngine.standard_error_bound()``: each sketched
    inner product has noise scale at most ``sqrt(2/d) / (1 - c)``, so the
    mean absolute difference over a served ``n x |Q|`` block is bounded
    (with a wide margin — :data:`APPROX_ATOL_SAFETY`) by

        ``atol = 8 * sqrt(2 / num_projections) / (1 - damping)``.

    This is the approximate tier's published contract, in the spirit of
    :func:`~repro.core.index.batched_query_atol`: every answer the
    ``"approx"`` tier returns satisfies
    ``avg_diff(approx_block, exact_block) <= atol`` for the same seeds,
    and the property suite (``tests/properties/test_approx_equivalence``)
    pins it across dtypes, seeds, and sketch widths.
    """
    if num_projections < 1:
        raise InvalidParameterError(
            f"num_projections must be >= 1, got {num_projections}"
        )
    if not 0.0 < damping < 1.0:
        raise InvalidParameterError(
            f"damping must be in (0, 1), got {damping}"
        )
    return APPROX_ATOL_SAFETY * math.sqrt(2.0 / num_projections) / (1.0 - damping)


@dataclass(frozen=True)
class ApproxConfig:
    """Parameters of an :class:`ApproxIndex` (mirrors ``CSRPlusConfig``).

    ``query_mode`` exists for surface compatibility with the exact index
    config; a sketched query has a single evaluation strategy, so the
    field is accepted and ignored by :meth:`ApproxIndex.query_columns`.
    """

    damping: float = 0.6
    iterations: int = 5
    num_projections: int = 256
    seed: int = 0
    dtype: str = "float64"
    query_mode: str = "exact"

    def as_dict(self) -> dict:
        return asdict(self)


class ApproxIndex:
    """Sketch-backed approximate CoSimRank index (the degrade tier).

    Wraps an :class:`RPCoSimEngine` in ``mode="multi-source"`` — only the
    ``(K+1)`` sketches are retained, never the ``n x n`` estimate — and
    exposes the serving backend surface: ``prepare``/``num_nodes``/
    ``dtype``/``query_columns``/``top_k``/``save``/``load``.

    Examples
    --------
    >>> from repro.graphs import ring
    >>> approx = ApproxIndex(ring(16), num_projections=128).prepare()
    >>> block = approx.query_columns([0, 3])       # n x 2 estimate
    >>> block.shape
    (16, 2)
    """

    name = "CSR+approx"

    def __init__(
        self,
        graph: DiGraph,
        *,
        damping: float = 0.6,
        iterations: int = 5,
        num_projections: int = 256,
        seed: int = 0,
        dtype: "np.typing.DTypeLike" = np.float64,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        self._engine = RPCoSimEngine(
            graph,
            damping=damping,
            iterations=iterations,
            num_projections=num_projections,
            mode="multi-source",
            seed=seed,
            memory_budget_bytes=memory_budget_bytes,
            dangling=dangling,
            dtype=dtype,
        )
        self.config = ApproxConfig(
            damping=float(damping),
            iterations=int(iterations),
            num_projections=int(num_projections),
            seed=int(seed),
            dtype=str(np.dtype(dtype)),
        )

    @classmethod
    def for_rank(cls, graph: DiGraph, rank: int, **kwargs) -> "ApproxIndex":
        """Replica matched to an exact index of ``rank`` (``K = r``).

        Uses the same fairness rule as the baseline study so the sketch
        truncates the series exactly where the exact tier does.
        """
        return cls(graph, iterations=baseline_iterations_for_rank(rank), **kwargs)

    # ------------------------------------------------------------------
    # index surface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        return self._engine.graph

    @property
    def num_nodes(self) -> int:
        return self._engine.num_nodes

    @property
    def damping(self) -> float:
        return self._engine.damping

    @property
    def dtype(self) -> np.dtype:
        return self._engine.dtype

    @property
    def num_projections(self) -> int:
        return self._engine.num_projections

    @property
    def is_prepared(self) -> bool:
        return self._engine.is_prepared

    @property
    def memory(self):
        return self._engine.memory

    def prepare(self) -> "ApproxIndex":
        """Materialise the sketches (idempotent).  Returns ``self``."""
        self._engine.prepare()
        return self

    def query_atol(self) -> float:
        """This replica's :func:`approx_query_atol` contract."""
        return approx_query_atol(self.config.num_projections, self.config.damping)

    def standard_error_bound(self) -> float:
        return self._engine.standard_error_bound()

    def query_columns(self, seeds, mode: Optional[str] = None) -> np.ndarray:
        """Estimated similarity columns ``[S_hat]_{*, seeds[j]}``.

        Same shape contract as ``CSRPlusIndex.query_columns``: an
        ``n x len(seeds)`` Fortran-ordered block in the index dtype,
        duplicates honoured.  ``mode`` is accepted for surface
        compatibility (any of :data:`~repro.core.config.QUERY_MODES`,
        or ``None``) and ignored — a sketched query has one evaluation
        strategy, so there is no exact/batched distinction to pick.
        """
        if mode is not None and mode not in QUERY_MODES:
            raise InvalidParameterError(
                f"query mode must be one of {QUERY_MODES} (or None), got {mode!r}"
            )
        seed_ids = np.asarray(seeds, dtype=np.int64).ravel()
        if seed_ids.size == 0:
            return np.empty((self.num_nodes, 0), dtype=self.dtype, order="F")
        return np.asfortranarray(self._engine.query(seed_ids))

    def query(self, queries) -> np.ndarray:
        """Alias for :meth:`query_columns` (SimilarityEngine spelling)."""
        return self.query_columns(queries)

    def top_k(self, query: int, k: int, exclude_self: bool = True) -> np.ndarray:
        """Ids of the estimated top-``k`` (ties by ascending id)."""
        return self._engine.top_k(query, k, exclude_self)

    def top_k_batch(
        self, seeds, k: int, exclude_self: bool = True
    ) -> List[TopKResult]:
        """One :class:`~repro.core.topk.TopKResult` per seed, in order.

        The sketched replica has no norm-ordered blocks to prune, so the
        whole estimated column is scored (``candidates_scored = n``) and
        sorted with the serving layer's canonical tie order (descending
        score, ties by ascending node id).
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        seed_ids = np.asarray(seeds, dtype=np.int64).ravel()
        block = self.query_columns(seed_ids)
        n = self.num_nodes
        results: List[TopKResult] = []
        for j, seed in enumerate(seed_ids):
            scores = block[:, j]
            order = np.lexsort((np.arange(n), -scores))
            if exclude_self:
                order = order[order != int(seed)]
            top = order[: min(k, order.size)].astype(np.int64)
            results.append(
                TopKResult(
                    nodes=top,
                    scores=scores[top].copy(),
                    candidates_scored=n,
                    blocks_scanned=1,
                    blocks_skipped=0,
                )
            )
        return results

    # ------------------------------------------------------------------
    # persistence (registry-compatible: save(path) / load(path, graph))
    # ------------------------------------------------------------------
    def save(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Serialise the prepared sketches to an ``.npz`` file."""
        self.prepare()
        np.savez_compressed(
            os.fspath(path),
            sketches=np.stack(self._engine._sketches),
            num_nodes=np.int64(self.num_nodes),
            damping=np.float64(self.config.damping),
            iterations=np.int64(self.config.iterations),
            num_projections=np.int64(self.config.num_projections),
            seed=np.int64(self.config.seed),
        )

    @classmethod
    def load(
        cls, path: Union[str, "os.PathLike[str]"], graph: DiGraph
    ) -> "ApproxIndex":
        """Load a replica saved with :meth:`save` for the same graph."""
        with np.load(os.fspath(path)) as data:
            num_nodes = int(data["num_nodes"])
            if num_nodes != graph.num_nodes:
                raise InvalidParameterError(
                    f"saved approx replica is for a graph with {num_nodes} "
                    f"nodes, got one with {graph.num_nodes}"
                )
            sketches = data["sketches"]
            index = cls(
                graph,
                damping=float(data["damping"]),
                iterations=int(data["iterations"]),
                num_projections=int(data["num_projections"]),
                seed=int(data["seed"]),
                dtype=sketches.dtype,
            )
            engine = index._engine
            engine._sketches = [np.ascontiguousarray(y) for y in sketches]
        engine.memory.charge(
            "precompute/sketches", sum(y.nbytes for y in engine._sketches)
        )
        engine._prepared = True
        return index

    def __repr__(self) -> str:
        state = "prepared" if self.is_prepared else "unprepared"
        return (
            f"ApproxIndex(n={self.num_nodes}, d={self.config.num_projections}, "
            f"K={self.config.iterations}, c={self.config.damping}, {state})"
        )
