"""On-disk registry of prepared CSR+ indexes.

A serving deployment rarely wants to pay the offline SVD on every
process start.  :class:`IndexRegistry` maps a *name* to a prepared
:class:`~repro.core.index.CSRPlusIndex`, lazily resolving it in three
tiers: an in-process table, a saved ``<root>/<name>.npz`` file
(via the index's own :meth:`~repro.core.index.CSRPlusIndex.save` /
:meth:`~repro.core.index.CSRPlusIndex.load`), and finally a fresh
build — which is then saved so the next process hits the disk tier.

Persistence is lossless (``savez`` round-trips the float factors
bit-for-bit), so a registry-loaded index answers queries identically
to the in-memory one it was saved from.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Dict, List, Optional, Union

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["IndexRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class IndexRegistry:
    """Lazily build, save, and reload prepared indexes by name.

    Parameters
    ----------
    root:
        Directory holding one ``<name>.npz`` file per registered index
        (created if missing).

    Examples
    --------
    >>> import tempfile
    >>> from repro.graphs import ring
    >>> registry = IndexRegistry(tempfile.mkdtemp())
    >>> index = registry.get("ring8-r4", ring(8), rank=4)   # built + saved
    >>> registry.names()
    ['ring8-r4']
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"]):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.RLock()
        self._indexes: Dict[str, CSRPlusIndex] = {}

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def path_for(self, name: str) -> str:
        """The ``.npz`` path backing ``name`` (validates the name)."""
        if not _NAME_RE.match(name):
            raise InvalidParameterError(
                "index names must match [A-Za-z0-9][A-Za-z0-9._-]* "
                f"(got {name!r})"
            )
        return os.path.join(self.root, f"{name}.npz")

    def names(self) -> List[str]:
        """Registered names: in-memory plus on-disk, sorted."""
        with self._lock:
            known = set(self._indexes)
        for entry in os.listdir(self.root):
            if entry.endswith(".npz"):
                known.add(entry[: -len(".npz")])
        return sorted(known)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            if name in self._indexes:
                return True
        return os.path.exists(self.path_for(name))

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def get(
        self,
        name: str,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        **overrides,
    ) -> CSRPlusIndex:
        """A prepared index for ``name``, resolved memory -> disk -> build.

        On a disk hit the saved factors are loaded against ``graph``
        (node-count mismatches raise
        :class:`~repro.errors.InvalidParameterError`).  On a full miss
        the index is built from ``graph`` with ``config``/``overrides``
        and saved for future processes.  Thread-safe; concurrent
        callers of the same name build at most once.
        """
        path = self.path_for(name)
        with self._lock:
            index = self._indexes.get(name)
            if index is not None:
                return index
            if os.path.exists(path):
                index = CSRPlusIndex.load(path, graph)
            else:
                index = CSRPlusIndex(graph, config, **overrides).prepare()
                index.save(path)
            self._indexes[name] = index
            return index

    def put(self, name: str, index: CSRPlusIndex) -> None:
        """Register an already-prepared index and persist it."""
        path = self.path_for(name)
        index.save(path)  # save() enforces prepared-ness
        with self._lock:
            self._indexes[name] = index

    def evict(self, name: str, *, delete_file: bool = False) -> None:
        """Drop ``name`` from memory (and optionally from disk)."""
        path = self.path_for(name)
        with self._lock:
            self._indexes.pop(name, None)
        if delete_file and os.path.exists(path):
            os.remove(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexRegistry(root={self.root!r}, names={self.names()})"
