"""On-disk registry of prepared CSR+ indexes, hardened for serving.

A serving deployment rarely wants to pay the offline SVD on every
process start.  :class:`IndexRegistry` maps a *name* to a prepared
:class:`~repro.core.index.CSRPlusIndex`, lazily resolving it in three
tiers: an in-process table, a saved ``<root>/<name>.npz`` file
(via the index's own :meth:`~repro.core.index.CSRPlusIndex.save` /
:meth:`~repro.core.index.CSRPlusIndex.load`), and finally a fresh
build — which is then saved so the next process hits the disk tier.

Persistence is lossless (``savez`` round-trips the float factors
bit-for-bit), so a registry-loaded index answers queries identically
to the in-memory one it was saved from.

Robustness (docs/robustness.md):

* every disk read/write runs under a jittered exponential-backoff
  :class:`~repro.serving.retry.Retrier`, so a flaky filesystem costs
  retries, not an outage;
* saved files carry a ``.sha256`` sidecar that is verified before
  loading — a truncated or bit-flipped index raises the typed
  :class:`~repro.errors.IndexCorrupted` instead of a cold ``numpy``
  error;
* :meth:`get` falls back automatically: a file that stays unreadable
  after retries (or fails validation) is quarantined to
  ``<name>.npz.corrupt`` and the index is re-prepared from the graph,
  degrading corruption to a slow start;
* every failure path counts in ``csrplus_registry_*`` metrics on the
  process-global :func:`repro.obs.get_registry` (or an injected one).

Sharded stores (docs/sharding.md): :meth:`get_sharded` resolves a
``<root>/<name>.shards/`` directory the same three-tier way, but with
*shard-grained* integrity: the manifest's own sha256 sidecar condemns
only the manifest, and each shard is verified against the per-shard
digests recorded inside it — a single corrupt shard is quarantined and
deterministically regenerated in place
(:func:`~repro.sharding.builder.rebuild_shards`, counted in
``csrplus_registry_shard_repairs_total``) while the other shards'
files are never rewritten.  Only an unusable manifest (or a rebuild
that fails to reproduce the recorded digests) condemns the whole
store.

Multi-process safety (docs/frontend.md): the in-process ``threading``
lock serialises threads, but the frontend runs *worker processes* that
may resolve the same name concurrently.  Disk-tier resolution
therefore also holds a per-name advisory
:class:`~repro.serving.locks.FileLock` (``<root>/<name>.lock``), so
when two processes race a corrupt store, exactly one quarantines and
rebuilds while the other blocks and then re-verifies the already
repaired bytes — never a double rebuild, never a quarantine of the
repairer's fresh output.
"""

from __future__ import annotations

import hashlib
import logging
import os
import random
import re
import threading
import time
from typing import Callable, Dict, List, Optional, Union

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import (
    IndexCorrupted,
    InvalidParameterError,
    RetryableError,
    ShardCorrupted,
)
from repro.graphs.digraph import DiGraph
from repro.obs.metrics import MetricsRegistry
from repro.serving.locks import FileLock
from repro.serving.retry import Retrier, RetryPolicy
from repro.testing import faults

__all__ = ["IndexRegistry"]

logger = logging.getLogger("repro.serving")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class IndexRegistry:
    """Lazily build, save, and reload prepared indexes by name.

    Parameters
    ----------
    root:
        Directory holding one ``<name>.npz`` file per registered index
        (created if missing).
    retry_policy:
        Backoff schedule for disk I/O; defaults to
        :class:`~repro.serving.retry.RetryPolicy` (3 attempts,
        50 ms base, x2, 10 % jitter).
    sleep / rng:
        Injectable side effects for the retrier (tests pass fakes).
    metrics:
        Registry for the ``csrplus_registry_*`` counters; defaults to
        the process-global :func:`repro.obs.get_registry`.

    Examples
    --------
    >>> import tempfile
    >>> from repro.graphs import ring
    >>> registry = IndexRegistry(tempfile.mkdtemp())
    >>> index = registry.get("ring8-r4", ring(8), rank=4)   # built + saved
    >>> registry.names()
    ['ring8-r4']
    """

    def __init__(
        self,
        root: Union[str, "os.PathLike[str]"],
        *,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.RLock()
        self._file_locks: Dict[str, FileLock] = {}
        self._indexes: Dict[str, CSRPlusIndex] = {}
        self._approx: Dict[str, object] = {}  # name -> ApproxIndex
        self._sharded: Dict[str, object] = {}  # name -> ShardedIndex
        self._live: Dict[str, object] = {}  # name -> LiveIndexChain
        if metrics is None:
            import repro.obs as obs

            metrics = obs.get_registry()
        self._m_retries = metrics.counter(
            "csrplus_registry_retries_total",
            "Disk I/O retries performed by the index registry",
        )
        self._m_corrupt = metrics.counter(
            "csrplus_registry_corrupt_total",
            "Saved indexes that failed checksum or structural validation",
        )
        self._m_rebuilds = metrics.counter(
            "csrplus_registry_rebuilds_total",
            "Indexes re-prepared because their saved file was unusable",
        )
        self._m_shard_repairs = metrics.counter(
            "csrplus_registry_shard_repairs_total",
            "Single shards quarantined and regenerated inside a store",
        )
        self.retrier = Retrier(
            retry_policy if retry_policy is not None else RetryPolicy(),
            sleep=sleep,
            rng=rng,
            on_retry=self._count_retry,
        )

    def _process_lock(self, name: str) -> FileLock:
        """The cross-process lock serialising disk-tier work on ``name``.

        One sidecar ``<root>/<name>.lock`` per name (the file is never
        deleted — see :class:`~repro.serving.locks.FileLock`); memoised
        so re-entry from the same process nests instead of deadlocking.
        """
        with self._lock:
            lock = self._file_locks.get(name)
            if lock is None:
                lock = FileLock(os.path.join(self.root, f"{name}.lock"))
                self._file_locks[name] = lock
            return lock

    def _count_retry(
        self, attempt: int, delay: float, exc: BaseException
    ) -> None:
        self._m_retries.inc()
        logger.warning(
            "registry I/O failed (attempt %d, retrying in %.3fs): %s",
            attempt, delay, exc,
        )

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def path_for(self, name: str) -> str:
        """The ``.npz`` path backing ``name`` (validates the name)."""
        if not _NAME_RE.match(name):
            raise InvalidParameterError(
                "index names must match [A-Za-z0-9][A-Za-z0-9._-]* "
                f"(got {name!r})"
            )
        return os.path.join(self.root, f"{name}.npz")

    def approx_path_for(self, name: str) -> str:
        """The ``.approx.npz`` path backing ``name``'s sketch replica."""
        if not _NAME_RE.match(name):
            raise InvalidParameterError(
                "index names must match [A-Za-z0-9][A-Za-z0-9._-]* "
                f"(got {name!r})"
            )
        return os.path.join(self.root, f"{name}.approx.npz")

    def names(self) -> List[str]:
        """Registered names: in-memory plus on-disk, sorted."""
        with self._lock:
            known = set(self._indexes)
        for entry in os.listdir(self.root):
            if entry.endswith(".approx.npz"):
                known.add(entry[: -len(".approx.npz")])
            elif entry.endswith(".npz"):
                known.add(entry[: -len(".npz")])
        return sorted(known)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            if name in self._indexes:
                return True
        return os.path.exists(self.path_for(name))

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def get(
        self,
        name: str,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        **overrides,
    ) -> CSRPlusIndex:
        """A prepared index for ``name``, resolved memory -> disk -> build.

        On a disk hit the saved factors are checksum-verified and loaded
        against ``graph`` (node-count mismatches raise
        :class:`~repro.errors.InvalidParameterError`).  Transient read
        failures are retried with backoff; a file that is corrupt — or
        still unreadable after the retry budget — is quarantined and the
        index is rebuilt from ``graph`` as if it had never been saved.
        On a full miss the index is built with ``config``/``overrides``
        and saved for future processes (a failed save is logged, not
        raised: the in-memory index still serves).  Thread-safe;
        concurrent callers of the same name build at most once.
        """
        path = self.path_for(name)
        with self._lock:
            index = self._indexes.get(name)
            if index is not None:
                return index
            # the file lock covers existence-check through rebuild-save:
            # a process racing a corrupt file blocks here, then loads
            # the bytes the winner already repaired
            with self._process_lock(name):
                if os.path.exists(path):
                    try:
                        index = self.retrier.call(
                            self._load_checked, path, graph
                        )
                    except IndexCorrupted as exc:
                        self._m_corrupt.inc()
                        self._m_rebuilds.inc()
                        logger.warning(
                            "quarantining corrupt index %r and rebuilding: %s",
                            path, exc,
                        )
                        self._quarantine(path)
                        index = None
                    except OSError as exc:
                        # retry budget exhausted on a read error: fall back
                        # to a rebuild rather than taking the service down
                        self._m_rebuilds.inc()
                        logger.warning(
                            "index %r unreadable after retries, rebuilding: %s",
                            path, exc,
                        )
                        index = None
                if index is None:
                    index = CSRPlusIndex(graph, config, **overrides).prepare()
                    try:
                        self._save_checked(path, index)
                    except (OSError, RetryableError) as exc:
                        logger.warning(
                            "could not persist index %r (serving from memory "
                            "only): %s", path, exc,
                        )
            self._indexes[name] = index
            return index

    # ------------------------------------------------------------------
    # approximate replicas (docs/approx.md)
    # ------------------------------------------------------------------
    def get_approx(self, name: str, graph: DiGraph, **params):
        """A prepared :class:`~repro.serving.approx.ApproxIndex` for ``name``.

        The sketch replica backing the approximate serving tier resolves
        through the same hardened three tiers as :meth:`get` — in-process
        table, checksum-verified ``<root>/<name>.approx.npz`` file (with
        retries, quarantine, and automatic rebuild), then a fresh sketch
        build from ``graph`` with ``params`` (forwarded to
        :class:`~repro.serving.approx.ApproxIndex`, e.g.
        ``num_projections=256``) which is saved for the next process.
        Registered under the same ``name`` as its exact counterpart so
        ``evict(name)`` drops both.
        """
        from repro.serving.approx import ApproxIndex

        path = self.approx_path_for(name)
        with self._lock:
            approx = self._approx.get(name)
            if approx is not None:
                return approx
            with self._process_lock(name):
                if os.path.exists(path):
                    try:
                        approx = self.retrier.call(
                            self._load_checked, path, graph,
                            loader=ApproxIndex.load,
                        )
                    except IndexCorrupted as exc:
                        self._m_corrupt.inc()
                        self._m_rebuilds.inc()
                        logger.warning(
                            "quarantining corrupt approx replica %r and "
                            "rebuilding: %s", path, exc,
                        )
                        self._quarantine(path)
                        approx = None
                    except OSError as exc:
                        self._m_rebuilds.inc()
                        logger.warning(
                            "approx replica %r unreadable after retries, "
                            "rebuilding: %s", path, exc,
                        )
                        approx = None
                if approx is None:
                    approx = ApproxIndex(graph, **params).prepare()
                    try:
                        self._save_checked(path, approx)
                    except (OSError, RetryableError) as exc:
                        logger.warning(
                            "could not persist approx replica %r (serving "
                            "from memory only): %s", path, exc,
                        )
            self._approx[name] = approx
            return approx

    # ------------------------------------------------------------------
    # sharded stores (shard-grained integrity + repair)
    # ------------------------------------------------------------------
    def shard_store_path_for(self, name: str) -> str:
        """The ``.shards`` directory backing ``name`` (validates the name)."""
        if not _NAME_RE.match(name):
            raise InvalidParameterError(
                "index names must match [A-Za-z0-9][A-Za-z0-9._-]* "
                f"(got {name!r})"
            )
        return os.path.join(self.root, f"{name}.shards")

    def get_sharded(
        self,
        name: str,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        *,
        num_shards: int = 4,
        max_workers: Optional[int] = None,
        query_mode: Optional[str] = None,
        validate_reads: bool = False,
        **overrides,
    ):
        """A ready :class:`~repro.sharding.ShardedIndex` for ``name``.

        Resolution mirrors :meth:`get` — memory, then the on-disk
        ``<root>/<name>.shards/`` store, then an out-of-core build
        (:func:`~repro.sharding.builder.build_sharded_store`) — but the
        disk tier verifies *per shard*: every shard file is re-hashed
        against the manifest digests, and corrupt or missing shards are
        quarantined and deterministically regenerated **individually**
        (``csrplus_registry_shard_repairs_total``), leaving healthy
        shards' files untouched.  Only an unusable manifest, or a
        repair whose bytes no longer reproduce the manifest digests
        (the graph or config changed under the store), quarantines the
        whole directory and triggers a full rebuild
        (``csrplus_registry_rebuilds_total``).
        """
        from repro.sharding import ShardedIndex, ShardStore
        from repro.sharding.builder import build_sharded_store, rebuild_shards

        path = self.shard_store_path_for(name)
        with self._lock:
            sharded = self._sharded.get(name)
            if sharded is not None:
                return sharded
            store: Optional[ShardStore] = None
            # quarantine-and-rebuild must be single-writer across
            # *processes*: the loser of this file lock re-verifies the
            # winner's repaired shards instead of condemning them
            with self._process_lock(name):
                if os.path.exists(os.path.join(path, "manifest.json")):
                    faults.fire("registry.load", path=path)
                    try:
                        store = ShardStore(path)
                    except ShardCorrupted as exc:
                        self._m_corrupt.inc()
                        self._m_rebuilds.inc()
                        logger.warning(
                            "quarantining shard store %r (bad manifest) and "
                            "rebuilding: %s", path, exc,
                        )
                        self._quarantine_store(path)
                        store = None
                    if store is not None:
                        store = self._repair_shards(
                            store, graph, rebuild_shards
                        )
                if store is None:
                    store = build_sharded_store(
                        graph,
                        path,
                        num_shards=num_shards,
                        config=config,
                        overwrite=True,
                        **overrides,
                    )
            sharded = ShardedIndex(
                store,
                query_mode=query_mode,
                max_workers=max_workers,
                validate_reads=validate_reads,
            )
            self._sharded[name] = sharded
            return sharded

    def _repair_shards(self, store, graph: DiGraph, rebuild_shards):
        """Verify every shard; regenerate the bad ones in place.

        Returns the (possibly repaired) store, or ``None`` when repair
        is impossible and the whole store was quarantined.
        """
        bad = []
        for i in range(store.num_shards):
            try:
                store.verify_shard(i)
            except (ShardCorrupted, OSError) as exc:
                self._m_corrupt.inc()
                logger.warning(
                    "shard %d of store %r failed verification: %s",
                    i, store.path, exc,
                )
                bad.append(i)
        if not bad:
            return store
        for i in bad:
            store.quarantine_shard(i)
        try:
            repaired = self.retrier.call(
                rebuild_shards, graph, store.path, bad
            )
        except ShardCorrupted as exc:
            # determinism broken: the graph/config no longer produce the
            # recorded bytes — the store as a whole is stale
            self._m_rebuilds.inc()
            logger.warning(
                "shard repair of %r could not reproduce the manifest "
                "digests; quarantining the whole store: %s",
                store.path, exc,
            )
            self._quarantine_store(store.path)
            return None
        self._m_shard_repairs.inc(len(repaired))
        for i in bad:
            store.verify_shard(i)  # repaired bytes match the manifest
        logger.warning(
            "repaired %d corrupt shard(s) %s of store %r in place",
            len(bad), bad, store.path,
        )
        return store

    def _quarantine_store(self, path: str) -> None:
        """Move a whole bad store directory aside (best effort)."""
        target = path + ".corrupt"
        try:
            if os.path.isdir(target):
                import shutil

                shutil.rmtree(target, ignore_errors=True)
            os.replace(path, target)
        except OSError:  # pragma: no cover - quarantine is best-effort
            import shutil

            shutil.rmtree(path, ignore_errors=True)

    # ------------------------------------------------------------------
    # live chains (versioned zero-downtime updates, docs/dynamic.md)
    # ------------------------------------------------------------------
    def live_store_root_for(self, name: str) -> str:
        """The per-version store root backing a live ``name``."""
        if not _NAME_RE.match(name):
            raise InvalidParameterError(
                "index names must match [A-Za-z0-9][A-Za-z0-9._-]* "
                f"(got {name!r})"
            )
        return os.path.join(self.root, f"{name}.live")

    def get_live(
        self,
        name: str,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        *,
        num_shards: Optional[int] = None,
        dirty_threshold: float = 0.5,
        keep_versions: Optional[int] = None,
        max_workers: Optional[int] = None,
        query_mode: Optional[str] = None,
        **overrides,
    ):
        """A :class:`~repro.serving.live.LiveIndexChain` for ``name``.

        The chain owns an evolving copy of ``graph`` and a versioned
        backend: monolithic when ``num_shards`` is ``None``, else
        per-version shard stores under ``<root>/<name>.live/``
        (``v000000/``, ``v000001/``, ...) produced by targeted repair
        (:func:`~repro.sharding.builder.repair_sharded_store`).  Edge
        batches go through :meth:`~repro.serving.live.LiveIndexChain.
        update_edges`, which publishes each new version atomically to
        every attached service.  Memoised per name; thread-safe.
        """
        from repro.serving.live import DEFAULT_KEEP_VERSIONS, LiveIndexChain

        with self._lock:
            chain = self._live.get(name)
            if chain is not None:
                return chain
            chain = LiveIndexChain(
                graph,
                config,
                store_root=(
                    self.live_store_root_for(name)
                    if num_shards is not None
                    else None
                ),
                num_shards=num_shards,
                dirty_threshold=dirty_threshold,
                keep_versions=(
                    keep_versions
                    if keep_versions is not None
                    else DEFAULT_KEEP_VERSIONS
                ),
                max_workers=max_workers,
                query_mode=query_mode,
                **overrides,
            )
            self._live[name] = chain
            return chain

    def put(self, name: str, index: CSRPlusIndex) -> None:
        """Register an already-prepared index and persist it.

        Persistence failures are retried with backoff and, if the
        budget is exhausted, re-raised as
        :class:`~repro.errors.RetryableError` (the caller explicitly
        asked for durability, so a silent in-memory fallback would lie).
        """
        path = self.path_for(name)
        try:
            self._save_checked(path, index)  # save() enforces prepared-ness
        except OSError as exc:
            raise RetryableError(
                f"failed to persist index {name!r} to {path!r}: {exc}"
            ) from exc
        with self._lock:
            self._indexes[name] = index

    def evict(self, name: str, *, delete_file: bool = False) -> None:
        """Drop ``name`` from memory (and optionally from disk).

        Covers the monolithic ``.npz``, the ``.approx.npz`` sketch
        replica, and any ``.shards`` store registered under the same
        name (a memory-tier :class:`~repro.sharding.ShardedIndex` is
        closed on eviction).
        """
        path = self.path_for(name)
        approx_path = self.approx_path_for(name)
        with self._lock:
            self._indexes.pop(name, None)
            self._approx.pop(name, None)
            sharded = self._sharded.pop(name, None)
            self._live.pop(name, None)
        if sharded is not None:
            sharded.close()
        if delete_file:
            for target in (
                path,
                path + ".sha256",
                approx_path,
                approx_path + ".sha256",
            ):
                if os.path.exists(target):
                    os.remove(target)
            for directory in (
                self.shard_store_path_for(name),
                self.live_store_root_for(name),
            ):
                if os.path.isdir(directory):
                    import shutil

                    shutil.rmtree(directory, ignore_errors=True)

    # ------------------------------------------------------------------
    # hardened disk I/O
    # ------------------------------------------------------------------
    def _load_checked(self, path: str, graph: DiGraph, loader=CSRPlusIndex.load):
        """One load attempt: fault seam, checksum, typed structural errors.

        ``loader(path, graph)`` deserialises the artifact — the exact
        index's :meth:`~repro.core.index.CSRPlusIndex.load` by default,
        :meth:`~repro.serving.approx.ApproxIndex.load` for sketch
        replicas.  Raises ``OSError`` for (retryable) I/O failures,
        :class:`~repro.errors.IndexCorrupted` for validation failures,
        and :class:`~repro.errors.InvalidParameterError` when the file
        is a healthy index for a *different* graph.
        """
        faults.fire("registry.load", path=path)
        digest_path = path + ".sha256"
        if os.path.exists(digest_path):
            with open(digest_path, encoding="utf-8") as handle:
                expected = handle.read().strip()
            actual = _sha256_file(path)
            if actual != expected:
                raise IndexCorrupted(
                    path,
                    f"sha256 mismatch (expected {expected[:12]}..., "
                    f"got {actual[:12]}...)",
                )
        try:
            return loader(path, graph)
        except (InvalidParameterError, OSError):
            raise
        except Exception as exc:
            # numpy/zipfile raise a zoo of exception types for damaged
            # archives; collapse them all into the typed taxonomy
            raise IndexCorrupted(path, f"{type(exc).__name__}: {exc}") from exc

    def _save_checked(self, path: str, index) -> None:
        """Persist ``index`` plus its checksum sidecar, with retries.

        ``index`` is anything with a ``save(path)`` method — the exact
        :class:`~repro.core.index.CSRPlusIndex` or an approximate
        :class:`~repro.serving.approx.ApproxIndex` replica.
        """

        def attempt() -> None:
            faults.fire("registry.save", path=path)
            index.save(path)
            with open(path + ".sha256", "w", encoding="utf-8") as handle:
                handle.write(_sha256_file(path) + "\n")

        self.retrier.call(attempt)

    def _quarantine(self, path: str) -> None:
        """Move a bad file aside (best effort) so the rebuild can save."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:  # pragma: no cover - quarantine is best-effort
            try:
                os.remove(path)
            except OSError:
                pass
        try:
            os.remove(path + ".sha256")
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexRegistry(root={self.root!r}, names={self.names()})"
