"""Deterministic fault injection for the serving stack.

The production code exposes named *seams* — one-line hooks at the
places where the real world fails: disk reads in the index registry,
cached-column reads, and worker-chunk computation.  A test (or a
staging deployment) arms a :class:`FaultPlan` describing which seams
should misbehave and how often; inside the plan's ``with`` block the
seams fire, outside it they are a single ``if not _active_plans``
check (no locks, no allocation), so the hooks cost nothing in
production.

Seams currently wired in (grep for ``faults.fire`` / ``faults.transform``):

==================  =====================================================
site                where it fires
==================  =====================================================
``registry.load``   before each attempt to read a saved index
                    (:meth:`~repro.serving.registry.IndexRegistry.get`)
``registry.save``   before each attempt to persist an index
                    (:meth:`~repro.serving.registry.IndexRegistry.put`)
``cache.read``      on every cache hit, may corrupt the returned column
                    (:meth:`~repro.serving.cache.ColumnCache.lookup`)
``compute.chunk``   at the start of every worker chunk, including the
                    per-seed isolation retries (context key ``seeds``)
``shard.read``      on every shard load in a sharded store, before the
                    ``.npy`` files are opened (``fire``, context keys
                    ``shard``/``path``) and on the loaded arrays
                    (``transform``, may corrupt the returned shard)
                    (:meth:`~repro.sharding.store.ShardStore.load_shard`)
==================  =====================================================

Example
-------
>>> from repro.testing.faults import FaultPlan
>>> plan = FaultPlan().fail("registry.load", times=2, exc=OSError("flaky disk"))
>>> with plan:
...     pass  # registry.get() here fails twice, then succeeds
>>> plan.injected("registry.load")
0

Three fault kinds compose freely on one site (delays apply before
failures): :meth:`FaultPlan.fail` raises, :meth:`FaultPlan.delay`
sleeps (latency injection), and :meth:`FaultPlan.corrupt` rewrites the
value flowing through a ``transform`` seam.  ``times=None`` means
"every time"; a ``when`` predicate on the seam's context dict scopes a
rule to, say, chunks containing one particular seed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["FaultPlan", "fire", "transform", "active"]

_registry_lock = threading.Lock()
_active_plans: List["FaultPlan"] = []


def active() -> bool:
    """Whether any :class:`FaultPlan` is currently armed."""
    return bool(_active_plans)


def fire(site: str, **context: Any) -> None:
    """Production seam: maybe delay and/or raise at ``site``.

    A no-op unless a plan is armed.  Called *inside* the operation it
    guards so a raised fault travels the same error path a real failure
    would.
    """
    if not _active_plans:
        return
    for plan in list(_active_plans):
        plan._fire(site, context)


def transform(site: str, value: Any, **context: Any) -> Any:
    """Production seam: maybe corrupt ``value`` flowing through ``site``."""
    if not _active_plans:
        return value
    for plan in list(_active_plans):
        value = plan._transform(site, value, context)
    return value


class _Rule:
    """One armed fault: kind, budget, matcher, payload."""

    __slots__ = ("kind", "times", "when", "exc_factory", "seconds", "corruptor", "used")

    def __init__(
        self,
        kind: str,
        times: Optional[int],
        when: Optional[Callable[[Dict[str, Any]], bool]],
        *,
        exc_factory: Optional[Callable[[], BaseException]] = None,
        seconds: float = 0.0,
        corruptor: Optional[Callable[[Any], Any]] = None,
    ):
        self.kind = kind
        self.times = times  # None = unlimited
        self.when = when
        self.exc_factory = exc_factory
        self.seconds = seconds
        self.corruptor = corruptor
        self.used = 0

    def matches(self, context: Dict[str, Any]) -> bool:
        if self.times is not None and self.used >= self.times:
            return False
        if self.when is not None and not self.when(context):
            return False
        return True


class FaultPlan:
    """A composable, countable schedule of injected faults.

    Arm it with a ``with`` block; rules are consumed in the order they
    were added.  All bookkeeping is lock-protected, so concurrent
    worker threads hitting the same seam consume shared budgets exactly
    (``times=2`` fires twice total, never per-thread).

    Parameters
    ----------
    sleep:
        Clock used by :meth:`delay` rules — injectable so latency tests
        can run without real waiting.
    """

    def __init__(self, *, sleep: Callable[[float], None] = time.sleep):
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rules: Dict[str, List[_Rule]] = {}
        self._hits: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def fail(
        self,
        site: str,
        *,
        times: Optional[int] = 1,
        exc: Any = None,
        when: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> "FaultPlan":
        """Raise at ``site`` the next ``times`` matching passes.

        ``exc`` may be an exception instance (raised as-is), an
        exception class, or a zero-argument factory; the default is an
        ``OSError`` naming the site.
        """
        if exc is None:
            factory = lambda s=site: OSError(f"injected fault at {s}")  # noqa: E731
        elif isinstance(exc, BaseException):
            factory = lambda e=exc: e  # noqa: E731
        else:
            factory = exc
        self._add(site, _Rule("fail", times, when, exc_factory=factory))
        return self

    def delay(
        self,
        site: str,
        *,
        seconds: float,
        times: Optional[int] = 1,
        when: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> "FaultPlan":
        """Sleep ``seconds`` at ``site`` (latency injection)."""
        self._add(site, _Rule("delay", times, when, seconds=float(seconds)))
        return self

    def corrupt(
        self,
        site: str,
        corruptor: Callable[[Any], Any],
        *,
        times: Optional[int] = 1,
        when: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> "FaultPlan":
        """Rewrite the value flowing through a ``transform`` seam."""
        self._add(site, _Rule("corrupt", times, when, corruptor=corruptor))
        return self

    def _add(self, site: str, rule: _Rule) -> None:
        with self._lock:
            self._rules.setdefault(site, []).append(rule)

    # ------------------------------------------------------------------
    # observation (for test assertions)
    # ------------------------------------------------------------------
    def seen(self, site: str) -> int:
        """How many times the seam at ``site`` was passed (fault or not)."""
        with self._lock:
            return self._hits.get(site, 0)

    def injected(self, site: str) -> int:
        """How many faults actually fired at ``site``."""
        with self._lock:
            return self._injected.get(site, 0)

    # ------------------------------------------------------------------
    # seam back-ends
    # ------------------------------------------------------------------
    def _fire(self, site: str, context: Dict[str, Any]) -> None:
        # decide under the lock, act outside it (a sleeping or raising
        # rule must not serialise unrelated seams)
        with self._lock:
            self._hits[site] = self._hits.get(site, 0) + 1
            actions: List[_Rule] = []
            for rule in self._rules.get(site, ()):
                if rule.kind == "corrupt" or not rule.matches(context):
                    continue
                rule.used += 1
                self._injected[site] = self._injected.get(site, 0) + 1
                actions.append(rule)
        for rule in actions:
            if rule.kind == "delay":
                self._sleep(rule.seconds)
        for rule in actions:
            if rule.kind == "fail":
                raise rule.exc_factory()

    def _transform(self, site: str, value: Any, context: Dict[str, Any]) -> Any:
        with self._lock:
            self._hits[site] = self._hits.get(site, 0) + 1
            actions = []
            for rule in self._rules.get(site, ()):
                if rule.kind != "corrupt" or not rule.matches(context):
                    continue
                rule.used += 1
                self._injected[site] = self._injected.get(site, 0) + 1
                actions.append(rule)
        for rule in actions:
            value = rule.corruptor(value)
        return value

    # ------------------------------------------------------------------
    # arming lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultPlan":
        with _registry_lock:
            _active_plans.append(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        with _registry_lock:
            try:
                _active_plans.remove(self)
            except ValueError:  # pragma: no cover - double exit
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            sites = {site: len(rules) for site, rules in self._rules.items()}
        return f"FaultPlan(rules={sites})"
