"""Test-support tooling that ships with the library.

:mod:`repro.testing.faults` is the fault-injection framework the chaos
suite (``tests/serving/test_faults.py``) drives the serving stack with.
It lives in the package, not under ``tests/``, so downstream users can
chaos-test their own deployments against the same seams.
"""

from repro.testing.faults import FaultPlan

__all__ = ["FaultPlan"]
