"""Command-line interface.

::

    csrplus experiments list
    csrplus experiments run fig2 [--tier bench]
    csrplus datasets
    csrplus query --dataset FB --tier small --queries 3,14,15 --rank 5 --top 10
    csrplus query --edge-list graph.txt --queries 0,1 --rank 8
    csrplus serve-batch --dataset FB --tier small --queries-file q.txt --json

(Also reachable as ``python -m repro``.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.datasets.registry import dataset_keys, load_dataset, paper_table
from repro.errors import ReproError
from repro.experiments.report import render_table
from repro.experiments.runner import list_experiments, run_experiment
from repro.graphs.io import read_edge_list

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csrplus",
        description="CSR+: scalable multi-source CoSimRank search (EDBT 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments", help="list or run the paper's experiments")
    exp_sub = exp.add_subparsers(dest="subcommand", required=True)
    exp_sub.add_parser("list", help="list experiment ids")
    exp_run = exp_sub.add_parser("run", help="run one experiment (or all)")
    exp_run.add_argument(
        "exp_id", help="experiment id (e.g. fig2, tab3) or 'all'"
    )
    exp_run.add_argument(
        "--tier",
        choices=("tiny", "small", "bench"),
        default=None,
        help="dataset size tier (experiments that take one)",
    )
    exp_run.add_argument(
        "--output",
        default=None,
        help="also append the rendered result(s) to this file",
    )

    sub.add_parser("datasets", help="show the paper's dataset table")

    query = sub.add_parser("query", help="run a multi-source CoSimRank query")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_keys(), help="built-in stand-in")
    source.add_argument("--edge-list", help="path to a SNAP-style edge list")
    query.add_argument("--tier", choices=("tiny", "small", "bench"), default="small")
    query.add_argument(
        "--queries", required=True, help="comma-separated node ids, e.g. 3,14,15"
    )
    query.add_argument("--rank", type=int, default=5)
    query.add_argument("--damping", type=float, default=0.6)
    query.add_argument("--top", type=int, default=10, help="rows to print per query")

    serve = sub.add_parser(
        "serve-batch",
        help="serve a file of multi-source requests through CoSimRankService",
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument(
        "--dataset", choices=dataset_keys(), help="built-in stand-in"
    )
    serve_source.add_argument("--edge-list", help="path to a SNAP-style edge list")
    serve.add_argument(
        "--tier", choices=("tiny", "small", "bench"), default="small"
    )
    serve.add_argument(
        "--queries-file",
        required=True,
        help="one request per line: comma/space-separated node ids "
        "('#' starts a comment)",
    )
    serve.add_argument("--rank", type=int, default=5)
    serve.add_argument("--damping", type=float, default=0.6)
    serve.add_argument(
        "--cache-columns", type=int, default=1024,
        help="LRU capacity in result columns (0 disables the cache)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="threads for miss computation (0 = one per CPU, 1 = serial)",
    )
    serve.add_argument(
        "--chunk-size", type=int, default=64,
        help="cache misses handed to one worker task at a time",
    )
    serve.add_argument(
        "--repeat", type=int, default=2,
        help="serve the batch this many times (pass 1 is cold, later "
        "passes measure the warm cache)",
    )
    serve.add_argument(
        "--index-dir", default=None,
        help="registry directory: load the prepared index from here if "
        "present, else build once and save",
    )
    serve.add_argument(
        "--index-name", default=None,
        help="registry key (default: derived from the source and rank)",
    )
    serve.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    stats = sub.add_parser("stats", help="structural statistics of a graph")
    stats_source = stats.add_mutually_exclusive_group(required=True)
    stats_source.add_argument("--dataset", choices=dataset_keys())
    stats_source.add_argument("--edge-list")
    stats.add_argument("--tier", choices=("tiny", "small", "bench"), default="small")

    tune = sub.add_parser("tune", help="suggest an SVD rank for an error target")
    tune_source = tune.add_mutually_exclusive_group(required=True)
    tune_source.add_argument("--dataset", choices=dataset_keys())
    tune_source.add_argument("--edge-list")
    tune.add_argument("--tier", choices=("tiny", "small", "bench"), default="small")
    tune.add_argument("--target-error", type=float, required=True)
    tune.add_argument(
        "--candidates", default="5,10,25,50,100",
        help="comma-separated candidate ranks",
    )
    tune.add_argument("--damping", type=float, default=0.6)
    return parser


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.subcommand == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0
    exp_ids = list_experiments() if args.exp_id == "all" else [args.exp_id]
    rendered = []
    for exp_id in exp_ids:
        kwargs = {}
        # only forward --tier to runners that accept it
        if args.tier is not None and exp_id in (
            "fig2", "fig3", "fig6", "fig7", "ablation-stages"
        ):
            kwargs["tier"] = args.tier
        result = run_experiment(exp_id, **kwargs)
        text = result.render()
        print(text)
        print()
        rendered.append(text)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            for text in rendered:
                handle.write(text + "\n\n")
    return 0


def _cmd_datasets() -> int:
    rows = paper_table()
    print(render_table(["Data", "m", "n", "m/n", "Description"], rows))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.dataset:
        graph = load_dataset(args.dataset, args.tier)
    else:
        graph, _ = read_edge_list(args.edge_list)
    queries = [int(tok) for tok in args.queries.split(",") if tok.strip()]
    config = CSRPlusConfig(damping=args.damping, rank=min(args.rank, graph.num_nodes))
    index = CSRPlusIndex(graph, config).prepare()
    block = index.query(queries)
    print(
        f"graph: n={graph.num_nodes} m={graph.num_edges}  "
        f"rank={config.rank} c={config.damping}  "
        f"prepare={index.prepare_seconds:.3f}s query={index.last_query_seconds:.4f}s"
    )
    for col, q in enumerate(queries):
        order = block[:, col].argsort()[::-1][: args.top]
        print(f"\ntop-{args.top} most similar to node {q}:")
        for node in order:
            print(f"  {int(node):>10d}  {block[int(node), col]:.6f}")
    return 0


def _read_requests_file(path: str) -> List[List[int]]:
    """Parse a serve-batch query file: one request per non-empty line."""
    from repro.errors import GraphFormatError, QueryError

    requests: List[List[int]] = []
    try:
        handle = open(path, encoding="utf-8")
    except OSError as exc:
        raise QueryError(f"cannot read queries file {path!r}: {exc}") from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            try:
                ids = [int(tok) for tok in body.replace(",", " ").split()]
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected integer node ids, got {body!r}"
                ) from exc
            requests.append(ids)
    if not requests:
        raise QueryError(f"no requests found in {path!r}")
    return requests


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.serving import CoSimRankService, IndexRegistry

    requests = _read_requests_file(args.queries_file)
    graph = _load_graph(args)
    config = CSRPlusConfig(
        damping=args.damping, rank=min(args.rank, graph.num_nodes)
    )
    if args.index_dir:
        source = args.dataset or "edgelist"
        name = args.index_name or (
            f"{source}-{args.tier}-r{config.rank}-c{config.damping}"
        )
        index = IndexRegistry(args.index_dir).get(name, graph, config)
    else:
        index = CSRPlusIndex(graph, config).prepare()

    passes = []
    with CoSimRankService(
        index,
        cache_columns=args.cache_columns,
        max_workers=args.workers or None,
        chunk_size=args.chunk_size,
    ) as service:
        for pass_num in range(1, max(1, args.repeat) + 1):
            started = time.perf_counter()
            results = service.serve_batch(requests)
            elapsed = time.perf_counter() - started
            columns = sum(block.shape[1] for block in results)
            passes.append(
                {
                    "pass": pass_num,
                    "seconds": elapsed,
                    "columns": columns,
                    "columns_per_second": columns / max(elapsed, 1e-12),
                }
            )
        stats = service.stats()

    payload = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "rank": config.rank,
        "damping": config.damping,
        "requests": len(requests),
        "cache_columns": args.cache_columns,
        "workers": service.max_workers,
        "passes": passes,
        "stats": stats.as_dict(),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"graph: n={graph.num_nodes} m={graph.num_edges}  "
        f"rank={config.rank} c={config.damping}  "
        f"requests={len(requests)} workers={service.max_workers}"
    )
    for entry in passes:
        print(
            f"pass {entry['pass']}: {entry['seconds']:.4f}s  "
            f"{entry['columns']} columns  "
            f"{entry['columns_per_second']:,.0f} columns/s"
        )
    print(
        f"cache: {stats.hits} hits / {stats.misses} misses "
        f"(rate {stats.hit_rate:.1%}), {stats.evictions} evictions, "
        f"{stats.bytes_cached / 1e6:.2f} MB resident"
    )
    print(
        f"phases: lookup {stats.lookup_seconds:.4f}s  "
        f"compute {stats.compute_seconds:.4f}s  "
        f"assemble {stats.assemble_seconds:.4f}s"
    )
    return 0


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load_dataset(args.dataset, args.tier)
    graph, _ = read_edge_list(args.edge_list)
    return graph


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graphs.components import (
        largest_component_fraction,
        num_weakly_connected_components,
    )
    from repro.graphs.validation import graph_stats

    graph = _load_graph(args)
    row = graph_stats(graph).as_row()
    row["weak components"] = num_weakly_connected_components(graph)
    row["largest component"] = f"{100 * largest_component_fraction(graph):.1f}%"
    for key, value in row.items():
        print(f"{key:>18}: {value}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.tuning import estimate_rank_error, suggest_rank

    graph = _load_graph(args)
    candidates = [int(tok) for tok in args.candidates.split(",") if tok.strip()]
    rank = suggest_rank(
        graph, args.target_error, candidates=candidates, damping=args.damping
    )
    achieved = estimate_rank_error(graph, rank, damping=args.damping)
    print(
        f"suggested rank: {rank} (estimated AvgDiff {achieved:.3e}, "
        f"target {args.target_error:.3e})"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "experiments":
            return _cmd_experiments(args)
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "serve-batch":
            return _cmd_serve_batch(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "tune":
            return _cmd_tune(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
