"""Command-line interface.

::

    csrplus experiments list
    csrplus experiments run fig2 [--tier bench]
    csrplus datasets
    csrplus query --dataset FB --tier small --queries 3,14,15 --rank 5 --top 10
    csrplus query --edge-list graph.txt --queries 0,1 --rank 8
    csrplus shard-build --dataset FB --tier small --rank 5 --out fb.shards \
        --num-shards 4
    csrplus query --shards fb.shards --queries 3,14,15 --top 10
    csrplus serve-batch --dataset FB --tier small --queries-file q.txt --json
    csrplus serve-batch --shards fb.shards --queries-file q.txt --json
    csrplus serve-batch --dataset FB --queries-file q.txt \
        --metrics-out metrics.prom --trace-out trace.json
    csrplus stats --metrics-file metrics.prom --trace-file trace.json
    csrplus update --store fb.shards --out fb.shards.v1 --dataset FB \
        --tier small --add 3:14,7:2 --remove 5:6
    csrplus serve-batch --dataset FB --tier small --queries-file q.txt \
        --live --mutate-per-pass 2
    csrplus loadgen --dataset FB --tier small --requests 500 --qps 200 \
        --zipf 1.1 --slo-p99-ms 250 --fail-on-slo
    csrplus loadgen --dataset FB --tier small --requests 500 \
        --mutate-every 50 --mutate-edges 2
    csrplus loadgen --dataset FB --tier small --requests 500 \
        --max-inflight-seeds 4 --quality auto --slo-availability 0.99
    csrplus serve --shards fb.shards --port 8350 --workers 4
    csrplus serve --dataset FB --tier small --store fb.shards --workers 4
    csrplus loadgen --url http://127.0.0.1:8350 --requests 500 --qps 200 \
        --slo-p99-ms 250 --fail-on-slo
    csrplus bench --dataset FB --tier tiny --out BENCH_today.json
    csrplus bench --dataset FB --tier tiny --compare BENCH_prior.json

(Also reachable as ``python -m repro``.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.datasets.registry import dataset_keys, load_dataset, paper_table
from repro.errors import ReproError
from repro.experiments.report import render_table
from repro.experiments.runner import list_experiments, run_experiment
from repro.graphs.io import read_edge_list

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csrplus",
        description="CSR+: scalable multi-source CoSimRank search (EDBT 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments", help="list or run the paper's experiments")
    exp_sub = exp.add_subparsers(dest="subcommand", required=True)
    exp_sub.add_parser("list", help="list experiment ids")
    exp_run = exp_sub.add_parser("run", help="run one experiment (or all)")
    exp_run.add_argument(
        "exp_id", help="experiment id (e.g. fig2, tab3) or 'all'"
    )
    exp_run.add_argument(
        "--tier",
        choices=("tiny", "small", "bench"),
        default=None,
        help="dataset size tier (experiments that take one)",
    )
    exp_run.add_argument(
        "--output",
        default=None,
        help="also append the rendered result(s) to this file",
    )

    sub.add_parser("datasets", help="show the paper's dataset table")

    query = sub.add_parser("query", help="run a multi-source CoSimRank query")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_keys(), help="built-in stand-in")
    source.add_argument("--edge-list", help="path to a SNAP-style edge list")
    source.add_argument(
        "--shards", metavar="DIR",
        help="serve from a sharded store built by 'csrplus shard-build' "
        "(rank/damping come from its manifest; --rank/--damping are "
        "ignored)",
    )
    query.add_argument("--tier", choices=("tiny", "small", "bench"), default="small")
    query.add_argument(
        "--queries", required=True, help="comma-separated node ids, e.g. 3,14,15"
    )
    query.add_argument("--rank", type=int, default=5)
    query.add_argument("--damping", type=float, default=0.6)
    query.add_argument(
        "--query-mode", choices=("exact", "batched"), default="exact",
        help="column evaluation: 'exact' = one GEMV per seed (bit-exact, "
        "default), 'batched' = one GEMM per batch (faster at large |Q|, "
        "tolerance-equal)",
    )
    query.add_argument("--top", type=int, default=10, help="rows to print per query")

    shard = sub.add_parser(
        "shard-build",
        help="build a sharded on-disk index (out-of-core by default)",
    )
    shard_source = shard.add_mutually_exclusive_group(required=True)
    shard_source.add_argument(
        "--dataset", choices=dataset_keys(), help="built-in stand-in"
    )
    shard_source.add_argument("--edge-list", help="path to a SNAP-style edge list")
    shard.add_argument("--tier", choices=("tiny", "small", "bench"), default="small")
    shard.add_argument(
        "--out", required=True, metavar="DIR",
        help="shard-store directory to create (manifest + .npy shards)",
    )
    shard.add_argument("--rank", type=int, default=5)
    shard.add_argument("--damping", type=float, default=0.6)
    shard.add_argument(
        "--num-shards", type=int, default=4, metavar="K",
        help="node-range shards to cut the factors into (clamped to n)",
    )
    shard.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64",
        help="stored factor precision (compute is always float64)",
    )
    shard.add_argument(
        "--block-rows", type=int, default=None, metavar="ROWS",
        help="streaming block height for the out-of-core builder "
        "(default: adaptive, <= 1/8 of n capped at 4096)",
    )
    shard.add_argument(
        "--from-index", action="store_true",
        help="prepare a monolithic index in RAM and slice it "
        "(byte-identical shards) instead of the out-of-core build",
    )
    shard.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing store at --out",
    )
    shard.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    update = sub.add_parser(
        "update",
        help="apply an edge batch to a sharded store by targeted repair "
        "(only digest-changed shards are rewritten; docs/dynamic.md)",
    )
    update_source = update.add_mutually_exclusive_group(required=True)
    update_source.add_argument(
        "--dataset", choices=dataset_keys(),
        help="built-in stand-in the store was built from",
    )
    update_source.add_argument(
        "--edge-list", help="path to the SNAP-style edge list the store "
        "was built from",
    )
    update.add_argument(
        "--tier", choices=("tiny", "small", "bench"), default="small"
    )
    update.add_argument(
        "--store", required=True, metavar="DIR",
        help="existing shard store (csrplus shard-build); never modified",
    )
    update.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory for the repaired next-version store",
    )
    update.add_argument(
        "--add", default="", metavar="SRC:DST,...",
        help="edges to add, e.g. 3:14,7:2",
    )
    update.add_argument(
        "--remove", default="", metavar="SRC:DST,...",
        help="edges to remove (missing edges are ignored)",
    )
    update.add_argument(
        "--dirty-threshold", type=float, default=0.5, metavar="F",
        help="dirty-shard fraction above which targeted repair falls "
        "back to a full rebuild",
    )
    update.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing store at --out",
    )
    update.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    serve = sub.add_parser(
        "serve-batch",
        help="serve a file of multi-source requests through CoSimRankService",
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument(
        "--dataset", choices=dataset_keys(), help="built-in stand-in"
    )
    serve_source.add_argument("--edge-list", help="path to a SNAP-style edge list")
    serve_source.add_argument(
        "--shards", metavar="DIR",
        help="serve from a sharded store built by 'csrplus shard-build' "
        "(rank/damping come from its manifest; --rank/--damping and "
        "--index-dir do not apply)",
    )
    serve.add_argument(
        "--tier", choices=("tiny", "small", "bench"), default="small"
    )
    serve.add_argument(
        "--queries-file",
        required=True,
        help="one request per line: comma/space-separated node ids "
        "('#' starts a comment)",
    )
    serve.add_argument("--rank", type=int, default=5)
    serve.add_argument("--damping", type=float, default=0.6)
    serve.add_argument(
        "--cache-columns", type=int, default=1024,
        help="LRU capacity in result columns (0 disables the cache)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="threads for miss computation (0 = one per CPU, 1 = serial)",
    )
    serve.add_argument(
        "--chunk-size", type=int, default=64,
        help="cache misses handed to one worker task at a time",
    )
    serve.add_argument(
        "--query-mode", choices=("exact", "batched"), default="exact",
        help="'exact' = per-seed GEMV, bit-exact cached columns "
        "(default); 'batched' = whole miss chunks as one GEMM, cached "
        "columns tolerance-equal to exact (docs/serving.md)",
    )
    serve.add_argument(
        "--topk", type=int, default=None, metavar="K",
        help="serve top-K rankings instead of full columns: every seed "
        "in the request file becomes one top-K query answered by the "
        "blockwise pruned kernel, bit-identical to the full-sort "
        "ranking in exact mode (docs/topk.md)",
    )
    serve.add_argument(
        "--repeat", type=int, default=2,
        help="serve the batch this many times (pass 1 is cold, later "
        "passes measure the warm cache)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-batch deadline; chunks not started in time are "
        "cancelled (typed DeadlineExceeded, or None holes with "
        "--partial)",
    )
    serve.add_argument(
        "--max-inflight-seeds", type=int, default=None, metavar="N",
        help="admission-control budget: shed batches once this many "
        "distinct seed columns are in flight (ServiceOverloaded)",
    )
    serve.add_argument(
        "--partial", action="store_true",
        help="graceful degradation: report failed requests instead of "
        "aborting the pass (successful blocks stay bit-exact)",
    )
    serve.add_argument(
        "--quality", choices=("exact", "approx", "auto"), default="exact",
        help="serving tier: 'exact' (default), 'approx' = answer from "
        "the sketch replica within its published atol, 'auto' = exact "
        "but downgrade would-be sheds to the replica instead of "
        "raising ServiceOverloaded (docs/approx.md; needs a graph "
        "source, not --shards)",
    )
    serve.add_argument(
        "--approx-projections", type=int, default=256, metavar="D",
        help="sketch width d of the approximate replica (larger = "
        "tighter atol, more memory; with --quality approx/auto)",
    )
    serve.add_argument(
        "--cache-validate", action="store_true",
        help="checksum cached columns on every hit; poisoned entries "
        "are evicted and recomputed instead of served",
    )
    serve.add_argument(
        "--index-dir", default=None,
        help="registry directory: load the prepared index from here if "
        "present, else build once and save",
    )
    serve.add_argument(
        "--index-name", default=None,
        help="registry key (default: derived from the source and rank)",
    )
    serve.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write metrics here after serving (Prometheus text format, "
        "or JSON when PATH ends with .json)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the span trace here as JSON (covers prepare and "
        "every serving phase)",
    )
    serve.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="log batches slower than this many milliseconds and count "
        "them in csrplus_serve_slow_batches_total",
    )
    serve.add_argument(
        "--live", action="store_true",
        help="serve through a LiveIndexChain: a random edge batch is "
        "applied between passes and each new version is swapped in "
        "with zero downtime (docs/dynamic.md; needs a graph source, "
        "not --shards)",
    )
    serve.add_argument(
        "--live-shards", type=int, default=None, metavar="K",
        help="shard the live backend into K node ranges and route "
        "updates through targeted repair (requires --live-store)",
    )
    serve.add_argument(
        "--live-store", default=None, metavar="DIR",
        help="root directory for the per-version shard stores of a "
        "sharded live chain",
    )
    serve.add_argument(
        "--mutate-per-pass", type=int, default=1, metavar="N",
        help="random edges added per between-pass update batch "
        "(with --live)",
    )
    serve.add_argument(
        "--mutate-seed", type=int, default=0,
        help="RNG seed for the between-pass edge batches",
    )

    stats = sub.add_parser(
        "stats",
        help="structural statistics of a graph, or pretty-print a "
        "metrics/trace dump",
    )
    stats_source = stats.add_mutually_exclusive_group(required=False)
    stats_source.add_argument("--dataset", choices=dataset_keys())
    stats_source.add_argument("--edge-list")
    stats.add_argument("--tier", choices=("tiny", "small", "bench"), default="small")
    stats.add_argument(
        "--metrics-file", default=None, metavar="PATH",
        help="pretty-print a metrics dump written by serve-batch "
        "--metrics-out (.prom text or .json)",
    )
    stats.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="render a span tree from a trace written by serve-batch "
        "--trace-out",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive the service with deterministic Zipf/burst traffic "
        "and report QPS, latency percentiles, and SLO verdicts",
    )
    loadgen_source = loadgen.add_mutually_exclusive_group(required=True)
    loadgen_source.add_argument(
        "--dataset", choices=dataset_keys(), help="built-in stand-in"
    )
    loadgen_source.add_argument(
        "--edge-list", help="path to a SNAP-style edge list"
    )
    loadgen_source.add_argument(
        "--url", metavar="http://HOST:PORT",
        help="drive a running 'csrplus serve' frontend over HTTP with "
        "keep-alive connections instead of an in-process service "
        "(seed range comes from /healthz; service-side knobs like "
        "--cache-columns/--query-mode/--max-inflight-seeds are the "
        "server's and are ignored here)",
    )
    loadgen.add_argument(
        "--tier", choices=("tiny", "small", "bench"), default="small"
    )
    loadgen.add_argument("--rank", type=int, default=5)
    loadgen.add_argument("--damping", type=float, default=0.6)
    loadgen.add_argument(
        "--requests", type=int, default=200, help="requests to generate"
    )
    loadgen.add_argument(
        "--qps", type=float, default=200.0, help="base offered rate"
    )
    loadgen.add_argument(
        "--seeds-per-request", type=int, default=4, metavar="N",
        help="distinct seed ids per multi-source request",
    )
    loadgen.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="seed-popularity skew exponent (0 = uniform)",
    )
    loadgen.add_argument(
        "--burst-factor", type=float, default=1.0, metavar="X",
        help="arrival-rate multiplier during burst windows (1 = steady)",
    )
    loadgen.add_argument(
        "--burst-period-s", type=float, default=1.0, metavar="S",
        help="length of one burst cycle",
    )
    loadgen.add_argument(
        "--burst-duty", type=float, default=0.5, metavar="F",
        help="fraction of each cycle at the burst rate",
    )
    loadgen.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed; the schedule is a pure function of the profile",
    )
    loadgen.add_argument(
        "--topk", type=int, default=None, metavar="K",
        help="serve top-K rankings per request instead of full columns",
    )
    loadgen.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline (typed DeadlineExceeded outcomes)",
    )
    loadgen.add_argument(
        "--max-inflight-seeds", type=int, default=None, metavar="N",
        help="admission-control budget (shed outcomes over it)",
    )
    loadgen.add_argument(
        "--cache-columns", type=int, default=1024,
        help="service column-cache capacity (0 disables)",
    )
    loadgen.add_argument(
        "--query-mode", choices=("exact", "batched"), default="exact",
    )
    loadgen.add_argument(
        "--quality", choices=("exact", "approx", "auto"), default="exact",
        help="serving tier per request: 'auto' turns would-be sheds "
        "into approx outcomes served by the sketch replica "
        "(docs/approx.md)",
    )
    loadgen.add_argument(
        "--approx-projections", type=int, default=256, metavar="D",
        help="sketch width d of the approximate replica (with "
        "--quality approx/auto)",
    )
    loadgen.add_argument(
        "--mutate-every", type=int, default=0, metavar="N",
        help="apply a live edge batch after every N dispatched requests "
        "(0 disables; the service serves across version swaps, "
        "docs/dynamic.md)",
    )
    loadgen.add_argument(
        "--mutate-edges", type=int, default=1, metavar="M",
        help="random edges added per mutation batch (with --mutate-every)",
    )
    loadgen.add_argument(
        "--mutate-seed", type=int, default=0,
        help="RNG seed for the mutation batches",
    )
    loadgen.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="evaluate a p99-latency SLO at this threshold",
    )
    loadgen.add_argument(
        "--slo-p50-ms", type=float, default=None, metavar="MS",
        help="evaluate a p50-latency SLO at this threshold",
    )
    loadgen.add_argument(
        "--slo-availability", type=float, default=None, metavar="F",
        help="evaluate an availability SLO at this target, e.g. 0.999",
    )
    loadgen.add_argument(
        "--fail-on-slo", action="store_true",
        help="exit 4 when any evaluated SLO fails",
    )
    loadgen.add_argument(
        "--simulate", action="store_true",
        help="run on a virtual clock: no real waiting, byte-identical "
        "reports across runs (CI determinism mode)",
    )
    loadgen.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    loadgen.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write merged metrics (loadgen + service + global) here "
        "(Prometheus text, or JSON when PATH ends with .json)",
    )
    loadgen.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the span trace here as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-process HTTP frontend: an asyncio server "
        "fanning queries to worker processes that mmap a sharded store "
        "read-only (docs/frontend.md)",
    )
    serve_src = serve.add_mutually_exclusive_group(required=True)
    serve_src.add_argument(
        "--shards", metavar="DIR",
        help="existing sharded store to serve (csrplus shard-build)",
    )
    serve_src.add_argument(
        "--dataset", choices=dataset_keys(),
        help="built-in stand-in; builds the store at --store if missing",
    )
    serve_src.add_argument(
        "--edge-list", help="path to a SNAP-style edge list (with --store)"
    )
    serve.add_argument(
        "--tier", choices=("tiny", "small", "bench"), default="small"
    )
    serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="store directory to build/reuse with a graph source",
    )
    serve.add_argument("--rank", type=int, default=5)
    serve.add_argument("--damping", type=float, default=0.6)
    serve.add_argument(
        "--num-shards", type=int, default=4, metavar="K",
        help="shards when the store has to be built",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8350,
        help="listen port (0 = ephemeral, printed in the ready line)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker processes; each opens the store via mmap, so all "
        "share one physical copy of Z in page cache",
    )
    serve.add_argument(
        "--chunk-size", type=int, default=16,
        help="seeds per worker task (smaller = more cross-process "
        "parallelism per batch, more pipe overhead)",
    )
    serve.add_argument(
        "--query-mode", choices=("exact", "batched"), default="exact"
    )
    serve.add_argument("--cache-columns", type=int, default=1024)
    serve.add_argument(
        "--max-inflight-seeds", type=int, default=None, metavar="N",
        help="admission-control budget (HTTP 503 over it)",
    )
    serve.add_argument(
        "--coalesce-ms", type=float, default=2.0, metavar="MS",
        help="window in which concurrent HTTP requests merge into one "
        "service batch (0 = coalesce only what is already queued)",
    )
    serve.add_argument(
        "--approx-projections", type=int, default=None, metavar="D",
        help="serve quality=approx/auto from a sketch replica of width "
        "D, built beside the store if missing (needs a graph source)",
    )
    serve.add_argument(
        "--no-admin", action="store_true",
        help="disable the /admin/* surface (publish, fault injection)",
    )
    serve.add_argument(
        "--validate-reads", action="store_true",
        help="workers re-verify shard digests on every read",
    )

    bench = sub.add_parser(
        "bench",
        help="measure the perf-trajectory suite; write/compare "
        "schema-versioned BENCH snapshots",
    )
    bench_source = bench.add_mutually_exclusive_group(required=True)
    bench_source.add_argument(
        "--dataset", choices=dataset_keys(), help="built-in stand-in"
    )
    bench_source.add_argument(
        "--edge-list", help="path to a SNAP-style edge list"
    )
    bench.add_argument(
        "--tier", choices=("tiny", "small", "bench"), default="small"
    )
    bench.add_argument("--rank", type=int, default=16)
    bench.add_argument("--damping", type=float, default=0.6)
    bench.add_argument(
        "--requests", type=int, default=200, help="loadgen requests"
    )
    bench.add_argument(
        "--qps", type=float, default=500.0, help="loadgen base rate"
    )
    bench.add_argument(
        "--seed", type=int, default=0, help="loadgen RNG seed"
    )
    bench.add_argument(
        "--topk", type=int, default=10, help="k for the top-k kernel lap"
    )
    bench.add_argument(
        "--simulate", action="store_true",
        help="loadgen on a virtual clock (deterministic loadgen metrics)",
    )
    bench.add_argument(
        "--frontend-workers", type=int, default=0, metavar="N",
        help="also boot the multi-process HTTP frontend with N workers "
        "and record frontend_columns_per_second / frontend_p99_ms "
        "(0 skips; docs/frontend.md)",
    )
    bench.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the snapshot here (default: BENCH_<utc-date>.json)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="PATH",
        help="baseline snapshot; exit 5 when any metric regresses "
        "beyond --tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=None, metavar="F",
        help="relative slack before a metric counts as regressed "
        "(default 0.25)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="print the snapshot payload instead of the summary",
    )

    tune = sub.add_parser("tune", help="suggest an SVD rank for an error target")
    tune_source = tune.add_mutually_exclusive_group(required=True)
    tune_source.add_argument("--dataset", choices=dataset_keys())
    tune_source.add_argument("--edge-list")
    tune.add_argument("--tier", choices=("tiny", "small", "bench"), default="small")
    tune.add_argument("--target-error", type=float, required=True)
    tune.add_argument(
        "--candidates", default="5,10,25,50,100",
        help="comma-separated candidate ranks",
    )
    tune.add_argument("--damping", type=float, default=0.6)
    return parser


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.subcommand == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0
    exp_ids = list_experiments() if args.exp_id == "all" else [args.exp_id]
    rendered = []
    for exp_id in exp_ids:
        kwargs = {}
        # only forward --tier to runners that accept it
        if args.tier is not None and exp_id in (
            "fig2", "fig3", "fig6", "fig7", "ablation-stages"
        ):
            kwargs["tier"] = args.tier
        result = run_experiment(exp_id, **kwargs)
        text = result.render()
        print(text)
        print()
        rendered.append(text)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            for text in rendered:
                handle.write(text + "\n\n")
    return 0


def _cmd_datasets() -> int:
    rows = paper_table()
    print(render_table(["Data", "m", "n", "m/n", "Description"], rows))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    queries = [int(tok) for tok in args.queries.split(",") if tok.strip()]
    if args.shards:
        from repro.sharding import ShardedIndex

        with ShardedIndex(args.shards, query_mode=args.query_mode) as index:
            started = time.perf_counter()
            block = index.query(queries)
            elapsed = time.perf_counter() - started
            print(
                f"store: n={index.num_nodes} shards={index.num_shards}  "
                f"rank={index.rank} c={index.damping} "
                f"dtype={index.dtype.name}  query={elapsed:.4f}s"
            )
    else:
        if args.dataset:
            graph = load_dataset(args.dataset, args.tier)
        else:
            graph, _ = read_edge_list(args.edge_list)
        config = CSRPlusConfig(
            damping=args.damping,
            rank=min(args.rank, graph.num_nodes),
            query_mode=args.query_mode,
        )
        index = CSRPlusIndex(graph, config).prepare()
        block = index.query(queries)
        print(
            f"graph: n={graph.num_nodes} m={graph.num_edges}  "
            f"rank={config.rank} c={config.damping}  "
            f"prepare={index.prepare_seconds:.3f}s "
            f"query={index.last_query_seconds:.4f}s"
        )
    for col, q in enumerate(queries):
        order = block[:, col].argsort()[::-1][: args.top]
        print(f"\ntop-{args.top} most similar to node {q}:")
        for node in order:
            print(f"  {int(node):>10d}  {block[int(node), col]:.6f}")
    return 0


def _cmd_shard_build(args: argparse.Namespace) -> int:
    from repro.core.memory import MemoryMeter
    from repro.sharding import build_sharded_store, shard_index

    graph = _load_graph(args)
    config = CSRPlusConfig(
        damping=args.damping,
        rank=min(args.rank, graph.num_nodes),
        dtype=args.dtype,
    )
    started = time.perf_counter()
    if args.from_index:
        index = CSRPlusIndex(graph, config).prepare()
        store = shard_index(
            index, args.out, num_shards=args.num_shards, overwrite=args.overwrite
        )
        peak_bytes = None
    else:
        meter = MemoryMeter()
        store = build_sharded_store(
            graph,
            args.out,
            num_shards=args.num_shards,
            config=config,
            block_rows=args.block_rows,
            overwrite=args.overwrite,
            memory=meter,
        )
        peak_bytes = meter.peak_bytes
    elapsed = time.perf_counter() - started

    manifest = store.manifest
    shard_bytes = sum(
        os.path.getsize(os.path.join(store.path, name))
        for meta in manifest.shards
        for name in (meta.z_file, meta.u_file)
    )
    payload = {
        "path": store.path,
        "builder": manifest.builder,
        "num_nodes": manifest.num_nodes,
        "num_edges": graph.num_edges,
        "rank": manifest.rank,
        "damping": manifest.damping,
        "dtype": manifest.dtype,
        "num_shards": manifest.num_shards,
        "shard_rows": [meta.num_rows for meta in manifest.shards],
        "store_bytes": shard_bytes,
        "build_seconds": elapsed,
        "peak_resident_bytes": peak_bytes,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"sharded store written to {store.path} ({manifest.builder}): "
        f"n={manifest.num_nodes} rank={manifest.rank} c={manifest.damping} "
        f"dtype={manifest.dtype}"
    )
    print(
        f"shards: {manifest.num_shards} x ~{manifest.shards[0].num_rows} rows, "
        f"{shard_bytes / 1e6:.2f} MB on disk, built in {elapsed:.3f}s"
    )
    if peak_bytes is not None:
        print(f"peak resident (ledger): {peak_bytes / 1e6:.2f} MB")
    return 0


def _parse_edge_pairs(text: str, flag: str) -> List[tuple]:
    """Parse ``SRC:DST,SRC:DST,...`` edge batches from the CLI."""
    from repro.errors import InvalidParameterError

    edges = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        src, sep, dst = token.partition(":")
        try:
            if not sep:
                raise ValueError
            edges.append((int(src), int(dst)))
        except ValueError:
            raise InvalidParameterError(
                f"{flag} expects comma-separated SRC:DST pairs, got {token!r}"
            ) from None
    return edges


def _random_edge_batch(rng, num_nodes: int, count: int) -> List[tuple]:
    """``count`` random non-self-loop edges over ``num_nodes`` nodes."""
    edges = []
    for _ in range(max(0, count)):
        src = int(rng.integers(num_nodes))
        dst = int((src + 1 + rng.integers(max(1, num_nodes - 1))) % num_nodes)
        edges.append((src, dst))
    return edges


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.errors import InvalidParameterError
    from repro.sharding import repair_sharded_store

    added = _parse_edge_pairs(args.add, "--add")
    removed = _parse_edge_pairs(args.remove, "--remove")
    if not added and not removed:
        raise InvalidParameterError(
            "update needs at least one edge via --add or --remove"
        )
    graph = _load_graph(args)
    graph = graph.with_edges_added(added).with_edges_removed(removed)
    started = time.perf_counter()
    report = repair_sharded_store(
        graph,
        args.store,
        args.out,
        dirty_threshold=args.dirty_threshold,
        overwrite=args.overwrite,
    )
    elapsed = time.perf_counter() - started
    payload = {
        "store": args.store,
        "out": report.path,
        "edges_added": len(added),
        "edges_removed": len(removed),
        "repaired_shards": list(report.repaired_shards),
        "total_shards": report.total_shards,
        "dirty_fraction": report.dirty_fraction,
        "full_rebuild": report.full_rebuild,
        "dirty_ranges": [list(r) for r in report.dirty_ranges],
        "repair_seconds": elapsed,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    kind = "full rebuild" if report.full_rebuild else "targeted repair"
    print(
        f"{kind}: {len(report.repaired_shards)}/{report.total_shards} "
        f"shard(s) rewritten (dirty fraction "
        f"{report.dirty_fraction:.2f}) in {elapsed:.3f}s"
    )
    print(
        f"next-version store written to {report.path} "
        f"(+{len(added)}/-{len(removed)} edges; clean shards hard-linked "
        f"from {args.store})"
    )
    return 0


def _read_requests_file(path: str) -> List[List[int]]:
    """Parse a serve-batch query file: one request per non-empty line."""
    from repro.errors import GraphFormatError, QueryError

    requests: List[List[int]] = []
    try:
        handle = open(path, encoding="utf-8")
    except OSError as exc:
        raise QueryError(f"cannot read queries file {path!r}: {exc}") from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            try:
                ids = [int(tok) for tok in body.replace(",", " ").split()]
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected integer node ids, got {body!r}"
                ) from exc
            requests.append(ids)
    if not requests:
        raise QueryError(f"no requests found in {path!r}")
    return requests


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.serving import CoSimRankService, IndexRegistry

    if args.metrics_out or args.trace_out:
        # The dumps are the point of these flags; make sure the
        # instrumented paths actually record.
        obs.enable()
    if args.slow_query_ms is not None:
        # The library ships a NullHandler; the CLI is an application, so
        # wire WARNING output up when the user asked for slow-query logs.
        import logging

        logging.basicConfig(level=logging.WARNING)

    requests = _read_requests_file(args.queries_file)
    chain = None
    if args.shards:
        from repro.errors import InvalidParameterError
        from repro.sharding import ShardedIndex

        if args.index_dir:
            raise InvalidParameterError(
                "--index-dir does not apply with --shards (the store "
                "directory already is the on-disk index)"
            )
        if args.live:
            raise InvalidParameterError(
                "--live needs a graph source (--dataset/--edge-list) so "
                "edge batches can be applied; --shards is read-only"
            )
        if args.quality != "exact":
            raise InvalidParameterError(
                "--quality approx/auto needs a graph source "
                "(--dataset/--edge-list) to build the sketch replica "
                "from; --shards carries only the exact factors"
            )
        index = ShardedIndex(args.shards)
        num_nodes, num_edges = index.num_nodes, None
        config = index.config
    else:
        graph = _load_graph(args)
        num_nodes, num_edges = graph.num_nodes, graph.num_edges
        config = CSRPlusConfig(
            damping=args.damping, rank=min(args.rank, graph.num_nodes)
        )
        if args.live:
            from repro.errors import InvalidParameterError
            from repro.serving import LiveIndexChain

            if args.live_shards is not None and not args.live_store:
                raise InvalidParameterError(
                    "--live-shards needs --live-store (one directory per "
                    "version is created beneath it)"
                )
            chain = LiveIndexChain(
                graph,
                config,
                store_root=args.live_store,
                num_shards=args.live_shards,
            )
            index = chain.index
        elif args.index_dir:
            source = args.dataset or "edgelist"
            name = args.index_name or (
                f"{source}-{args.tier}-r{config.rank}-c{config.damping}"
            )
            index = IndexRegistry(args.index_dir).get(name, graph, config)
        else:
            index = CSRPlusIndex(graph, config).prepare()

    approx_index = None
    if args.quality != "exact":
        from repro.serving import ApproxIndex

        approx_index = ApproxIndex.for_rank(
            graph,
            config.rank,
            damping=config.damping,
            num_projections=args.approx_projections,
        ).prepare()

    passes = []
    slow_query_seconds = (
        args.slow_query_ms / 1000.0 if args.slow_query_ms is not None else None
    )
    deadline_s = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    )
    with CoSimRankService(
        index,
        cache_columns=args.cache_columns,
        max_workers=args.workers or None,
        chunk_size=args.chunk_size,
        query_mode=args.query_mode,
        max_inflight_seeds=args.max_inflight_seeds,
        cache_validate=args.cache_validate,
        slow_query_seconds=slow_query_seconds,
        approx_index=approx_index,
    ) as service:
        if chain is not None:
            import numpy as _np

            chain.attach(service)
            mutate_rng = _np.random.default_rng(args.mutate_seed)
        topk_seeds = (
            [seed for request in requests for seed in request]
            if args.topk is not None
            else None
        )
        for pass_num in range(1, max(1, args.repeat) + 1):
            link = None
            if chain is not None and pass_num > 1:
                # live scenario: an edge batch lands between passes and
                # the repaired version is swapped in before this pass
                link = chain.update_edges(
                    added=_random_edge_batch(
                        mutate_rng, num_nodes, args.mutate_per_pass
                    )
                )
            started = time.perf_counter()
            if topk_seeds is not None:
                results = service.serve_topk(
                    topk_seeds, args.topk,
                    deadline_s=deadline_s, partial=args.partial,
                    quality=args.quality,
                )
                elapsed = time.perf_counter() - started
                served = [result for result in results if result is not None]
                entry = {
                    "pass": pass_num,
                    "seconds": elapsed,
                    "seeds": len(served),
                    "seeds_per_second": len(served) / max(elapsed, 1e-12),
                }
            else:
                results = service.serve_batch(
                    requests, deadline_s=deadline_s, partial=args.partial,
                    quality=args.quality,
                )
                elapsed = time.perf_counter() - started
                served = [block for block in results if block is not None]
                columns = sum(block.shape[1] for block in served)
                entry = {
                    "pass": pass_num,
                    "seconds": elapsed,
                    "columns": columns,
                    "columns_per_second": columns / max(elapsed, 1e-12),
                }
            if args.partial:
                entry["failed_requests"] = len(results) - len(served)
            if chain is not None:
                entry["index_version"] = service.index_version
                if link is not None and chain.is_sharded:
                    entry["repaired_shards"] = len(link.repaired_shards)
                    entry["full_rebuild"] = link.full_rebuild
            passes.append(entry)
        stats = service.stats()
        topk_stats = service.topk_stats() if args.topk is not None else None
    if args.shards:
        index.close()

    if args.metrics_out:
        _write_metrics_dump(args.metrics_out, service)
    if args.trace_out:
        obs.get_tracer().write_json(args.trace_out)

    # --partial trades typed errors for None holes; a non-zero exit is
    # the only signal scripted callers have that the batch came back
    # incomplete (deadline hit, shed, poisoned shard, ...).
    failed_requests = sum(entry.get("failed_requests", 0) for entry in passes)
    exit_code = 3 if args.partial and failed_requests else 0

    payload = {
        "num_nodes": num_nodes,
        "num_edges": num_edges,
        "rank": config.rank,
        "damping": config.damping,
        "requests": len(requests),
        "cache_columns": args.cache_columns,
        "workers": service.max_workers,
        "query_mode": service.query_mode,
        "quality": args.quality,
        "passes": passes,
        "stats": stats.as_dict(),
    }
    if approx_index is not None:
        payload["approx"] = {
            "num_projections": approx_index.num_projections,
            "atol": approx_index.query_atol(),
        }
    if topk_stats is not None:
        payload["topk"] = args.topk
        payload["topk_stats"] = topk_stats
    if chain is not None:
        payload["live"] = {
            "final_version": chain.version,
            "sharded": chain.is_sharded,
            "mutate_per_pass": args.mutate_per_pass,
            "mutate_seed": args.mutate_seed,
        }
    if slow_query_seconds is not None:
        payload["slow_batches"] = len(service.slow_queries())
    if args.json:
        print(json.dumps(payload, indent=2))
        return exit_code
    edges = "?" if num_edges is None else num_edges
    print(
        f"graph: n={num_nodes} m={edges}  "
        f"rank={config.rank} c={config.damping}  "
        f"requests={len(requests)} workers={service.max_workers} "
        f"mode={service.query_mode}"
    )
    for entry in passes:
        live_note = ""
        if "index_version" in entry:
            live_note = f"  [v{entry['index_version']}"
            if "repaired_shards" in entry:
                live_note += (
                    f", {entry['repaired_shards']} shard(s) repaired"
                )
            live_note += "]"
        if "seeds" in entry:
            print(
                f"pass {entry['pass']}: {entry['seconds']:.4f}s  "
                f"{entry['seeds']} top-{args.topk} rankings  "
                f"{entry['seeds_per_second']:,.0f} seeds/s{live_note}"
            )
        else:
            print(
                f"pass {entry['pass']}: {entry['seconds']:.4f}s  "
                f"{entry['columns']} columns  "
                f"{entry['columns_per_second']:,.0f} columns/s{live_note}"
            )
    if chain is not None:
        print(
            f"live: final version v{chain.version} "
            f"({'sharded' if chain.is_sharded else 'monolithic'} chain, "
            f"{args.mutate_per_pass} edge(s) per between-pass batch)"
        )
    if topk_stats is not None:
        print(
            f"topk cache: {topk_stats['hits']} hits / "
            f"{topk_stats['misses']} misses, "
            f"{topk_stats['cached_entries']} rankings resident; "
            f"pruning: {topk_stats['candidates_scored']} candidates "
            f"scored, {topk_stats['blocks_scanned']} blocks scanned / "
            f"{topk_stats['blocks_skipped']} skipped"
        )
    print(
        f"cache: {stats.hits} hits / {stats.misses} misses "
        f"(rate {stats.hit_rate:.1%}), {stats.evictions} evictions, "
        f"{stats.bytes_cached / 1e6:.2f} MB resident"
    )
    print(
        f"phases: lookup {stats.lookup_seconds:.4f}s  "
        f"compute {stats.compute_seconds:.4f}s  "
        f"assemble {stats.assemble_seconds:.4f}s"
    )
    print(
        f"robustness: retries={stats.retries} shed={stats.shed} "
        f"deadline_exceeded={stats.deadline_exceeded} "
        f"degraded={stats.degraded_requests} "
        f"cache_integrity_failures={stats.cache_integrity_failures}"
    )
    if approx_index is not None:
        print(
            f"tiers: exact={stats.tier_exact} approx={stats.tier_approx} "
            f"downgrades={stats.approx_downgrades} "
            f"(replica d={approx_index.num_projections}, "
            f"atol {approx_index.query_atol():.3g})"
        )
    if slow_query_seconds is not None:
        print(
            f"slow batches: {len(service.slow_queries())} "
            f"(threshold {args.slow_query_ms:g} ms)"
        )
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    if exit_code:
        print(
            f"warning: {failed_requests} request(s) failed across "
            f"{len(passes)} pass(es); exiting {exit_code}",
            file=sys.stderr,
        )
    return exit_code


def _write_metrics_dump(path: str, service, *extra_registries) -> None:
    """Write the global (prepare) + service (serve) metrics to ``path``.

    Prometheus text format by default; a structured JSON dump when the
    path ends with ``.json``.  The registries have disjoint metric
    names (``csrplus_prepare_*`` / ``csrplus_serve_*`` /
    ``csrplus_loadgen_*``), so merging their expositions is always
    valid.
    """
    import json as _json

    import repro.obs as obs

    registries = (obs.get_registry(), service.registry, *extra_registries)
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".json"):
            _json.dump(obs.registries_as_dict(*registries), handle, indent=2)
            handle.write("\n")
        else:
            handle.write(obs.render_prometheus(*registries))


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load_dataset(args.dataset, args.tier)
    graph, _ = read_edge_list(args.edge_list)
    return graph


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import time as _time

    import repro.obs as obs
    from repro.obs.metrics import MetricsRegistry
    from repro.serving import (
        CoSimRankService,
        LoadProfile,
        SimulatedClock,
        build_schedule,
        loadgen_slos,
        run_load,
    )

    if args.metrics_out or args.trace_out:
        obs.enable()
    if args.url:
        return _cmd_loadgen_http(args)
    graph = _load_graph(args)
    config = CSRPlusConfig(
        damping=args.damping, rank=min(args.rank, graph.num_nodes)
    )
    chain = None
    if args.mutate_every:
        from repro.serving import LiveIndexChain

        chain = LiveIndexChain(graph, config)
        index = chain.index
    else:
        index = CSRPlusIndex(graph, config).prepare()
    approx_index = None
    if args.quality != "exact":
        from repro.serving import ApproxIndex

        approx_index = ApproxIndex.for_rank(
            graph,
            config.rank,
            damping=config.damping,
            num_projections=args.approx_projections,
        ).prepare()
    profile = LoadProfile(
        requests=args.requests,
        qps=args.qps,
        seeds_per_request=args.seeds_per_request,
        zipf_s=args.zipf,
        burst_factor=args.burst_factor,
        burst_period_s=args.burst_period_s,
        burst_duty=args.burst_duty,
        seed=args.seed,
    )
    schedule = build_schedule(profile, graph.num_nodes)
    slos = loadgen_slos(
        p99_ms=args.slo_p99_ms,
        p50_ms=args.slo_p50_ms,
        availability=args.slo_availability,
    )
    registry = MetricsRegistry()
    deadline_s = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    )
    if args.simulate:
        sim = SimulatedClock()
        clock, sleep = sim.now, sim.sleep
    else:
        clock, sleep = _time.monotonic, _time.sleep
    with CoSimRankService(
        index,
        cache_columns=args.cache_columns,
        max_workers=1,
        query_mode=args.query_mode,
        max_inflight_seeds=args.max_inflight_seeds,
        approx_index=approx_index,
    ) as service:
        mutator = None
        if chain is not None:
            import numpy as _np

            chain.attach(service)
            mutate_rng = _np.random.default_rng(args.mutate_seed)

            def mutator(_mutation_index: int) -> None:
                chain.update_edges(
                    added=_random_edge_batch(
                        mutate_rng, graph.num_nodes, args.mutate_edges
                    )
                )

        report = run_load(
            service,
            schedule,
            topk=args.topk,
            deadline_s=deadline_s,
            quality=args.quality,
            slos=slos,
            registry=registry,
            clock=clock,
            sleep=sleep,
            mutator=mutator,
            mutate_every=args.mutate_every,
        )
        if args.metrics_out:
            _write_metrics_dump(args.metrics_out, service, registry)
    if args.trace_out:
        obs.get_tracer().write_json(args.trace_out)

    exit_code = 4 if args.fail_on_slo and not report.slo_ok else 0
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return exit_code
    print(report.render())
    if report.slo is not None:
        from repro.obs.slo import SLOReport, SLOResult

        table = SLOReport(
            results=[
                SLOResult(**{
                    key: value
                    for key, value in entry.items()
                    if key not in ("burn_rate", "budget_remaining")
                })
                for entry in report.slo["slos"]
            ]
        ).render()
        print(table)
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    if exit_code:
        print(
            "error: SLO verdicts failed; exiting 4 (--fail-on-slo)",
            file=sys.stderr,
        )
    return exit_code


def _cmd_loadgen_http(args: argparse.Namespace) -> int:
    """``csrplus loadgen --url``: the same open-loop driver over HTTP.

    The schedule, SLO verdicts, and outcome classification are the
    in-process ones; only the dispatch target changes — a keep-alive
    :class:`~repro.serving.frontend.FrontendClient` that reconstructs
    the server's typed errors from the wire, so shed/deadline/degraded
    counts mean the same thing they mean in process.
    """
    import time as _time

    import repro.obs as obs
    from repro.errors import InvalidParameterError
    from repro.obs.metrics import MetricsRegistry
    from repro.serving import (
        LoadProfile,
        SimulatedClock,
        build_schedule,
        loadgen_slos,
        run_load,
    )
    from repro.serving.frontend import FrontendClient

    if args.mutate_every:
        raise InvalidParameterError(
            "--mutate-every needs an in-process service "
            "(--dataset/--edge-list); mutate a frontend through its "
            "POST /admin/publish endpoint instead"
        )
    profile = LoadProfile(
        requests=args.requests,
        qps=args.qps,
        seeds_per_request=args.seeds_per_request,
        zipf_s=args.zipf,
        burst_factor=args.burst_factor,
        burst_period_s=args.burst_period_s,
        burst_duty=args.burst_duty,
        seed=args.seed,
    )
    slos = loadgen_slos(
        p99_ms=args.slo_p99_ms,
        p50_ms=args.slo_p50_ms,
        availability=args.slo_availability,
    )
    registry = MetricsRegistry()
    deadline_s = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    )
    if args.simulate:
        sim = SimulatedClock()
        clock, sleep = sim.now, sim.sleep
    else:
        clock, sleep = _time.monotonic, _time.sleep
    with FrontendClient(args.url) as client:
        health = client.healthz()
        schedule = build_schedule(profile, int(health["num_nodes"]))
        report = run_load(
            client,
            schedule,
            topk=args.topk,
            deadline_s=deadline_s,
            quality=args.quality,
            slos=slos,
            registry=registry,
            clock=clock,
            sleep=sleep,
        )
        if args.metrics_out:
            _write_metrics_dump(args.metrics_out, client, registry)
    if args.trace_out:
        obs.get_tracer().write_json(args.trace_out)

    exit_code = 4 if args.fail_on_slo and not report.slo_ok else 0
    if args.json:
        payload = report.as_dict()
        payload["url"] = args.url
        payload["server"] = health
        print(json.dumps(payload, indent=2))
        return exit_code
    print(
        f"frontend: {args.url}  n={health['num_nodes']} "
        f"workers={health['workers_alive']}/{health['workers_total']} "
        f"mode={health['query_mode']} v{health['index_version']}"
    )
    print(report.render())
    if report.slo is not None:
        from repro.obs.slo import SLOReport, SLOResult

        table = SLOReport(
            results=[
                SLOResult(**{
                    key: value
                    for key, value in entry.items()
                    if key not in ("burn_rate", "budget_remaining")
                })
                for entry in report.slo["slos"]
            ]
        ).render()
        print(table)
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if exit_code:
        print(
            "error: SLO verdicts failed; exiting 4 (--fail-on-slo)",
            file=sys.stderr,
        )
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import InvalidParameterError
    from repro.serving.frontend import FrontendConfig, FrontendServer
    from repro.serving.frontend.protocol import WIRE_VERSION

    graph = None
    approx_path = None
    if args.shards:
        if args.approx_projections is not None:
            raise InvalidParameterError(
                "--approx-projections needs a graph source "
                "(--dataset/--edge-list) to build and load the sketch "
                "replica against; --shards carries only the exact factors"
            )
        store_path = args.shards
        if not os.path.exists(os.path.join(store_path, "manifest.json")):
            raise InvalidParameterError(
                f"{store_path!r} is not a sharded store (no manifest.json); "
                "build one with 'csrplus shard-build'"
            )
    else:
        if not args.store:
            raise InvalidParameterError(
                "--store DIR is required with a graph source (the built "
                "store persists there for the next start)"
            )
        graph = _load_graph(args)
        store_path = args.store
        if not os.path.exists(os.path.join(store_path, "manifest.json")):
            from repro.sharding import build_sharded_store

            config = CSRPlusConfig(
                damping=args.damping,
                rank=min(args.rank, graph.num_nodes),
                query_mode=args.query_mode,
            )
            build_sharded_store(
                graph, store_path, num_shards=args.num_shards, config=config
            )
            print(f"built sharded store at {store_path}", file=sys.stderr)
        if args.approx_projections is not None:
            from repro.serving import ApproxIndex
            from repro.sharding import ShardStore

            manifest = ShardStore(store_path).manifest
            approx_path = os.path.join(store_path, "approx.npz")
            if not os.path.exists(approx_path):
                ApproxIndex.for_rank(
                    graph,
                    manifest.rank,
                    damping=manifest.damping,
                    num_projections=args.approx_projections,
                ).prepare().save(approx_path)
                print(
                    f"built approx replica at {approx_path}", file=sys.stderr
                )

    config = FrontendConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        chunk_size=args.chunk_size,
        query_mode=args.query_mode,
        cache_columns=args.cache_columns,
        max_inflight_seeds=args.max_inflight_seeds,
        coalesce_window_s=args.coalesce_ms / 1000.0,
        admin=not args.no_admin,
        validate_reads=args.validate_reads,
    )
    server = FrontendServer(
        store_path, config=config, approx_path=approx_path, graph=graph
    )

    async def _run() -> None:
        await server.start()
        server.install_signal_handlers()
        # one machine-readable ready line so wrappers can scrape the
        # bound port and worker pids, then block until SIGTERM/SIGINT
        # completes the graceful drain
        print(
            json.dumps({
                "ready": True,
                "url": server.url,
                "protocol": WIRE_VERSION,
                "num_nodes": server.num_nodes,
                "workers": server.pool.worker_pids(),
                "store": store_path,
                "quality_tiers": approx_path is not None,
            }),
            flush=True,
        )
        await server.run_until_drained()

    asyncio.run(_run())
    print("frontend drained, exiting", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from datetime import datetime, timezone

    from repro.bench import (
        DEFAULT_TOLERANCE,
        compare_snapshots,
        load_snapshot,
        render_comparison,
        run_bench,
        write_snapshot,
    )
    from repro.serving import LoadProfile

    graph = _load_graph(args)
    profile = LoadProfile(
        requests=args.requests, qps=args.qps, seed=args.seed
    )
    payload = run_bench(
        graph,
        rank=args.rank,
        damping=args.damping,
        profile=profile,
        topk=args.topk,
        simulate=args.simulate,
        frontend_workers=args.frontend_workers,
    )
    out = args.out or (
        f"BENCH_{datetime.now(timezone.utc).strftime('%Y-%m-%d')}.json"
    )
    write_snapshot(payload, out)

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"bench snapshot written to {out}")
        for name, metric in payload["metrics"].items():
            print(
                f"  {name:<32} {metric['value']:>12.4g} {metric['unit']:<10}"
                f" ({metric['direction']} is better)"
            )
        if payload.get("slo"):
            print("slo ok:", payload["slo"]["ok"])

    if args.compare:
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        baseline = load_snapshot(args.compare)
        regressions = compare_snapshots(baseline, payload, tolerance)
        print(render_comparison(baseline, payload, regressions, tolerance))
        if regressions:
            print(
                f"error: {len(regressions)} metric(s) regressed vs "
                f"{args.compare}; exiting 5",
                file=sys.stderr,
            )
            return 5
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.errors import InvalidParameterError

    if not (args.dataset or args.edge_list or args.metrics_file or args.trace_file):
        raise InvalidParameterError(
            "stats needs a graph source (--dataset/--edge-list) or a dump "
            "to pretty-print (--metrics-file/--trace-file)"
        )
    if args.metrics_file:
        _print_metrics_dump(args.metrics_file)
    if args.trace_file:
        _print_trace_dump(args.trace_file)
    if not (args.dataset or args.edge_list):
        return 0

    from repro.graphs.components import (
        largest_component_fraction,
        num_weakly_connected_components,
    )
    from repro.graphs.validation import graph_stats

    graph = _load_graph(args)
    row = graph_stats(graph).as_row()
    row["weak components"] = num_weakly_connected_components(graph)
    row["largest component"] = f"{100 * largest_component_fraction(graph):.1f}%"
    for key, value in row.items():
        print(f"{key:>18}: {value}")
    return 0


def _print_metrics_dump(path: str) -> None:
    """Pretty-print a serve-batch metrics dump (.prom text or .json)."""
    from repro.errors import GraphFormatError

    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise GraphFormatError(f"cannot read metrics file {path!r}: {exc}") from exc

    samples = []
    if path.endswith(".json"):
        try:
            dump = json.loads(text)
            for family in dump["metrics"]:
                for sample in family["samples"]:
                    labels = sample.get("labels", {})
                    label_text = (
                        "{" + ",".join(
                            f'{k}="{v}"' for k, v in sorted(labels.items())
                        ) + "}" if labels else ""
                    )
                    name = f"{family['name']}{label_text}"
                    if family["type"] == "histogram":
                        samples.append((f"{name} count", sample["count"]))
                        samples.append((f"{name} sum", sample["sum"]))
                    else:
                        samples.append((name, sample["value"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise GraphFormatError(
                f"{path!r} is not a metrics JSON dump: {exc}"
            ) from exc
    else:
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            samples.append((name, value))
    if not samples:
        print(f"(no metrics in {path})")
        return
    width = max(len(name) for name, _ in samples)
    print(f"metrics from {path}:")
    for name, value in samples:
        print(f"  {name:<{width}}  {value}")


def _print_trace_dump(path: str) -> None:
    """Render a serve-batch --trace-out JSON file as a span tree."""
    from repro.errors import GraphFormatError
    from repro.obs import render_tree_from_dict

    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except OSError as exc:
        raise GraphFormatError(f"cannot read trace file {path!r}: {exc}") from exc
    except ValueError as exc:
        raise GraphFormatError(f"{path!r} is not JSON: {exc}") from exc
    print(f"trace from {path}:")
    rendered = render_tree_from_dict(trace)
    print(rendered if rendered else "(no spans recorded)")


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.tuning import estimate_rank_error, suggest_rank

    graph = _load_graph(args)
    candidates = [int(tok) for tok in args.candidates.split(",") if tok.strip()]
    rank = suggest_rank(
        graph, args.target_error, candidates=candidates, damping=args.damping
    )
    achieved = estimate_rank_error(graph, rank, damping=args.damping)
    print(
        f"suggested rank: {rank} (estimated AvgDiff {achieved:.3e}, "
        f"target {args.target_error:.3e})"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "experiments":
            return _cmd_experiments(args)
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "shard-build":
            return _cmd_shard_build(args)
        if args.command == "update":
            return _cmd_update(args)
        if args.command == "serve-batch":
            return _cmd_serve_batch(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "tune":
            return _cmd_tune(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
