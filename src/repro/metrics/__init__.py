"""Accuracy and ranking metrics (AvgDiff of §4.2.3 and friends)."""

from repro.metrics.accuracy import avg_diff, max_diff, rmse
from repro.metrics.ranking import kendall_tau, ndcg_at_k, precision_at_k, rank_of

__all__ = [
    "avg_diff",
    "max_diff",
    "rmse",
    "precision_at_k",
    "ndcg_at_k",
    "kendall_tau",
    "rank_of",
]
