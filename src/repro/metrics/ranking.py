"""Ranking-quality metrics.

CoSimRank's applications (categorisation, synonym expansion, link
prediction) consume *rankings*, not raw scores, so the application
examples and tests judge approximate engines by how well they preserve
the exact engine's ordering.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from repro.errors import InvalidParameterError

__all__ = ["precision_at_k", "ndcg_at_k", "kendall_tau", "rank_of"]


def _validate_k(k: int) -> int:
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    return int(k)


def precision_at_k(
    predicted: Sequence[int], relevant: Sequence[int], k: int
) -> float:
    """Fraction of the top-``k`` slots filled with relevant items.

    The denominator is ``k``, not the number of predictions actually
    supplied: a ranker that returns fewer than ``k`` items left slots
    empty, and empty slots are misses.  (Dividing by ``len(predicted)``
    would score the 1-item list ``[hit]`` a perfect 1.0 at any ``k`` —
    truncated predictions would *inflate* precision.)
    """
    k = _validate_k(k)
    top = list(predicted)[:k]
    relevant_set = set(int(x) for x in relevant)
    hits = sum(1 for item in top if int(item) in relevant_set)
    return hits / k


def ndcg_at_k(predicted: Sequence[int], relevant: Sequence[int], k: int) -> float:
    """Binary-relevance NDCG@k."""
    k = _validate_k(k)
    top = list(predicted)[:k]
    relevant_set = set(int(x) for x in relevant)
    gains = np.array([1.0 if int(item) in relevant_set else 0.0 for item in top])
    if gains.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, gains.size + 2))
    dcg = float(np.dot(gains, discounts))
    ideal_hits = min(len(relevant_set), gains.size)
    if ideal_hits == 0:
        return 0.0
    ideal = float(discounts[:ideal_hits].sum())
    return dcg / ideal


def kendall_tau(scores_a: np.ndarray, scores_b: np.ndarray) -> float:
    """Kendall's tau-b between two score vectors (1 = same ordering)."""
    scores_a = np.asarray(scores_a, dtype=np.float64).ravel()
    scores_b = np.asarray(scores_b, dtype=np.float64).ravel()
    if scores_a.shape != scores_b.shape:
        raise InvalidParameterError(
            f"shape mismatch: {scores_a.shape} vs {scores_b.shape}"
        )
    if scores_a.size < 2:
        raise InvalidParameterError("need at least 2 scores for kendall_tau")
    tau, _ = stats.kendalltau(scores_a, scores_b)
    return float(tau) if np.isfinite(tau) else 0.0


def rank_of(scores: np.ndarray, node: int) -> int:
    """0-based rank of ``node`` when sorting ``scores`` descending.

    Ties broken by ascending node id (matching ``SimilarityEngine.top_k``).
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if not (0 <= node < scores.size):
        raise InvalidParameterError(
            f"node {node} out of range for {scores.size} scores"
        )
    order = np.lexsort((np.arange(scores.size), -scores))
    return int(np.flatnonzero(order == node)[0])
