"""Accuracy metrics.

``avg_diff`` is the paper's measure (§4.2.3):

    AvgDiff_Q(S_hat, S) = (1 / (|V| * |Q|)) *
                          sum_{(i, j) in V x Q} |S_hat[i, j] - S[i, j]|

evaluated over the ``n x |Q|`` multi-source blocks.  ``max_diff`` and
``rmse`` are the standard companions used in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["avg_diff", "max_diff", "rmse"]


def _as_blocks(estimate: np.ndarray, reference: np.ndarray):
    estimate = np.asarray(estimate, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if estimate.shape != reference.shape:
        raise InvalidParameterError(
            f"shape mismatch: estimate {estimate.shape} vs reference "
            f"{reference.shape}"
        )
    if estimate.size == 0:
        raise InvalidParameterError("cannot score empty similarity blocks")
    return estimate, reference


def avg_diff(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute difference over all ``(node, query)`` pairs."""
    estimate, reference = _as_blocks(estimate, reference)
    return float(np.mean(np.abs(estimate - reference)))


def max_diff(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Maximum absolute difference (the max-norm error)."""
    estimate, reference = _as_blocks(estimate, reference)
    return float(np.max(np.abs(estimate - reference)))


def rmse(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square error."""
    estimate, reference = _as_blocks(estimate, reference)
    return float(np.sqrt(np.mean((estimate - reference) ** 2)))
