"""Pruned top-k search over a CSR+ index.

``SimilarityEngine.top_k`` scores all ``n`` nodes and sorts.  For large
graphs with a skewed score distribution most of that work is wasted:
by Eq. (12), ``S[x, q] = [x = q] + c * <Z[x], U[q]>``, and
Cauchy–Schwarz bounds the off-diagonal part by
``c * ||Z[x]|| * ||U[q]||``.  Visiting candidates in decreasing
``||Z[x]||`` order therefore admits classic threshold-algorithm
pruning: once the k-th best score found so far exceeds the bound of
every unvisited candidate, the scan can stop.

Two kernels implement this idea (docs/topk.md):

* :func:`top_k_pruned` — the scalar reference oracle: one seed, one
  Python loop, one GEMV per candidate.  Obviously correct, trivially
  auditable, and kept as the ground truth the fast path is tested
  against.
* :func:`top_k_blockwise` — the production kernel: many seeds at once,
  evaluated one *row-block* at a time (a vectorised product per block,
  never a per-candidate GEMV), with blocks visited in decreasing
  max-norm order and skipped outright once their bound falls below
  every live seed's k-th floor.  Peak extra memory is
  ``O(block_rows * |Q|)`` — a dense ``n x |Q|`` score matrix is never
  materialised.  Over a :class:`~repro.sharding.ShardedIndex` a shard
  is the natural block and the manifest's precomputed per-shard bound
  lets cold shards be skipped without a disk read.

Both kernels reproduce ``SimilarityEngine.top_k``'s exact ordering —
descending score, ties broken by ascending node id — so their results
are drop-in substitutes for the full-sort path.  In ``"exact"`` query
mode the blockwise scores are *bit-identical* to the full column
(the partition-stable :func:`~repro.core.index.exact_column_product`
kernel evaluates each row independently); ``"batched"`` mode uses one
GEMM per block and inherits the
:func:`~repro.core.index.batched_query_atol` tolerance contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

import repro.obs as obs
from repro.core.config import QUERY_MODES
from repro.core.index import CSRPlusIndex, batched_query_atol, exact_column_product
from repro.errors import InvalidParameterError

__all__ = ["TopKResult", "top_k_pruned", "top_k_blockwise"]


@dataclass(frozen=True)
class TopKResult:
    """Result of a pruned top-k scan."""

    #: node ids in descending score order (ties: ascending id)
    nodes: np.ndarray
    #: matching similarity scores
    scores: np.ndarray
    #: how many candidates were actually scored (<= n)
    candidates_scored: int
    #: row-blocks whose scores were computed for this seed
    blocks_scanned: int = 0
    #: row-blocks skipped because their norm bound fell below the floor
    blocks_skipped: int = 0


def top_k_pruned(
    index: CSRPlusIndex,
    query: int,
    k: int,
    exclude_self: bool = True,
) -> TopKResult:
    """Exact top-k most-similar nodes using norm-bound pruning.

    Produces exactly the same ranking as
    ``SimilarityEngine.top_k`` (ties broken by ascending node id) but
    typically scores far fewer than ``n`` candidates when ``||Z[x]||``
    is skewed (hub-dominated graphs).
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    index.prepare()
    u_matrix, _, _, z_matrix = index.factors
    n = index.num_nodes
    query = int(query)
    if not (0 <= query < n):
        raise InvalidParameterError(f"query {query} out of range for n={n}")

    c = index.damping
    u_q = u_matrix[query]
    u_q_norm = float(np.linalg.norm(u_q))
    z_norms = np.linalg.norm(z_matrix, axis=1)

    # candidate visit order: decreasing upper bound c * ||Z[x]|| * ||U[q]||
    order = np.lexsort((np.arange(n), -z_norms))

    # The query node's diagonal +1 breaks the bound ordering; score it
    # up front so the scan only needs the off-diagonal bound.
    best_nodes: list = []
    best_scores: list = []

    def push(node: int, score: float) -> None:
        best_nodes.append(node)
        best_scores.append(score)

    if not exclude_self:
        self_score = 1.0 + c * float(z_matrix[query] @ u_q)
        push(query, self_score)

    scored = 0
    kth_floor = -np.inf
    for position in range(n):
        node = int(order[position])
        bound = c * z_norms[node] * u_q_norm
        if len(best_scores) >= k and bound < kth_floor:
            break  # no unvisited candidate can enter the top-k
        if node == query:
            continue  # handled above / excluded
        score = c * float(z_matrix[node] @ u_q)
        scored += 1
        push(node, score)
        if len(best_scores) >= k:
            kth_floor = np.partition(np.asarray(best_scores), -k)[-k]

    nodes_arr = np.asarray(best_nodes, dtype=np.int64)
    scores_arr = np.asarray(best_scores, dtype=np.float64)
    top_order = np.lexsort((nodes_arr, -scores_arr))[:k]
    return TopKResult(
        nodes=nodes_arr[top_order],
        scores=scores_arr[top_order],
        candidates_scored=scored,
        blocks_scanned=1,
        blocks_skipped=0,
    )


#: Default row-block height for monolithic indexes.  Small enough that
#: the per-block score buffer (``block_rows * |Q|`` entries) is a few
#: MB for realistic batches, large enough that block products hit BLAS.
DEFAULT_BLOCK_ROWS = 4096


class _MonolithicBlocks:
    """Norm-ordered row blocks over an in-memory :class:`CSRPlusIndex`.

    Contiguous node-id ranges make poor pruning blocks: on real graphs
    high-norm rows land in every range, so each block's max-norm bound
    stays high and nothing is ever skipped.  With the whole ``Z`` in
    RAM we can do what the scalar oracle does — visit rows in
    decreasing ``||Z[x]||`` order — blockwise: the plan chunks the
    norm-sorted row permutation, so block bounds decay monotonically
    and the scan stops after the same ~prefix the oracle scans, just
    one vectorised product per block instead of one GEMV per row.
    """

    def __init__(self, index: CSRPlusIndex, block_rows: Optional[int]):
        index.prepare()
        u_matrix, _, _, z_matrix = index.factors
        self._u = u_matrix
        self._z = z_matrix
        if block_rows is None:
            block_rows = DEFAULT_BLOCK_ROWS
        if block_rows < 1:
            raise InvalidParameterError(
                f"block_rows must be >= 1, got {block_rows}"
            )
        norms = index.z_row_norms()
        n = index.num_nodes
        # same visit order as top_k_pruned: desc norm, ties by asc id
        self._order = np.lexsort((np.arange(n), -norms))
        self.plan = []
        for block_id, start in enumerate(range(0, n, int(block_rows))):
            stop = min(start + int(block_rows), n)
            bound = float(norms[self._order[start]])
            self.plan.append((block_id, start, stop, bound))

    def load(self, block_id: int, start: int, stop: int):
        row_ids = self._order[start:stop]
        return row_ids, self._z[row_ids, :]

    def u_rows(self, seed_ids: np.ndarray) -> np.ndarray:
        return self._u[seed_ids, :]

    def z_rows(self, seed_ids: np.ndarray) -> np.ndarray:
        return self._z[seed_ids, :]


class _ShardBlocks:
    """Shard-per-block adapter over a ``ShardedIndex`` (duck-typed, so
    the core package never imports :mod:`repro.sharding`).

    A shard is the natural block: its rows are already a contiguous
    unit on disk, and the manifest's precomputed ``z_norm_max`` bounds
    the whole unit, so a cold shard below every seed's floor is skipped
    without a read.
    """

    def __init__(self, index, block_rows: Optional[int]):
        # block_rows is ignored: the shard layout *is* the block layout.
        self._index = index
        self.plan = list(index.topk_block_plan())

    def load(self, block_id: int, start: int, stop: int):
        return (
            np.arange(start, stop, dtype=np.int64),
            self._index.load_topk_block(block_id),
        )

    def u_rows(self, seed_ids: np.ndarray) -> np.ndarray:
        return self._index.gather_u_rows(seed_ids)

    def z_rows(self, seed_ids: np.ndarray) -> np.ndarray:
        return self._index.gather_z_rows(seed_ids)


def top_k_blockwise(
    index,
    seeds,
    k: int,
    *,
    exclude_self: bool = True,
    block_rows: Optional[int] = None,
    mode: Optional[str] = None,
    memory=None,
    tracer=None,
    parent_span=None,
) -> List[TopKResult]:
    """Exact multi-seed top-k via blockwise evaluation with pruning.

    Evaluates ``Z[blk] @ U[Q,:]^T`` one row-block at a time, keeps a
    per-seed running top-k, and visits blocks in decreasing
    ``max ||Z[x]||`` order so that a block whose Cauchy–Schwarz bound
    ``c * max||Z[x]|| * ||U[q]||`` falls below a seed's current k-th
    floor is skipped for that seed — and never loaded at all once every
    seed can skip it.  Peak extra memory is ``O(block_rows * |Q|)``;
    a dense ``n x |Q|`` intermediate is never formed.

    Parameters
    ----------
    index:
        A :class:`~repro.core.index.CSRPlusIndex` (norm-ordered row
        blocks of the in-memory ``Z``) or any object exposing the blockwise
        surface ``topk_block_plan`` / ``load_topk_block`` /
        ``gather_u_rows`` / ``gather_z_rows`` — in particular a
        :class:`~repro.sharding.ShardedIndex`, where a shard is a block
        and the manifest's precomputed per-shard bound skips cold
        shards without a disk read.
    seeds:
        Seed node ids (an int or a sequence; duplicates allowed).  One
        :class:`TopKResult` is returned per entry, in order.
    k:
        Ranking depth.  Clamped like ``SimilarityEngine.top_k``: at
        most ``n - 1`` nodes exist with ``exclude_self=True``, ``n``
        otherwise.
    exclude_self:
        Drop each seed from its own ranking (default), mirroring
        ``SimilarityEngine.top_k``.
    block_rows:
        Row-block height for monolithic indexes (default
        ``DEFAULT_BLOCK_ROWS``); ignored for sharded backends, whose
        shard layout is the block layout.
    mode:
        ``"exact"`` (bit-identical to the full column; the default via
        the index config) or ``"batched"`` (one GEMM per block, within
        :func:`~repro.core.index.batched_query_atol` of exact).
    memory:
        Optional :class:`~repro.core.memory.MemoryMeter`; each block's
        transient score buffer is charged while live, so the meter's
        peak proves the ``O(block_rows * |Q|)`` claim.
    tracer / parent_span:
        Span plumbing: each scanned block emits a ``topk.block`` span
        (free when observability is off).

    Returns
    -------
    ``List[TopKResult]`` — nodes and scores in descending score order
    with ties broken by ascending id, exactly
    ``SimilarityEngine.top_k``'s order, so in exact mode
    ``result.nodes`` is ``np.array_equal`` to the engine's answer and
    ``result.scores`` carries the identical column bytes.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if mode is None:
        mode = index.config.query_mode
    if mode not in QUERY_MODES:
        raise InvalidParameterError(
            f"query mode must be one of {QUERY_MODES}, got {mode!r}"
        )
    if hasattr(index, "topk_block_plan"):
        source = _ShardBlocks(index, block_rows)
    else:
        source = _MonolithicBlocks(index, block_rows)
    n = index.num_nodes
    seed_ids = np.atleast_1d(np.asarray(seeds, dtype=np.int64)).ravel()
    if seed_ids.size and (seed_ids.min() < 0 or seed_ids.max() >= n):
        raise InvalidParameterError(
            f"seed ids must be in [0, {n}), got range "
            f"[{seed_ids.min()}, {seed_ids.max()}]"
        )
    num_seeds = int(seed_ids.size)
    if num_seeds == 0:
        return []
    if tracer is None:
        tracer = obs.get_tracer()

    damping = float(index.damping)
    rank = int(index.config.rank)
    dtype = index.dtype
    k_eff = min(int(k), n - 1 if exclude_self else n)

    u_rows = source.u_rows(seed_ids)
    u_norms = np.linalg.norm(u_rows.astype(np.float64, copy=False), axis=1)
    # Rounding can push a computed score a hair past its mathematical
    # bound (both the per-row dot and the batched GEMM); inflating the
    # bound by the documented tolerance makes wrongly pruning a true
    # top-k candidate impossible in either mode.
    safety = batched_query_atol(rank, dtype)

    empty_nodes = np.empty(0, dtype=np.int64)
    empty_scores = np.empty(0, dtype=dtype)
    best_nodes = [empty_nodes] * num_seeds
    best_scores = [empty_scores] * num_seeds
    floors = np.full(num_seeds, -np.inf)
    filled = np.zeros(num_seeds, dtype=bool)
    scored = np.zeros(num_seeds, dtype=np.int64)
    scanned = np.zeros(num_seeds, dtype=np.int64)
    skipped = np.zeros(num_seeds, dtype=np.int64)

    if k_eff > 0 and not exclude_self:
        # The diagonal +1 breaks the norm-bound ordering; seed it into
        # each running top-k up front, exactly as the scalar oracle
        # does.  The per-seed 1-row product is the partition-stable
        # kernel, so the self score carries the full column's bits.
        z_self = source.z_rows(seed_ids)
        for i in range(num_seeds):
            col = damping * exact_column_product(
                z_self[i : i + 1, :], u_rows[i]
            )
            col[0] += 1.0
            best_nodes[i] = seed_ids[i : i + 1].copy()
            best_scores[i] = col
            if k_eff == 1:
                floors[i] = float(col[0])
                filled[i] = True

    def merge(i: int, cand_nodes: np.ndarray, cand_scores: np.ndarray) -> None:
        nodes = np.concatenate([best_nodes[i], cand_nodes])
        values = np.concatenate([best_scores[i], cand_scores])
        order = np.lexsort((nodes, -values))[:k_eff]
        best_nodes[i] = nodes[order]
        best_scores[i] = values[order]
        if best_scores[i].size >= k_eff:
            floors[i] = float(best_scores[i][-1])
            filled[i] = True

    # descending bound order; unknown bounds (None) sort first and are
    # always scanned, so a legacy manifest degrades to a full scan,
    # never to a wrong skip
    block_order = sorted(
        source.plan,
        key=lambda blk: (-np.inf if blk[3] is None else -blk[3], blk[0]),
    )
    itemsize = np.dtype(dtype).itemsize
    if k_eff > 0:
        for block_id, start, stop, bound in block_order:
            if bound is None:
                active = np.arange(num_seeds)
            else:
                # seed i is done with this (and every later) block when
                # the inflated bound sits strictly below its floor —
                # candidates tied with the floor must still be scanned,
                # since a smaller id wins the tie
                limits = damping * bound * u_norms * (1.0 + safety) + safety
                active = np.flatnonzero(~filled | (limits >= floors))
            rows = stop - start
            if active.size == 0:
                skipped += 1
                continue
            skipped[np.setdiff1d(np.arange(num_seeds), active)] += 1
            with tracer.span(
                "topk.block",
                parent=parent_span,
                block=int(block_id),
                rows=int(rows),
                active=int(active.size),
                query_mode=mode,
            ):
                row_ids, z_blk = source.load(block_id, start, stop)
                charge = memory.charged if memory is not None else None
                ctx = (
                    charge("topk/block", rows * active.size * itemsize)
                    if charge is not None
                    else _null_context()
                )
                with ctx:
                    if mode == "batched":
                        block_scores = z_blk @ u_rows[active, :].T
                        block_scores *= damping
                    else:
                        block_scores = None
                    for pos, i in enumerate(active):
                        if mode == "batched":
                            col = block_scores[:, pos]
                        else:
                            col = damping * exact_column_product(
                                z_blk, u_rows[i]
                            )
                        # the seed's own row was handled up front (its
                        # diagonal +1 breaks the bound ordering), so it
                        # is never a candidate here
                        keep = row_ids != int(seed_ids[i])
                        if keep.all():
                            cand_nodes = row_ids
                        else:
                            cand_nodes = row_ids[keep]
                            col = col[keep]
                        scored[i] += cand_nodes.size
                        scanned[i] += 1
                        if filled[i]:
                            passing = col >= best_scores[i][-1]
                            cand_nodes = cand_nodes[passing]
                            col = col[passing]
                        merge(i, cand_nodes, col)

    return [
        TopKResult(
            nodes=best_nodes[i],
            scores=best_scores[i],
            candidates_scored=int(scored[i]),
            blocks_scanned=int(scanned[i]),
            blocks_skipped=int(skipped[i]),
        )
        for i in range(num_seeds)
    ]


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False
