"""Pruned top-k search over a CSR+ index.

``SimilarityEngine.top_k`` scores all ``n`` nodes and sorts.  For large
graphs with a skewed score distribution most of that work is wasted:
by Eq. (12), ``S[x, q] = [x = q] + c * <Z[x], U[q]>``, and
Cauchy–Schwarz bounds the off-diagonal part by
``c * ||Z[x]|| * ||U[q]||``.  Visiting candidates in decreasing
``||Z[x]||`` order therefore admits classic threshold-algorithm
pruning: once the k-th best score found so far exceeds the bound of
every unvisited candidate, the scan can stop.

:func:`top_k_pruned` implements this with instrumentation (how many
candidates were actually scored), so the tests can verify both the
exactness of the result and that pruning genuinely skips work on
skewed graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError

__all__ = ["TopKResult", "top_k_pruned"]


@dataclass(frozen=True)
class TopKResult:
    """Result of a pruned top-k scan."""

    #: node ids in descending score order (ties: ascending id)
    nodes: np.ndarray
    #: matching similarity scores
    scores: np.ndarray
    #: how many candidates were actually scored (<= n)
    candidates_scored: int


def top_k_pruned(
    index: CSRPlusIndex,
    query: int,
    k: int,
    exclude_self: bool = True,
) -> TopKResult:
    """Exact top-k most-similar nodes using norm-bound pruning.

    Produces exactly the same ranking as
    ``SimilarityEngine.top_k`` (ties broken by ascending node id) but
    typically scores far fewer than ``n`` candidates when ``||Z[x]||``
    is skewed (hub-dominated graphs).
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    index.prepare()
    u_matrix, _, _, z_matrix = index.factors
    n = index.num_nodes
    query = int(query)
    if not (0 <= query < n):
        raise InvalidParameterError(f"query {query} out of range for n={n}")

    c = index.damping
    u_q = u_matrix[query]
    u_q_norm = float(np.linalg.norm(u_q))
    z_norms = np.linalg.norm(z_matrix, axis=1)

    # candidate visit order: decreasing upper bound c * ||Z[x]|| * ||U[q]||
    order = np.lexsort((np.arange(n), -z_norms))

    # The query node's diagonal +1 breaks the bound ordering; score it
    # up front so the scan only needs the off-diagonal bound.
    best_nodes: list = []
    best_scores: list = []

    def push(node: int, score: float) -> None:
        best_nodes.append(node)
        best_scores.append(score)

    if not exclude_self:
        self_score = 1.0 + c * float(z_matrix[query] @ u_q)
        push(query, self_score)

    scored = 0
    kth_floor = -np.inf
    for position in range(n):
        node = int(order[position])
        bound = c * z_norms[node] * u_q_norm
        if len(best_scores) >= k and bound < kth_floor:
            break  # no unvisited candidate can enter the top-k
        if node == query:
            continue  # handled above / excluded
        score = c * float(z_matrix[node] @ u_q)
        scored += 1
        push(node, score)
        if len(best_scores) >= k:
            kth_floor = np.partition(np.asarray(best_scores), -k)[-k]

    nodes_arr = np.asarray(best_nodes, dtype=np.int64)
    scores_arr = np.asarray(best_scores, dtype=np.float64)
    top_order = np.lexsort((nodes_arr, -scores_arr))[:k]
    return TopKResult(
        nodes=nodes_arr[top_order],
        scores=scores_arr[top_order],
        candidates_scored=scored,
    )
