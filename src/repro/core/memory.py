"""Explicit memory accounting.

The paper's Figures 6–9 compare the memory footprint of each algorithm
and report "memory crash" for the quadratic-memory baselines on medium
and large graphs.  Wall-clock RSS measurements are noisy and allocator
dependent, so this package instead accounts *deterministically* for
every numerically significant array an engine materialises:

* every engine owns a :class:`MemoryMeter`;
* before allocating a large array, the engine calls
  :meth:`MemoryMeter.charge` with a label such as ``"precompute/U"``;
  the meter tracks current and peak totals;
* when a configured budget would be exceeded the meter raises
  :class:`~repro.errors.MemoryBudgetExceeded` *before* the allocation
  happens, reproducing the paper's crash behaviour safely.

Labels use ``phase/name`` convention so per-phase breakdowns (Figure 7)
fall out of the same bookkeeping.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

import numpy as np
from scipy import sparse

from repro.errors import InvalidParameterError, MemoryBudgetExceeded

__all__ = [
    "MemoryMeter",
    "array_nbytes",
    "sparse_nbytes",
    "nbytes_of",
    "publish_peak",
]


def publish_peak(meter: "MemoryMeter", ledger: str) -> None:
    """Export a meter's peak to the obs registry (no-op while disabled).

    Sets ``csrplus_memory_peak_bytes{ledger=...}`` on the process-global
    registry so deterministic memory accounting appears on the same
    Prometheus scrape as the latency metrics, not only in experiment
    reports.  Engines call this after ``prepare()`` with their display
    name as the ledger; the out-of-core shard builder uses
    ``"shard-build"``.
    """
    import repro.obs as obs  # deferred: keep memory importable standalone

    if not obs.enabled():
        return
    obs.get_registry().gauge(
        "csrplus_memory_peak_bytes",
        "Peak accounted bytes per memory ledger (deterministic "
        "MemoryMeter accounting, not RSS)",
        labels={"ledger": ledger},
    ).set(meter.peak_bytes)


def array_nbytes(shape, dtype=np.float64) -> int:
    """Bytes a dense array of ``shape``/``dtype`` would occupy."""
    count = 1
    for dim in shape:
        if dim < 0:
            raise InvalidParameterError(f"negative dimension in shape {shape}")
        count *= int(dim)
    return count * np.dtype(dtype).itemsize


def sparse_nbytes(matrix: sparse.spmatrix) -> int:
    """Bytes held by a scipy sparse matrix's buffers."""
    total = 0
    for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
        buf = getattr(matrix, attr, None)
        if buf is not None:
            total += buf.nbytes
    return total


def nbytes_of(obj: Union[np.ndarray, sparse.spmatrix]) -> int:
    """Bytes held by a dense or sparse matrix."""
    if sparse.issparse(obj):
        return sparse_nbytes(obj)
    return int(np.asarray(obj).nbytes)


class MemoryMeter:
    """Label-based byte accounting with an optional hard budget.

    Parameters
    ----------
    budget_bytes:
        Hard ceiling on the *current* total; ``None`` means unlimited.

    Notes
    -----
    The meter tracks the current total (sum over live labels), the peak
    of that total, and a per-label high-water mark.  Charging an
    existing label replaces its previous size (engines overwrite
    intermediates in place).
    """

    def __init__(self, budget_bytes: Optional[int] = None):
        if budget_bytes is not None and budget_bytes <= 0:
            raise InvalidParameterError(
                f"budget_bytes must be positive or None, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._live: Dict[str, int] = {}
        self._high_water: Dict[str, int] = {}
        self.peak_bytes = 0

    # ------------------------------------------------------------------
    @property
    def current_bytes(self) -> int:
        """Sum of all live labels."""
        return sum(self._live.values())

    def charge(self, label: str, nbytes: int) -> None:
        """Account ``nbytes`` under ``label`` (replacing any prior charge).

        Raises :class:`MemoryBudgetExceeded` — without recording the
        charge — if the new total would exceed the budget.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise InvalidParameterError(f"nbytes must be >= 0, got {nbytes}")
        new_total = self.current_bytes - self._live.get(label, 0) + nbytes
        if self.budget_bytes is not None and new_total > self.budget_bytes:
            raise MemoryBudgetExceeded(new_total, self.budget_bytes, what=label)
        self._live[label] = nbytes
        self._high_water[label] = max(self._high_water.get(label, 0), nbytes)
        self.peak_bytes = max(self.peak_bytes, new_total)

    def charge_array(self, label: str, obj: Union[np.ndarray, sparse.spmatrix]) -> None:
        """Charge the actual size of an existing array/sparse matrix."""
        self.charge(label, nbytes_of(obj))

    def require(self, label: str, nbytes: int) -> None:
        """Pre-flight check: would charging ``nbytes`` break the budget?

        Unlike :meth:`charge`, nothing is recorded on success.  Engines
        call this before attempting an allocation that might be huge.
        """
        nbytes = int(nbytes)
        new_total = self.current_bytes - self._live.get(label, 0) + nbytes
        if self.budget_bytes is not None and new_total > self.budget_bytes:
            raise MemoryBudgetExceeded(new_total, self.budget_bytes, what=label)

    def release(self, label: str) -> None:
        """Drop a live label (freeing its bytes from the current total)."""
        self._live.pop(label, None)

    @contextmanager
    def charged(self, label: str, nbytes: int) -> Iterator[None]:
        """Charge ``label`` for the block's duration, then release it.

        The scoped form of :meth:`charge`/:meth:`release` for transient
        arrays whose lifetime matches a code block — the out-of-core
        shard builder (:mod:`repro.sharding.builder`) uses it so each
        shard-sized buffer is on the ledger exactly while it is live,
        making the builder's peak a faithful ~one-shard figure.
        """
        self.charge(label, nbytes)
        try:
            yield
        finally:
            self.release(label)

    def reset(self) -> None:
        """Forget everything, including the peak."""
        self._live.clear()
        self._high_water.clear()
        self.peak_bytes = 0

    # ------------------------------------------------------------------
    def live_breakdown(self) -> Dict[str, int]:
        """Currently live bytes per label."""
        return dict(self._live)

    def high_water_breakdown(self) -> Dict[str, int]:
        """Per-label high-water marks over the meter's lifetime."""
        return dict(self._high_water)

    def phase_peak_bytes(self, phase: str) -> int:
        """Sum of high-water marks of labels with prefix ``"<phase>/"``.

        This is the quantity plotted per phase in Figure 7.
        """
        prefix = phase.rstrip("/") + "/"
        return sum(
            size for label, size in self._high_water.items() if label.startswith(prefix)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = "unlimited" if self.budget_bytes is None else f"{self.budget_bytes:,}"
        return (
            f"MemoryMeter(current={self.current_bytes:,}, "
            f"peak={self.peak_bytes:,}, budget={budget})"
        )
