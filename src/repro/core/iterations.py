"""Iteration-count helpers shared by CSR+ and the iterative baselines.

The paper makes the iteration budget explicit in two places:

* Algorithm 1 line 4: repeated squaring runs while
  ``k <= max(0, floor(log2 log_c eps) + 1)``;
* §4.1 "Parameters": for fairness, the iterative baselines (CSR-IT,
  CSR-RLS) run ``k = r`` iterations, i.e. the iteration count is tied
  to the low rank used by CSR+/CSR-NI.
"""

from __future__ import annotations

from repro.linalg.stein import fixed_point_iteration_count, squaring_iteration_count

__all__ = [
    "squaring_iterations",
    "fixed_point_iterations",
    "baseline_iterations_for_rank",
    "truncation_error_bound",
]


def squaring_iterations(damping: float, epsilon: float) -> int:
    """Squaring steps needed for ``||P_k - P||_max < epsilon`` (Alg. 1)."""
    return squaring_iteration_count(damping, epsilon)


def fixed_point_iterations(damping: float, epsilon: float) -> int:
    """Plain-iteration count: smallest ``K`` with ``c^K < epsilon``."""
    return fixed_point_iteration_count(damping, epsilon)


def baseline_iterations_for_rank(rank: int) -> int:
    """Iteration count for CSR-IT / CSR-RLS under the paper's fairness rule."""
    return max(1, int(rank))


def truncation_error_bound(damping: float, iterations: int) -> float:
    """Upper bound on the series tail after ``iterations`` power terms.

    ``sum_{k > K} c^k ||(Q^k)^T Q^k||_max <= c^(K+1) / (1 - c)`` for a
    column-substochastic ``Q``.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    return damping ** (iterations + 1) / (1.0 - damping)
