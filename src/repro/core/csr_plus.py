"""Functional one-shot API over :class:`~repro.core.index.CSRPlusIndex`.

For users who just want numbers without managing an index object:

>>> from repro.core.csr_plus import cosimrank_multi_source
>>> from repro.graphs import ring
>>> block = cosimrank_multi_source(ring(10), [2, 7], rank=5)
>>> block.shape
(10, 2)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.graphs.digraph import DiGraph

__all__ = [
    "cosimrank_multi_source",
    "cosimrank_single_source",
    "cosimrank_single_pair",
    "cosimrank_all_pairs",
    "cosimrank_top_k",
]


def _build(graph: DiGraph, config: Optional[CSRPlusConfig], **overrides) -> CSRPlusIndex:
    return CSRPlusIndex(graph, config, **overrides).prepare()


def cosimrank_multi_source(
    graph: DiGraph,
    queries: Sequence[int],
    config: Optional[CSRPlusConfig] = None,
    **overrides,
) -> np.ndarray:
    """``[S]_{*,Q}`` for a query set, as an ``n x |Q|`` array."""
    return _build(graph, config, **overrides).query(queries)


def cosimrank_single_source(
    graph: DiGraph,
    query: int,
    config: Optional[CSRPlusConfig] = None,
    **overrides,
) -> np.ndarray:
    """``[S]_{*,q}`` as a length-``n`` vector."""
    return _build(graph, config, **overrides).single_source(query)


def cosimrank_single_pair(
    graph: DiGraph,
    a: int,
    b: int,
    config: Optional[CSRPlusConfig] = None,
    **overrides,
) -> float:
    """The scalar similarity ``[S]_{a,b}``."""
    return _build(graph, config, **overrides).single_pair(a, b)


def cosimrank_all_pairs(
    graph: DiGraph,
    config: Optional[CSRPlusConfig] = None,
    **overrides,
) -> np.ndarray:
    """The full dense ``n x n`` similarity matrix (small graphs only)."""
    return _build(graph, config, **overrides).all_pairs()


def cosimrank_top_k(
    graph: DiGraph,
    query: int,
    k: int,
    config: Optional[CSRPlusConfig] = None,
    **overrides,
) -> np.ndarray:
    """Ids of the ``k`` nodes most similar to ``query`` (self excluded)."""
    return _build(graph, config, **overrides).top_k(query, k)
