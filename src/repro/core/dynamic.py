"""Maintaining a CSR+ index over an evolving graph.

The paper targets static graphs and cites dynamic CoSimRank [14] as the
evolving-graph line of work.  For CSR+ itself the natural production
pattern — used by search systems that batch index refreshes — is a
*rebuild policy*: queries are served from the last built index while
edge updates accumulate, and the index is rebuilt (one truncated SVD)
according to a policy.  :class:`DynamicCSRPlus` implements that
pattern:

* ``policy="immediate"`` — rebuild on every update batch (always
  fresh, costs one SVD per batch);
* ``policy="batch"`` — rebuild after ``batch_size`` accumulated edge
  changes (bounded staleness, amortised SVD cost);
* ``policy="manual"`` — rebuild only on :meth:`refresh` (caller-managed).

The live-serving layer (:class:`~repro.serving.live.LiveIndexChain`,
docs/dynamic.md) composes this class with targeted shard repair and a
versioned zero-downtime swap: pass ``rebuilder=`` to route
:meth:`refresh` through an incremental backend instead of the full
monolithic ``prepare()``.

For *exact* per-query dynamics, use
:class:`repro.baselines.fcosim.FCoSimEngine` instead — it re-verifies
cached columns against a hop-bounded reachability argument.

Observability: the update log is instrumented — the
``csrplus_dynamic_staleness`` gauge tracks how many edge changes the
served index lags the graph by, ``csrplus_dynamic_rebuilds_total``
counts rebuilds, and every :meth:`refresh` emits a ``dynamic.rebuild``
span carrying the staleness it retired.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["DynamicCSRPlus"]

_POLICIES = ("immediate", "batch", "manual")


class DynamicCSRPlus:
    """A CSR+ index plus an update log and a rebuild policy.

    Parameters
    ----------
    graph:
        Initial graph.
    config:
        Index configuration (or keyword overrides, as for
        :class:`CSRPlusIndex`).
    policy:
        One of ``"immediate"``, ``"batch"``, ``"manual"``.
    batch_size:
        Edge-change threshold for the ``"batch"`` policy.
    index:
        An already-prepared index for the initial graph, adopted
        instead of building one (the live chain builds its backend
        first and must not pay a second SVD).  Any object with the
        serving backend surface works.
    rebuilder:
        ``rebuilder(graph, config) -> index`` used by :meth:`refresh`
        instead of a monolithic ``CSRPlusIndex(...).prepare()``; the
        seam the live chain uses to route rebuilds through targeted
        shard repair.
    metrics / tracer:
        Instrument sinks; default to the process-global registry and
        tracer (:mod:`repro.obs`), matching the other engines.
    """

    def __init__(
        self,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        policy: str = "batch",
        batch_size: int = 100,
        *,
        index=None,
        rebuilder: Optional[Callable[[DiGraph, CSRPlusConfig], object]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        **overrides,
    ):
        if policy not in _POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        if batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self._config = (config or CSRPlusConfig()).with_overrides(**overrides)
        self.policy = policy
        self.batch_size = int(batch_size)
        self._graph = graph
        self._rebuilder = rebuilder
        self._tracer = tracer if tracer is not None else obs.get_tracer()
        reg = metrics if metrics is not None else obs.get_registry()
        self._m_staleness = reg.gauge(
            "csrplus_dynamic_staleness",
            "Edge changes applied to the graph but not yet reflected in "
            "the served index",
        )
        self._m_rebuilds = reg.counter(
            "csrplus_dynamic_rebuilds_total",
            "Index rebuilds triggered by the update policy or refresh()",
        )
        if index is not None:
            self._index = index.prepare() if hasattr(index, "prepare") else index
        elif rebuilder is not None:
            self._index = rebuilder(graph, self._config)
        else:
            self._index = CSRPlusIndex(graph, self._config).prepare()
        self._pending_changes = 0
        self.rebuild_count = 0
        self._m_staleness.set(0)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The current (post-updates) graph."""
        return self._graph

    @property
    def index(self):
        """The last built index (may lag the graph; see ``staleness``)."""
        return self._index

    @property
    def staleness(self) -> int:
        """Number of edge changes not yet reflected in the index."""
        return self._pending_changes

    @property
    def is_fresh(self) -> bool:
        return self._pending_changes == 0

    # ------------------------------------------------------------------
    def update_edges(
        self,
        added: Sequence[Tuple[int, int]] = (),
        removed: Sequence[Tuple[int, int]] = (),
    ) -> None:
        """Apply edge changes; rebuild per the policy."""
        added = list(added)
        removed = list(removed)
        if not added and not removed:
            return
        self._graph = self._graph.with_edges_added(added).with_edges_removed(removed)
        # staleness counts *requested* changes — a conservative upper
        # bound (duplicate adds / missing removals still age the index
        # from the caller's perspective)
        self._pending_changes += len(added) + len(removed)
        self._m_staleness.set(self._pending_changes)
        if self.policy == "immediate":
            self.refresh()
        elif self.policy == "batch" and self._pending_changes >= self.batch_size:
            self.refresh()

    def refresh(self) -> None:
        """Rebuild the index against the current graph."""
        if self._pending_changes == 0:
            return
        with self._tracer.span(
            "dynamic.rebuild",
            policy=self.policy,
            staleness=self._pending_changes,
            rebuilds=self.rebuild_count,
        ):
            if self._rebuilder is not None:
                self._index = self._rebuilder(self._graph, self._config)
            else:
                self._index = CSRPlusIndex(self._graph, self._config).prepare()
        self._pending_changes = 0
        self.rebuild_count += 1
        self._m_rebuilds.inc()
        self._m_staleness.set(0)

    # ------------------------------------------------------------------
    # query surface (served from the last built index)
    # ------------------------------------------------------------------
    def query(self, queries) -> np.ndarray:
        """``[S]_{*,Q}`` from the last built index (possibly stale)."""
        return self._index.query(queries)

    def single_source(self, query: int) -> np.ndarray:
        return self._index.single_source(query)

    def top_k(self, query: int, k: int) -> np.ndarray:
        return self._index.top_k(query, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicCSRPlus(policy={self.policy!r}, staleness="
            f"{self._pending_changes}, rebuilds={self.rebuild_count})"
        )
