"""Maintaining a CSR+ index over an evolving graph.

The paper targets static graphs and cites dynamic CoSimRank [14] as the
evolving-graph line of work.  For CSR+ itself the natural production
pattern — used by search systems that batch index refreshes — is a
*rebuild policy*: queries are served from the last built index while
edge updates accumulate, and the index is rebuilt (one truncated SVD)
according to a policy.  :class:`DynamicCSRPlus` implements that
pattern:

* ``policy="immediate"`` — rebuild on every update batch (always
  fresh, costs one SVD per batch);
* ``policy="batch"`` — rebuild after ``batch_size`` accumulated edge
  changes (bounded staleness, amortised SVD cost);
* ``policy="manual"`` — rebuild only on :meth:`refresh` (caller-managed).

For *exact* per-query dynamics, use
:class:`repro.baselines.fcosim.FCoSimEngine` instead — it re-verifies
cached columns against a hop-bounded reachability argument.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["DynamicCSRPlus"]

_POLICIES = ("immediate", "batch", "manual")


class DynamicCSRPlus:
    """A CSR+ index plus an update log and a rebuild policy.

    Parameters
    ----------
    graph:
        Initial graph.
    config:
        Index configuration (or keyword overrides, as for
        :class:`CSRPlusIndex`).
    policy:
        One of ``"immediate"``, ``"batch"``, ``"manual"``.
    batch_size:
        Edge-change threshold for the ``"batch"`` policy.
    """

    def __init__(
        self,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        policy: str = "batch",
        batch_size: int = 100,
        **overrides,
    ):
        if policy not in _POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        if batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self._config = (config or CSRPlusConfig()).with_overrides(**overrides)
        self.policy = policy
        self.batch_size = int(batch_size)
        self._graph = graph
        self._index = CSRPlusIndex(graph, self._config).prepare()
        self._pending_changes = 0
        self.rebuild_count = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The current (post-updates) graph."""
        return self._graph

    @property
    def index(self) -> CSRPlusIndex:
        """The last built index (may lag the graph; see ``staleness``)."""
        return self._index

    @property
    def staleness(self) -> int:
        """Number of edge changes not yet reflected in the index."""
        return self._pending_changes

    @property
    def is_fresh(self) -> bool:
        return self._pending_changes == 0

    # ------------------------------------------------------------------
    def update_edges(
        self,
        added: Sequence[Tuple[int, int]] = (),
        removed: Sequence[Tuple[int, int]] = (),
    ) -> None:
        """Apply edge changes; rebuild per the policy."""
        added = list(added)
        removed = list(removed)
        if not added and not removed:
            return
        self._graph = self._graph.with_edges_added(added).with_edges_removed(removed)
        # staleness counts *requested* changes — a conservative upper
        # bound (duplicate adds / missing removals still age the index
        # from the caller's perspective)
        self._pending_changes += len(added) + len(removed)
        if self.policy == "immediate":
            self.refresh()
        elif self.policy == "batch" and self._pending_changes >= self.batch_size:
            self.refresh()

    def refresh(self) -> None:
        """Rebuild the index against the current graph."""
        if self._pending_changes == 0:
            return
        self._index = CSRPlusIndex(self._graph, self._config).prepare()
        self._pending_changes = 0
        self.rebuild_count += 1

    # ------------------------------------------------------------------
    # query surface (served from the last built index)
    # ------------------------------------------------------------------
    def query(self, queries) -> np.ndarray:
        """``[S]_{*,Q}`` from the last built index (possibly stale)."""
        return self._index.query(queries)

    def single_source(self, query: int) -> np.ndarray:
        return self._index.single_source(query)

    def top_k(self, query: int, k: int) -> np.ndarray:
        return self._index.top_k(query, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicCSRPlus(policy={self.policy!r}, staleness="
            f"{self._pending_changes}, rebuilds={self.rebuild_count})"
        )
