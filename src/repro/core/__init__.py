"""CSR+ core: the paper's primary contribution."""

from repro.core.base import SimilarityEngine, normalize_queries
from repro.core.config import (
    DEFAULT_DAMPING,
    DEFAULT_EPSILON,
    DEFAULT_RANK,
    QUERY_MODES,
    CSRPlusConfig,
)
from repro.core.csr_plus import (
    cosimrank_all_pairs,
    cosimrank_multi_source,
    cosimrank_single_pair,
    cosimrank_single_source,
    cosimrank_top_k,
)
from repro.core.dynamic import DynamicCSRPlus
from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.core.iterations import (
    baseline_iterations_for_rank,
    fixed_point_iterations,
    squaring_iterations,
    truncation_error_bound,
)
from repro.core.memory import MemoryMeter, array_nbytes, nbytes_of, sparse_nbytes
from repro.core.topk import TopKResult, top_k_blockwise, top_k_pruned
from repro.core.tuning import estimate_rank_error, singular_value_profile, suggest_rank

__all__ = [
    "CSRPlusIndex",
    "DynamicCSRPlus",
    "CSRPlusConfig",
    "SimilarityEngine",
    "normalize_queries",
    "cosimrank_multi_source",
    "cosimrank_single_source",
    "cosimrank_single_pair",
    "cosimrank_all_pairs",
    "cosimrank_top_k",
    "MemoryMeter",
    "array_nbytes",
    "sparse_nbytes",
    "nbytes_of",
    "squaring_iterations",
    "fixed_point_iterations",
    "baseline_iterations_for_rank",
    "truncation_error_bound",
    "DEFAULT_DAMPING",
    "DEFAULT_RANK",
    "DEFAULT_EPSILON",
    "QUERY_MODES",
    "batched_query_atol",
    "singular_value_profile",
    "estimate_rank_error",
    "suggest_rank",
    "TopKResult",
    "top_k_pruned",
    "top_k_blockwise",
]
