"""Configuration for CSR+ and the other CoSimRank engines."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import InvalidParameterError

__all__ = [
    "CSRPlusConfig",
    "DEFAULT_DAMPING",
    "DEFAULT_RANK",
    "DEFAULT_EPSILON",
    "QUERY_MODES",
]

#: Paper defaults (§4.1 "Parameters"): c = 0.6, r = 5, epsilon = 1e-5.
DEFAULT_DAMPING = 0.6
DEFAULT_RANK = 5
DEFAULT_EPSILON = 1e-5

_SOLVERS = ("squaring", "fixed_point", "direct")
_DANGLING = ("zero", "uniform")

#: Online evaluation strategies for ``[S]_{*,Q}`` (docs/algorithm.md §7):
#: ``"exact"`` evaluates one GEMV per seed (bit-exact, batch-independent
#: columns — the serving cache's bit-exactness contract), ``"batched"``
#: evaluates whole seed batches as a single ``Z @ (U[Q,:])^T`` GEMM
#: (faster at large ``|Q|``, columns tolerance-equal to exact).
QUERY_MODES = ("exact", "batched")


@dataclass(frozen=True)
class CSRPlusConfig:
    """Hyper-parameters of the CSR+ index.

    Attributes
    ----------
    damping:
        CoSimRank damping factor ``c`` in (0, 1); paper default 0.6.
    rank:
        Target low rank ``r`` of the truncated SVD; paper default 5.
    epsilon:
        Desired accuracy of the Stein-equation solve (Algorithm 1's
        ``eps``); the *low-rank* approximation error is governed by
        ``rank``, not by this.
    solver:
        ``"squaring"`` (Algorithm 1 lines 4–5, default), ``"fixed_point"``,
        or ``"direct"`` — all agree to within ``epsilon``.
    dangling:
        Policy for in-degree-0 columns of the transition matrix; the
        paper semantics is ``"zero"``.
    svd_seed:
        Seed of the deterministic ARPACK start vector.
    memory_budget_bytes:
        Optional hard memory budget passed to the engine's meter.
    dtype:
        Storage dtype of the large factors (``"float64"`` default, or
        ``"float32"`` to halve the index memory at ~1e-5-level extra
        error; the SVD and Stein solve always run in float64).
    query_mode:
        Default online evaluation strategy (one of :data:`QUERY_MODES`).
        ``"exact"`` (default) evaluates one GEMV per seed, keeping every
        column a bit-exact pure function of its seed; ``"batched"``
        evaluates each batch as a single GEMM — ≥2x the column
        throughput at ``|Q| >= 64`` in exchange for a documented
        tolerance-equivalence contract
        (:func:`~repro.core.index.batched_query_atol`).
    """

    damping: float = DEFAULT_DAMPING
    rank: int = DEFAULT_RANK
    epsilon: float = DEFAULT_EPSILON
    solver: str = "squaring"
    dangling: str = "zero"
    svd_seed: int = 0
    memory_budget_bytes: Optional[int] = None
    dtype: str = "float64"
    query_mode: str = "exact"

    def __post_init__(self) -> None:
        if not (0.0 < self.damping < 1.0):
            raise InvalidParameterError(
                f"damping must be in (0, 1), got {self.damping}"
            )
        if self.rank < 1:
            raise InvalidParameterError(f"rank must be >= 1, got {self.rank}")
        if not (0.0 < self.epsilon < 1.0):
            raise InvalidParameterError(
                f"epsilon must be in (0, 1), got {self.epsilon}"
            )
        if self.solver not in _SOLVERS:
            raise InvalidParameterError(
                f"solver must be one of {_SOLVERS}, got {self.solver!r}"
            )
        if self.dangling not in _DANGLING:
            raise InvalidParameterError(
                f"dangling must be one of {_DANGLING}, got {self.dangling!r}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise InvalidParameterError(
                f"memory_budget_bytes must be positive or None, "
                f"got {self.memory_budget_bytes}"
            )
        if self.dtype not in ("float32", "float64"):
            raise InvalidParameterError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        if self.query_mode not in QUERY_MODES:
            raise InvalidParameterError(
                f"query_mode must be one of {QUERY_MODES}, "
                f"got {self.query_mode!r}"
            )

    def with_overrides(self, **overrides) -> "CSRPlusConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)
