"""CSR+ — Algorithm 1 of the paper.

:class:`CSRPlusIndex` implements the full pipeline:

Precomputation (offline, graph-only)
    1. ``Q``  — column-normalised adjacency (sparse, ``O(m)``);
    2. ``U, Sigma, V`` — rank-``r`` truncated SVD of ``Q`` (``O(mr + r^3)``);
    3. ``H = V^T U Sigma`` — the ``r x r`` subspace map (``O(nr^2)``);
    4. ``P`` — solution of ``P = c H P H^T + I_r`` by repeated squaring
       (lines 4–5, ``O(r^3)`` per step, ``O(log2 log_c eps)`` steps);
    5. ``Z = U (Sigma P Sigma)`` — memoised ``n x r`` query factor.

Online multi-source query
    ``[S]_{*,Q} = [I_n]_{*,Q} + c * Z @ (U[Q, :])^T``     (Theorem 3.5)

Two evaluation strategies implement that formula (``query_mode``):

* ``"exact"`` (default) — one GEMV-shaped product per seed via the
  partition-stable :func:`exact_column_product` kernel, making every
  column a bit-exact pure function of its seed alone — and every
  *entry* a pure function of its own ``Z`` row — the contracts the
  serving cache's bit-exactness and the sharded backend's row-block
  concatenation (:mod:`repro.sharding`) rely on;
* ``"batched"`` — the whole batch as one GEMM with the identity
  scattered in afterwards; much higher column throughput at large
  ``|Q|``, with columns within :func:`batched_query_atol` of exact.

Total: ``O(r(m + n(r + |Q|)))`` time and ``O(rn)`` memory (Theorem 3.7),
with output identical to the CSR-NI baseline at equal rank
(Theorems 3.1–3.5 are exact identities, not approximations).
"""

from __future__ import annotations

import io
import os
from typing import Optional, Union

import numpy as np

from repro.core.base import QueryLike, SimilarityEngine
from repro.core.config import QUERY_MODES, CSRPlusConfig
from repro.core.memory import sparse_nbytes
from repro.errors import InvalidParameterError, NotPreparedError, QueryError
from repro.graphs.digraph import DiGraph
from repro.linalg.stein import (
    solve_stein_direct,
    solve_stein_fixed_point,
    solve_stein_squaring,
)
from repro.linalg.svd import truncated_svd

__all__ = ["CSRPlusIndex", "batched_query_atol", "exact_column_product"]


def exact_column_product(z_rows: np.ndarray, u_row: np.ndarray) -> np.ndarray:
    """The canonical exact kernel: ``z_rows @ u_row`` with fixed-order sums.

    ``np.einsum`` with ``optimize=False`` reduces each output row with
    one sequential left-to-right accumulation, so the result for row
    ``x`` depends only on ``z_rows[x]`` and ``u_row`` — never on which
    other rows share the call.  BLAS GEMV does not have this property:
    its blocked kernels produce different bits for 1–3-row slices than
    for the full product, so a row-partitioned evaluation could not
    reproduce the monolithic bytes.  Partition stability is what lets
    :class:`~repro.sharding.ShardedIndex` concatenate per-shard results
    into an answer ``np.array_equal`` to the monolithic one, for *any*
    shard layout (docs/sharding.md).
    """
    return np.einsum("ij,j->i", z_rows, u_row)


def batched_query_atol(rank: int, dtype) -> float:
    """Tolerance bound between batched-GEMM and per-seed-GEMV columns.

    A batched ``Z @ (U[Q,:])^T`` product and the per-seed GEMV compute
    the same length-``r`` inner products in different summation orders,
    so each entry can differ by at most ~``r`` accumulated roundings of
    values bounded by ``||Z_x|| * ||U_q|| <= 1/(1-c)``.  The bound used
    throughout (tests, serving contract, docs) is

        ``atol = 64 * r * eps(dtype)``

    — a ~20x safety factor over the worst case observed in practice.
    """
    return 64.0 * max(1, int(rank)) * float(np.finfo(np.dtype(dtype)).eps)


class CSRPlusIndex(SimilarityEngine):
    """Multi-source CoSimRank index (the paper's CSR+ algorithm).

    Parameters
    ----------
    graph:
        Directed graph to index.
    config:
        A :class:`CSRPlusConfig`; keyword overrides may be passed
        instead (or additionally), e.g. ``CSRPlusIndex(g, rank=10)``.

    Examples
    --------
    >>> from repro.graphs import ring
    >>> index = CSRPlusIndex(ring(8), rank=4).prepare()
    >>> block = index.query([0, 3])          # n x 2 similarity block
    >>> float(block[0, 0]) >= 1.0            # diagonal dominates
    True
    """

    name = "CSR+"

    def __init__(
        self,
        graph: DiGraph,
        config: Optional[CSRPlusConfig] = None,
        **overrides,
    ):
        config = (config or CSRPlusConfig()).with_overrides(**overrides)
        max_rank = max(1, graph.num_nodes)
        if config.rank > max_rank:
            raise InvalidParameterError(
                f"rank {config.rank} exceeds the number of nodes {graph.num_nodes}"
            )
        super().__init__(
            graph,
            damping=config.damping,
            memory_budget_bytes=config.memory_budget_bytes,
            dangling=config.dangling,
        )
        self.config = config
        self._u: Optional[np.ndarray] = None
        self._sigma: Optional[np.ndarray] = None
        self._h: Optional[np.ndarray] = None
        self._p: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._z_norms: Optional[np.ndarray] = None
        self.stein_iterations: int = 0

    # ------------------------------------------------------------------
    # offline phase (Algorithm 1, lines 1-6)
    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        cfg = self.config
        q_matrix = self.transition()  # line 1 (charged by base class)

        # line 2: the paper's factors satisfy Q^T = U Sigma V^T (so that
        # S - I = c Q^T S Q is U-flanked, as Theorem 3.5 requires; see the
        # worked Example 3.6, where row b of the printed U is non-zero even
        # though row b of Q vanishes).  We decompose Q = U_q Sigma V_q^T and
        # take U := V_q, V := U_q.
        with self._stage("svd", rank=cfg.rank):
            svd = truncated_svd(q_matrix, cfg.rank, seed=cfg.svd_seed)
        u_factor, v_factor = svd.v, svd.u
        self.memory.charge("precompute/U", u_factor.nbytes)
        self.memory.charge("precompute/V", v_factor.nbytes)
        self.memory.charge("precompute/Sigma", svd.sigma.nbytes)

        # line 3: H = V^T U Sigma  (r x r)
        h_matrix = (v_factor.T @ u_factor) * svd.sigma[np.newaxis, :]
        self.memory.charge("precompute/H", h_matrix.nbytes)

        # lines 4-5: P via the configured Stein solver
        with self._stage("stein", solver=cfg.solver) as stein_span:
            if cfg.solver == "squaring":
                p_matrix, iterations = solve_stein_squaring(
                    h_matrix, cfg.damping, cfg.epsilon
                )
            elif cfg.solver == "fixed_point":
                p_matrix, iterations = solve_stein_fixed_point(
                    h_matrix, cfg.damping, cfg.epsilon
                )
            else:  # "direct"
                p_matrix, iterations = solve_stein_direct(h_matrix, cfg.damping), 0
            stein_span.set_attribute("iterations", iterations)
        self.stein_iterations = iterations
        self.memory.charge("precompute/P", p_matrix.nbytes)

        # line 6: Z = U (Sigma P Sigma)  — n x r, the only large factor kept
        with self._stage("assemble"):
            sps = (svd.sigma[:, np.newaxis] * p_matrix) * svd.sigma[np.newaxis, :]
            z_matrix = u_factor @ sps

            if cfg.dtype == "float32":
                # halve the retained factors; all computation above stayed
                # in float64 for accuracy
                u_factor = u_factor.astype(np.float32)
                z_matrix = z_matrix.astype(np.float32)
                self.memory.charge("precompute/U", u_factor.nbytes)
        self.memory.charge("precompute/Z", z_matrix.nbytes)

        self._u = u_factor
        self._sigma = svd.sigma
        self._h = h_matrix  # damping-independent; kept for re-damping
        self._p = p_matrix
        self._z = z_matrix
        # V is only needed to form H; drop it to realise the O(rn) bound.
        self.memory.release("precompute/V")

    # ------------------------------------------------------------------
    # online phase (Algorithm 1, line 7)
    # ------------------------------------------------------------------
    def query_columns(self, seeds, mode: Optional[str] = None) -> np.ndarray:
        """Similarity columns ``[S]_{*, seeds[j]}``, per-seed or batched.

        Column ``j`` is ``c * Z @ U[seeds[j], :]`` with ``1`` added at
        row ``seeds[j]`` — exactly ``[S]_{*, seeds[j]}`` by Theorem 3.5,
        which shows every output column depends only on its own seed.

        ``mode="exact"`` is the *canonical* evaluation of a column: each
        one is a separate :func:`exact_column_product` call, never part
        of a batched GEMM.  BLAS GEMM results for one column vary
        bitwise with the batch width (a 1-column product dispatches to
        GEMV, and blocking differs with shape), so a batched product
        would make a column's bits depend on which other seeds happened
        to share the batch.  Evaluating per column makes the result a
        pure function of the seed alone, which is what lets the serving
        layer (:mod:`repro.serving`) cache and reuse columns with
        bit-exact results for every cache state; the kernel's
        *partition stability* additionally makes each entry a pure
        function of its own ``Z`` row, which is what lets a sharded
        backend (:mod:`repro.sharding`) concatenate per-shard row
        blocks into the same bytes.  :meth:`query` routes through this
        same primitive, so cached and direct answers are
        ``np.array_equal``.

        ``mode="batched"`` evaluates the whole batch as one
        ``c * Z @ (U[seeds,:])^T`` GEMM with the identity scattered in —
        the literal Theorem 3.5 formula.  Far higher column throughput
        at large ``len(seeds)``, but a column's bits now depend on its
        batch-mates; every entry stays within
        ``batched_query_atol(rank, dtype)`` of the exact evaluation.

        Parameters
        ----------
        seeds:
            Integer node ids; may be empty.  Duplicates are honoured
            (one column per entry, in order).
        mode:
            ``"exact"``, ``"batched"``, or ``None`` (default) to use
            ``self.config.query_mode``.

        Returns
        -------
        ``n x len(seeds)`` array (Fortran order, one contiguous block
        per column) in the index dtype.
        """
        self._require_prepared()
        if self._z is None or self._u is None:
            raise NotPreparedError("CSR+ factors missing; prepare() did not run")
        if mode is None:
            mode = self.config.query_mode
        if mode not in QUERY_MODES:
            raise InvalidParameterError(
                f"query mode must be one of {QUERY_MODES}, got {mode!r}"
            )
        seed_ids = np.asarray(seeds, dtype=np.int64).ravel()
        n = self.num_nodes
        if seed_ids.size and (seed_ids.min() < 0 or seed_ids.max() >= n):
            raise QueryError(
                f"seed ids must be in [0, {n}), got range "
                f"[{seed_ids.min()}, {seed_ids.max()}]"
            )
        if mode == "batched":
            return self._query_columns_batched(seed_ids)
        out = np.empty((n, seed_ids.size), dtype=self._z.dtype, order="F")
        for j, seed in enumerate(seed_ids):
            column = self.damping * exact_column_product(
                self._z, self._u[int(seed), :]
            )
            column[seed] += 1.0
            out[:, j] = column
        return out

    def _query_columns_batched(self, seed_ids: np.ndarray) -> np.ndarray:
        """One GEMM for the whole batch (validated ids, factors present)."""
        n = self.num_nodes
        out = np.empty((n, seed_ids.size), dtype=self._z.dtype, order="F")
        if seed_ids.size:
            # U[seeds,:] is a |Q| x r gather (small); the n x |Q| product
            # lands straight in the Fortran-ordered output block.
            np.matmul(self._z, self._u[seed_ids, :].T, out=out)
            out *= self.damping
            out[seed_ids, np.arange(seed_ids.size)] += 1.0
        return out

    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        if self._z is None or self._u is None:
            raise NotPreparedError("CSR+ factors missing; prepare() did not run")
        n = self.num_nodes
        num_queries = query_ids.size
        self.memory.require(
            "query/S", n * num_queries * self._z.dtype.itemsize
        )

        # [S]_{*,Q} = [I_n]_{*,Q} + c * Z * (U[Q, :])^T, evaluated once
        # per distinct seed (per-seed GEMV or one GEMM, per the
        # configured query_mode) and scattered to duplicate positions.
        unique_ids, inverse = np.unique(query_ids, return_inverse=True)
        result = self.query_columns(unique_ids)
        if unique_ids.size != num_queries or not np.array_equal(
            unique_ids, query_ids
        ):
            result = result[:, inverse]
        self.memory.charge("query/S", result.nbytes)
        return result

    # ------------------------------------------------------------------
    # diagonal and normalised scores
    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """All self-similarities ``[S]_{x,x} = 1 + c <Z[x], U[x]>``.

        Computed in ``O(nr)`` without materialising any ``n x n`` block.
        Unlike SimRank, CoSimRank's diagonal is not constant — hubs with
        rich in-neighbourhoods score higher — which is why normalised
        comparisons (:meth:`query_normalized`) are useful downstream.
        """
        self._require_prepared()
        return 1.0 + self.damping * np.einsum("ij,ij->i", self._z, self._u)

    def query_normalized(self, queries: QueryLike) -> np.ndarray:
        """Cosine-normalised similarities ``S[x,q] / sqrt(S[x,x] S[q,q])``.

        Self-similarity becomes exactly 1 for every node, making scores
        comparable across hub and non-hub queries (the usual move when
        CoSimRank feeds a ranking application).
        """
        block = self.query(queries)
        diag = self.diagonal()
        from repro.core.base import normalize_queries

        query_ids = normalize_queries(queries, self.num_nodes)
        scale = np.sqrt(
            np.maximum(diag[:, np.newaxis], 1e-300)
            * np.maximum(diag[query_ids][np.newaxis, :], 1e-300)
        )
        return block / scale

    # ------------------------------------------------------------------
    # cheap re-damping (no new SVD)
    # ------------------------------------------------------------------
    def rebuild_for_damping(self, damping: float) -> "CSRPlusIndex":
        """A prepared index for a different damping factor, reusing the SVD.

        The expensive line of Algorithm 1 (the truncated SVD) does not
        depend on ``c``; only the ``r x r`` Stein solve and the ``n x r``
        ``Z`` build do.  This constructs the new index in
        ``O(r^3 + n r^2)`` instead of ``O(mr + ...)``, sharing the ``U``
        factor with this one.
        """
        self._require_prepared()
        if not (0.0 < damping < 1.0):
            raise InvalidParameterError(
                f"damping must be in (0, 1), got {damping}"
            )
        if self._h is None:
            raise NotPreparedError(
                "this index lacks the H factor (saved by an older version); "
                "rebuild it from the graph to enable re-damping"
            )
        sibling = CSRPlusIndex(
            self.graph, self.config.with_overrides(damping=damping)
        )
        cfg = sibling.config
        if cfg.solver == "squaring":
            p_matrix, iterations = solve_stein_squaring(
                self._h, damping, cfg.epsilon
            )
        elif cfg.solver == "fixed_point":
            p_matrix, iterations = solve_stein_fixed_point(
                self._h, damping, cfg.epsilon
            )
        else:
            p_matrix, iterations = solve_stein_direct(self._h, damping), 0
        sibling.stein_iterations = iterations
        sps = (self._sigma[:, np.newaxis] * p_matrix) * self._sigma[np.newaxis, :]
        # prepare()'s dtype policy: compute Z in float64, cast only the
        # retained factor.  Without the upcast a float32 index would
        # promote U @ sps to float64 and keep it — a sibling whose query
        # dtype (and ledger) diverges from a freshly prepared one.
        z_matrix = self._u.astype(np.float64, copy=False) @ sps
        if cfg.dtype == "float32":
            z_matrix = z_matrix.astype(np.float32)
        sibling._u = self._u  # shared, read-only
        sibling._sigma = self._sigma
        sibling._h = self._h
        sibling._p = p_matrix
        sibling._z = z_matrix
        sibling.memory.charge("precompute/U", self._u.nbytes)
        sibling.memory.charge("precompute/Sigma", self._sigma.nbytes)
        sibling.memory.charge("precompute/H", self._h.nbytes)
        sibling.memory.charge("precompute/P", p_matrix.nbytes)
        sibling.memory.charge("precompute/Z", sibling._z.nbytes)
        sibling._prepared = True
        return sibling

    def truncate_to_rank(self, rank: int) -> "CSRPlusIndex":
        """A prepared index at a *smaller* rank, reusing this SVD.

        The rank-``r'`` truncated SVD is exactly the first ``r'``
        columns of the rank-``r`` one, so downgrading never needs a new
        decomposition: slice ``U``/``Sigma``, re-derive ``H``, ``P`` and
        ``Z`` in ``O(r'^3 + n r'^2)``.  Useful for accuracy/cost sweeps
        (one SVD, many ranks) — the rank-tuning helpers and Table-3
        style studies are the intended callers.
        """
        self._require_prepared()
        if not (1 <= rank <= self.config.rank):
            raise InvalidParameterError(
                f"rank must be in [1, {self.config.rank}] "
                f"(the built rank), got {rank}"
            )
        if self._h is None:
            raise NotPreparedError(
                "this index lacks the H factor; rebuild it from the graph"
            )
        sibling = CSRPlusIndex(
            self.graph, self.config.with_overrides(rank=rank)
        )
        cfg = sibling.config
        u_small = np.ascontiguousarray(self._u[:, :rank])
        sigma_small = self._sigma[:rank].copy()
        # H = V^T U Sigma truncates to its leading principal block.
        h_small = self._h[:rank, :rank].copy()
        if cfg.solver == "squaring":
            p_small, iterations = solve_stein_squaring(
                h_small, cfg.damping, cfg.epsilon
            )
        elif cfg.solver == "fixed_point":
            p_small, iterations = solve_stein_fixed_point(
                h_small, cfg.damping, cfg.epsilon
            )
        else:
            p_small, iterations = solve_stein_direct(h_small, cfg.damping), 0
        sibling.stein_iterations = iterations
        sps = (sigma_small[:, np.newaxis] * p_small) * sigma_small[np.newaxis, :]
        z_small = u_small.astype(np.float64, copy=False) @ sps
        if cfg.dtype == "float32":
            u_small = u_small.astype(np.float32, copy=False)
            z_small = z_small.astype(np.float32)
        sibling._u = u_small
        sibling._sigma = sigma_small
        sibling._h = h_small
        sibling._p = p_small
        sibling._z = z_small
        sibling.memory.charge("precompute/U", u_small.nbytes)
        sibling.memory.charge("precompute/Sigma", sigma_small.nbytes)
        sibling.memory.charge("precompute/H", h_small.nbytes)
        sibling.memory.charge("precompute/P", p_small.nbytes)
        sibling.memory.charge("precompute/Z", sibling._z.nbytes)
        sibling._prepared = True
        return sibling

    # ------------------------------------------------------------------
    # memory-bounded streaming queries
    # ------------------------------------------------------------------
    def query_chunked(self, queries, chunk_size: int = 1024):
        """Yield ``(query_ids_chunk, block_chunk)`` pairs.

        For very large query sets the full ``n x |Q|`` result may not
        fit in memory even though the index itself is only ``O(rn)``;
        this generator bounds the live result to ``n x chunk_size``.
        """
        if chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.prepare()
        from repro.core.base import normalize_queries

        query_ids = normalize_queries(queries, self.num_nodes)
        for start in range(0, query_ids.size, chunk_size):
            chunk = query_ids[start : start + chunk_size]
            yield chunk, self.query(chunk)

    def top_k_multi(self, queries, k: int, chunk_size: int = 1024) -> np.ndarray:
        """Top-``k`` similar nodes per query (self excluded), streamed.

        Returns a ``|Q| x k`` int array; row ``j`` holds the ids most
        similar to ``queries[j]`` in descending order (ties broken by
        ascending id).  Processes queries in chunks so the peak result
        memory is ``O(n * chunk_size)`` regardless of ``|Q|``.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        rows = []
        node_ids = np.arange(self.num_nodes)
        for chunk, block in self.query_chunked(queries, chunk_size):
            for j, query in enumerate(chunk):
                scores = block[:, j]
                order = np.lexsort((node_ids, -scores))
                order = order[order != int(query)]
                rows.append(order[: min(k, order.size)])
        width = min(k, max(0, self.num_nodes - 1))
        return np.vstack([row[:width] for row in rows]).astype(np.int64)

    # ------------------------------------------------------------------
    # accessors for tests / downstream tools
    # ------------------------------------------------------------------
    @property
    def factors(self):
        """The retained factors ``(U, sigma, P, Z)`` (after prepare)."""
        self._require_prepared()
        return self._u, self._sigma, self._p, self._z

    def z_row_norms(self) -> np.ndarray:
        """Per-row ``||Z[x]||_2`` in float64, computed once and cached.

        These are the Cauchy–Schwarz score bounds behind the pruned
        top-k kernels (:mod:`repro.core.topk`): by Eq. (12) the
        off-diagonal score satisfies ``|S[x,q] - [x=q]| <= c * ||Z[x]||
        * ||U[q]||``.  The returned array is read-only and shared
        between calls.
        """
        self._require_prepared()
        if self._z is None:
            raise NotPreparedError("CSR+ factors missing; prepare() did not run")
        if self._z_norms is None:
            norms = np.linalg.norm(
                self._z.astype(np.float64, copy=False), axis=1
            )
            norms.flags.writeable = False
            self._z_norms = norms
        return self._z_norms

    @property
    def rank(self) -> int:
        return self.config.rank

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the retained query factors (after prepare).

        Part of the backend surface the serving layer relies on
        (alongside :meth:`query_columns`, ``num_nodes`` and ``config``)
        so that backends without a monolithic ``Z`` — e.g.
        :class:`~repro.sharding.ShardedIndex` — can stand in for this
        class.
        """
        self._require_prepared()
        if self._z is None:
            raise NotPreparedError("CSR+ factors missing; prepare() did not run")
        return self._z.dtype

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Serialise the prepared index to an ``.npz`` file.

        Only the query-time factors (``U``, ``Z``) plus metadata are
        stored — exactly the ``O(rn)`` state of Theorem 3.7.
        """
        self._require_prepared()
        np.savez_compressed(
            os.fspath(path),
            u=self._u,
            z=self._z,
            sigma=self._sigma,
            h=self._h,
            p=self._p,
            num_nodes=np.int64(self.num_nodes),
            damping=np.float64(self.damping),
            rank=np.int64(self.config.rank),
            epsilon=np.float64(self.config.epsilon),
            stein_iterations=np.int64(self.stein_iterations),
        )

    @classmethod
    def load(
        cls, path: Union[str, "os.PathLike[str]"], graph: DiGraph
    ) -> "CSRPlusIndex":
        """Load an index saved with :meth:`save` for the same graph."""
        with np.load(os.fspath(path)) as data:
            num_nodes = int(data["num_nodes"])
            if num_nodes != graph.num_nodes:
                raise InvalidParameterError(
                    f"saved index is for a graph with {num_nodes} nodes, "
                    f"got one with {graph.num_nodes}"
                )
            config = CSRPlusConfig(
                damping=float(data["damping"]),
                rank=int(data["rank"]),
                epsilon=float(data["epsilon"]),
                dtype=str(data["u"].dtype),
            )
            index = cls(graph, config)
            index._u = data["u"]
            index._z = data["z"]
            index._sigma = data["sigma"]
            index._h = data["h"] if "h" in data else None
            index._p = data["p"]
            if "stein_iterations" in data:  # absent in pre-1.x files
                index.stein_iterations = int(data["stein_iterations"])
        index.memory.charge("precompute/U", index._u.nbytes)
        index.memory.charge("precompute/Z", index._z.nbytes)
        index.memory.charge("precompute/Sigma", index._sigma.nbytes)
        index.memory.charge("precompute/P", index._p.nbytes)
        if index._h is not None:
            index.memory.charge("precompute/H", index._h.nbytes)
        index._prepared = True
        return index
