"""Rank-selection tooling.

The paper fixes ``r = 5`` by default and studies accuracy-vs-rank in
Table 3; a library user instead asks "what rank do I need for *my*
error target?".  These helpers answer that without ever computing the
exact similarity (which is infeasible on large graphs):

* :func:`singular_value_profile` — the decay of ``Q``'s spectrum, the
  raw signal behind the low-rank error;
* :func:`estimate_rank_error` — an AvgDiff estimate for a candidate
  rank, using a higher-rank CSR+ index as the reference on a sample of
  queries (the same trick as cross-validating against a finer model);
* :func:`suggest_rank` — the smallest candidate rank whose estimated
  error meets a target.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.graphs.transition import transition_matrix
from repro.linalg.svd import truncated_svd
from repro.metrics.accuracy import avg_diff

__all__ = ["singular_value_profile", "estimate_rank_error", "suggest_rank"]


def singular_value_profile(graph: DiGraph, max_rank: int, seed: int = 0) -> np.ndarray:
    """Top ``max_rank`` singular values of the transition matrix.

    A fast-decaying profile means small ranks suffice; a flat profile
    warns that CoSimRank on this graph has no good low-rank structure.
    """
    if max_rank < 1:
        raise InvalidParameterError(f"max_rank must be >= 1, got {max_rank}")
    max_rank = min(max_rank, max(1, graph.num_nodes))
    q_matrix = transition_matrix(graph)
    return truncated_svd(q_matrix, max_rank, seed=seed).sigma


def estimate_rank_error(
    graph: DiGraph,
    rank: int,
    reference_rank: Optional[int] = None,
    num_sample_queries: int = 50,
    damping: float = 0.6,
    seed: int = 0,
) -> float:
    """Estimated AvgDiff of rank-``rank`` CSR+ on this graph.

    The reference is a rank-``reference_rank`` index (default
    ``min(4 * rank, n)``); since the low-rank error decreases in rank,
    the gap to a much finer model estimates the gap to the truth
    without ever running the exact ``O(n^2)`` solver.
    """
    n = graph.num_nodes
    if rank < 1 or rank > n:
        raise InvalidParameterError(f"rank must be in [1, {n}], got {rank}")
    if reference_rank is None:
        reference_rank = min(4 * rank, n)
    if reference_rank <= rank:
        raise InvalidParameterError(
            f"reference_rank ({reference_rank}) must exceed rank ({rank})"
        )
    queries = sample_queries(graph, min(num_sample_queries, n), seed=seed)
    candidate = CSRPlusIndex(
        graph, CSRPlusConfig(damping=damping, rank=rank)
    ).query(queries)
    reference = CSRPlusIndex(
        graph, CSRPlusConfig(damping=damping, rank=reference_rank)
    ).query(queries)
    return avg_diff(candidate, reference)


def suggest_rank(
    graph: DiGraph,
    target_error: float,
    candidates: Sequence[int] = (5, 10, 25, 50, 100),
    num_sample_queries: int = 50,
    damping: float = 0.6,
    seed: int = 0,
) -> int:
    """Smallest candidate rank whose estimated AvgDiff meets the target.

    Returns the largest candidate if none meets it (callers can check
    the achieved error with :func:`estimate_rank_error`).
    """
    if target_error <= 0:
        raise InvalidParameterError(
            f"target_error must be positive, got {target_error}"
        )
    usable = sorted({int(r) for r in candidates if 1 <= r < graph.num_nodes})
    if not usable:
        raise InvalidParameterError("no usable candidate ranks for this graph")
    for rank in usable:
        error = estimate_rank_error(
            graph,
            rank,
            num_sample_queries=num_sample_queries,
            damping=damping,
            seed=seed,
        )
        if error <= target_error:
            return rank
    return usable[-1]
