"""Common interface of every CoSimRank engine in this package.

CSR+ and all baselines implement the same two-phase contract the paper
evaluates:

* :meth:`SimilarityEngine.prepare` — the offline phase (anything that
  depends only on the graph);
* :meth:`SimilarityEngine.query` — the online multi-source phase,
  returning the ``n x |Q|`` block ``[S]_{*,Q}``.

Both phases are timed by the engine itself (``prepare_seconds``,
``last_query_seconds``) and charge their materialised arrays to a
shared :class:`~repro.core.memory.MemoryMeter`, so the experiment
harness treats every engine uniformly.

Every engine is also observable for free: :meth:`prepare` and
:meth:`query` emit ``prepare`` / ``query`` spans and per-engine latency
histograms through :mod:`repro.obs`, and subclasses mark their interior
stages with :meth:`SimilarityEngine._stage` to appear in the same span
tree (``prepare.svd``, ``prepare.stein``, ...).
"""

from __future__ import annotations

import logging
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Optional, Sequence, Union

import numpy as np
from scipy import sparse

import repro.obs as obs
from repro.core.memory import MemoryMeter, publish_peak, sparse_nbytes
from repro.errors import (
    InvalidParameterError,
    NotPreparedError,
    QueryError,
    TimeBudgetExceeded,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.transition import transition_matrix

__all__ = ["SimilarityEngine", "normalize_queries"]

logger = logging.getLogger("repro.engines")

QueryLike = Union[int, Sequence[int], np.ndarray]


def normalize_queries(queries: QueryLike, num_nodes: int) -> np.ndarray:
    """Validate a query specification and return it as an int64 array.

    Accepts a single node id or a sequence of ids.  Duplicates are
    allowed (the result has one column per requested query, in order).
    """
    if np.isscalar(queries):
        arr = np.asarray([queries], dtype=np.int64)
    else:
        arr = np.asarray(list(np.atleast_1d(queries)), dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise QueryError("query set must contain at least one node id")
    if arr.min() < 0 or arr.max() >= num_nodes:
        raise QueryError(
            f"query ids must be in [0, {num_nodes}), got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr


class SimilarityEngine(ABC):
    """Abstract two-phase CoSimRank engine.

    Parameters
    ----------
    graph:
        The directed graph to index.
    damping:
        CoSimRank damping factor ``c``.
    memory_budget_bytes:
        Optional hard budget for the engine's :class:`MemoryMeter`.
    dangling:
        Dangling-column policy for the transition matrix.
    """

    #: Short display name, set by subclasses (e.g. ``"CSR+"``).
    name: str = "engine"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        if not (0.0 < damping < 1.0):
            raise InvalidParameterError(f"damping must be in (0, 1), got {damping}")
        self.graph = graph
        self.damping = float(damping)
        self.memory = MemoryMeter(memory_budget_bytes)
        self._dangling = dangling
        self._transition: Optional[sparse.csr_matrix] = None
        self._prepared = False
        self.prepare_seconds: float = 0.0
        self.last_query_seconds: float = 0.0
        #: Optional cooperative deadline per phase; engines with long
        #: loops poll :meth:`check_time_budget` between iterations.
        self.time_budget_seconds: Optional[float] = None
        self._phase_started_at: float = 0.0
        self._phase_name: str = ""

    # ------------------------------------------------------------------
    # shared infrastructure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def is_prepared(self) -> bool:
        return self._prepared

    def transition(self) -> sparse.csr_matrix:
        """The column-normalised transition matrix ``Q`` (cached)."""
        if self._transition is None:
            self._transition = transition_matrix(self.graph, dangling=self._dangling)
            self.memory.charge("precompute/Q", sparse_nbytes(self._transition))
        return self._transition

    def prepare(self) -> "SimilarityEngine":
        """Run the offline phase (idempotent).  Returns ``self``."""
        if self._prepared:
            return self
        start = time.perf_counter()
        self._phase_started_at = start
        self._phase_name = "prepare"
        with obs.span(
            "prepare", engine=self.name, n=self.num_nodes,
            m=self.graph.num_edges,
        ):
            self._prepare_impl()
        self.prepare_seconds = time.perf_counter() - start
        if obs.enabled():
            # prepare runs minutes at bench scale; the request-latency
            # buckets top out at 10s and would park every observation
            # in +Inf, degenerating any quantile estimate
            obs.get_registry().histogram(
                "csrplus_prepare_seconds",
                "Offline (prepare) phase wall time per engine",
                labels={"engine": self.name},
                buckets=obs.DEFAULT_PREPARE_BUCKETS,
            ).observe(self.prepare_seconds)
            publish_peak(self.memory, self.name)
        self._prepared = True
        logger.debug(
            "%s prepared: n=%d m=%d in %.4fs (peak %.1f MB accounted)",
            self.name,
            self.num_nodes,
            self.graph.num_edges,
            self.prepare_seconds,
            self.memory.peak_bytes / 1e6,
        )
        return self

    def check_time_budget(self) -> None:
        """Raise :class:`TimeBudgetExceeded` if the phase deadline passed.

        A no-op when ``time_budget_seconds`` is ``None``.  Long-running
        engines poll this between loop iterations so the experiment
        harness can bound runaway baselines cooperatively.
        """
        if self.time_budget_seconds is None:
            return
        elapsed = time.perf_counter() - self._phase_started_at
        if elapsed > self.time_budget_seconds:
            raise TimeBudgetExceeded(
                elapsed, self.time_budget_seconds, what=self._phase_name
            )

    @contextmanager
    def _stage(self, stage: str, **attributes):
        """Span + cumulative metric for one named stage of the current phase.

        Subclasses wrap their expensive blocks (``with
        self._stage("svd"): ...``) and inherit a uniform span taxonomy
        (``prepare.svd``, ``query.gather``, ...) plus a per-stage
        ``csrplus_stage_seconds_total`` counter labelled by engine,
        phase, and stage.  No-op cost only when instrumentation is
        disabled (see :mod:`repro.obs.config`).
        """
        phase = self._phase_name or "prepare"
        with obs.span(f"{phase}.{stage}", engine=self.name, **attributes) as sp:
            yield sp
        if obs.enabled():
            obs.get_registry().counter(
                "csrplus_stage_seconds_total",
                "Cumulative wall time per engine phase stage",
                labels={"engine": self.name, "phase": phase, "stage": stage},
            ).inc(sp.wall_seconds)

    def query(self, queries: QueryLike) -> np.ndarray:
        """Multi-source CoSimRank block ``[S]_{*,Q}`` as an ``n x |Q|`` array.

        Column ``j`` holds the similarities of every node to
        ``queries[j]``.  Calls :meth:`prepare` automatically if needed.
        """
        self.prepare()
        query_ids = normalize_queries(queries, self.num_nodes)
        start = time.perf_counter()
        self._phase_started_at = start
        self._phase_name = "query"
        with obs.span("query", engine=self.name, num_queries=int(query_ids.size)):
            result = self._query_impl(query_ids)
        self.last_query_seconds = time.perf_counter() - start
        if obs.enabled():
            obs.get_registry().histogram(
                "csrplus_query_seconds",
                "Online (query) phase wall time per engine",
                labels={"engine": self.name},
            ).observe(self.last_query_seconds)
        logger.debug(
            "%s query: |Q|=%d in %.4fs", self.name, query_ids.size,
            self.last_query_seconds,
        )
        return result

    # ------------------------------------------------------------------
    # convenience entry points (the paper's "extreme cases", §3.2)
    # ------------------------------------------------------------------
    def single_source(self, query: int) -> np.ndarray:
        """``[S]_{*,q}`` as a length-``n`` vector."""
        return self.query(int(query))[:, 0]

    def single_pair(self, a: int, b: int) -> float:
        """``[S]_{a,b}``."""
        column = self.single_source(b)
        a = int(a)
        if not (0 <= a < self.num_nodes):
            raise QueryError(f"node {a} out of range")
        return float(column[a])

    def all_pairs(self) -> np.ndarray:
        """Dense ``n x n`` similarity matrix (``Q = V`` extreme case)."""
        return self.query(np.arange(self.num_nodes, dtype=np.int64))

    def top_k(self, query: int, k: int, exclude_self: bool = True) -> np.ndarray:
        """Ids of the ``k`` nodes most similar to ``query`` (descending).

        Ties are broken by ascending node id for determinism.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        scores = self.single_source(query)
        # argsort on (-score, id) gives deterministic tie-breaking.
        order = np.lexsort((np.arange(scores.size), -scores))
        if exclude_self:
            order = order[order != int(query)]
        return order[: min(k, order.size)].astype(np.int64)

    # ------------------------------------------------------------------
    # subclass responsibilities
    # ------------------------------------------------------------------
    @abstractmethod
    def _prepare_impl(self) -> None:
        """Offline phase; charge large arrays to ``self.memory``."""

    @abstractmethod
    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        """Online phase for validated query ids; return ``n x |Q|``."""

    def _require_prepared(self) -> None:
        if not self._prepared:
            raise NotPreparedError(
                f"{self.name}: query issued before prepare() — call prepare() first"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "prepared" if self._prepared else "unprepared"
        return f"{type(self).__name__}(n={self.num_nodes}, c={self.damping}, {state})"
