"""Dataset registry: the paper's SNAP table and our synthetic stand-ins.

The paper evaluates on six SNAP graphs (§4.1).  Without network access
(and without a 256 GB machine) this reproduction generates *stand-ins*
that preserve what the algorithms are sensitive to — ``n``, ``m``, the
average degree ``m/n`` and the in-degree skew — at three size tiers:

* ``tiny``  — seconds-fast sizes for unit tests;
* ``small`` — a few thousand nodes, where even CSR-NI fits in memory;
* ``bench`` — the default for figures: sized so each baseline survives
  or exceeds the default budgets exactly where the paper reports it
  surviving or crashing.

Every stand-in is deterministic (fixed seed per key+tier) and cached
in-process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.errors import DatasetError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu, erdos_renyi, preferential_attachment, rmat

__all__ = ["DatasetSpec", "PAPER_DATASETS", "dataset_keys", "load_dataset", "paper_table"]

TIERS = ("tiny", "small", "bench")


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's dataset table plus stand-in recipes."""

    key: str
    description: str
    paper_nodes: int
    paper_edges: int
    generator: str  # human-readable family name
    #: tier -> (num_nodes, num_edges) of the synthetic stand-in
    standin_sizes: Dict[str, Tuple[int, int]]
    seed: int

    @property
    def paper_density(self) -> float:
        return self.paper_edges / self.paper_nodes


def _sizes(tiny, small, bench) -> Dict[str, Tuple[int, int]]:
    return {"tiny": tiny, "small": small, "bench": bench}


#: Stand-in sizes keep each dataset's m/n ratio from the paper:
#: FB 21.9, P2P 2.4, YT 5.3, WT 2.1, TW 35.3, WB 8.6.
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "FB": DatasetSpec(
        key="FB",
        description="Social friendship from ego-Facebook",
        paper_nodes=4_039,
        paper_edges=88_234,
        generator="preferential-attachment (dense social)",
        standin_sizes=_sizes((200, 4_380), (800, 17_520), (1_200, 26_280)),
        seed=101,
    ),
    "P2P": DatasetSpec(
        key="P2P",
        description="Gnutella peer-to-peer network",
        paper_nodes=22_687,
        paper_edges=54_705,
        generator="Erdos-Renyi (near-homogeneous overlay)",
        standin_sizes=_sizes((300, 720), (1_000, 2_400), (1_600, 3_840)),
        seed=102,
    ),
    "YT": DatasetSpec(
        key="YT",
        description="Youtube social network communities",
        paper_nodes=1_134_890,
        paper_edges=5_975_248,
        generator="Chung-Lu power-law",
        standin_sizes=_sizes((500, 2_650), (3_000, 15_900), (12_000, 63_600)),
        seed=103,
    ),
    "WT": DatasetSpec(
        key="WT",
        description="Wikipedia talk (communication) graph",
        paper_nodes=2_394_385,
        paper_edges=5_021_410,
        generator="Chung-Lu power-law (sparse)",
        standin_sizes=_sizes((600, 1_260), (5_000, 10_500), (40_000, 84_000)),
        seed=104,
    ),
    "TW": DatasetSpec(
        key="TW",
        description="Twitter user-follower network",
        paper_nodes=41_625_230,
        paper_edges=1_468_365_182,
        generator="R-MAT (heavy-skew crawl)",
        standin_sizes=_sizes((1_024, 9_000), (16_384, 260_000), (131_072, 2_300_000)),
        seed=105,
    ),
    "WB": DatasetSpec(
        key="WB",
        description="A graph obtained by a Webbase crawler",
        paper_nodes=118_142_155,
        paper_edges=1_019_903_190,
        generator="R-MAT (web crawl)",
        standin_sizes=_sizes((2_048, 6_000), (32_768, 140_000), (262_144, 1_130_000)),
        seed=106,
    ),
}

#: Datasets in the paper's small-to-large order.
_ORDER = ("FB", "P2P", "YT", "WT", "TW", "WB")


def dataset_keys() -> List[str]:
    """Dataset keys in the paper's order."""
    return list(_ORDER)


def _build(spec: DatasetSpec, num_nodes: int, num_edges: int) -> DiGraph:
    if spec.key == "FB":
        # out_degree tuned so mirrored PA lands near the target m.
        out_degree = max(1, round(num_edges / num_nodes / 1.5))
        return preferential_attachment(num_nodes, out_degree, seed=spec.seed)
    if spec.key == "P2P":
        return erdos_renyi(num_nodes, num_edges, seed=spec.seed)
    if spec.key in ("YT", "WT"):
        return chung_lu(num_nodes, num_edges, exponent=2.2, seed=spec.seed)
    # TW / WB: R-MAT on the next power of two >= num_nodes.
    scale = max(1, (num_nodes - 1).bit_length())
    return rmat(scale, num_edges, seed=spec.seed)


@lru_cache(maxsize=32)
def load_dataset(key: str, tier: str = "bench") -> DiGraph:
    """Materialise the stand-in for dataset ``key`` at size ``tier``.

    Deterministic per ``(key, tier)`` and cached in-process.
    """
    try:
        spec = PAPER_DATASETS[key]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {key!r}; known: {sorted(PAPER_DATASETS)}"
        ) from None
    if tier not in TIERS:
        raise DatasetError(f"unknown tier {tier!r}; known: {TIERS}")
    num_nodes, num_edges = spec.standin_sizes[tier]
    return _build(spec, num_nodes, num_edges)


def paper_table() -> List[Dict[str, object]]:
    """The paper's §4.1 dataset table as a list of rows."""
    rows = []
    for key in _ORDER:
        spec = PAPER_DATASETS[key]
        rows.append(
            {
                "Data": spec.key,
                "m": spec.paper_edges,
                "n": spec.paper_nodes,
                "m/n": round(spec.paper_density, 1),
                "Description": spec.description,
            }
        )
    return rows
