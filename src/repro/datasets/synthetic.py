"""Custom-size stand-in generation.

The registry's tiers (tiny/small/bench) cover the reproduction; this
module provides the "scale knob" for anyone who wants the same stand-in
*families* at other sizes — e.g. to push CSR+ further on a bigger
machine, or to shrink a failing case while debugging.

``make_standin("TW", num_nodes=500_000)`` builds a Twitter-like R-MAT
graph with the paper's m/n ratio at half a million nodes.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.registry import PAPER_DATASETS
from repro.errors import DatasetError, InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu, erdos_renyi, preferential_attachment, rmat

__all__ = ["make_standin"]


def make_standin(
    key: str,
    num_nodes: int,
    seed: Optional[int] = None,
) -> DiGraph:
    """A stand-in for dataset ``key`` at a custom node count.

    The edge count is derived from the paper's m/n ratio for that
    dataset; the generator family matches the registry's choice
    (DESIGN.md §5).  Deterministic given ``seed`` (default: the
    registry seed for the key).
    """
    try:
        spec = PAPER_DATASETS[key]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {key!r}; known: {sorted(PAPER_DATASETS)}"
        ) from None
    if num_nodes < 2:
        raise InvalidParameterError(f"num_nodes must be >= 2, got {num_nodes}")
    if seed is None:
        seed = spec.seed
    num_edges = max(1, int(round(num_nodes * spec.paper_density)))

    if key == "FB":
        out_degree = max(1, round(spec.paper_density / 1.5))
        return preferential_attachment(num_nodes, out_degree, seed=seed)
    if key == "P2P":
        max_edges = num_nodes * (num_nodes - 1)
        return erdos_renyi(num_nodes, min(num_edges, max_edges), seed=seed)
    if key in ("YT", "WT"):
        return chung_lu(num_nodes, num_edges, exponent=2.2, seed=seed)
    # TW / WB
    scale = max(1, (num_nodes - 1).bit_length())
    return rmat(scale, num_edges, seed=seed)
