"""The paper's running example: the 6-node Wiki-Talk fragment of Figure 1.

Nodes are the Wikipedia users ``a .. f`` (dense ids 0 .. 5); the edge
``x -> y`` means "user x edited user y's talk page".  Users ``a``, ``b``
and ``d`` carry Wikipedian-by-interest labels ("art" for ``a``, "law"
for ``b`` and ``d``), which drives the categorisation application of
§1 and Example 1.1's multi-source query ``Q = {b, d}``.

The module also records the numbers of the worked Example 3.6
(rank-3 CSR+ output with ``c = 0.6``) so tests can assert the paper's
arithmetic end to end.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graphs.digraph import DiGraph

__all__ = [
    "FIGURE1_NODES",
    "FIGURE1_LABELS",
    "figure1_graph",
    "figure1_node_ids",
    "example_3_6_queries",
    "example_3_6_expected",
    "EXAMPLE_3_6_RANK",
    "EXAMPLE_3_6_DAMPING",
]

#: Node names in dense-id order.
FIGURE1_NODES: Tuple[str, ...] = ("a", "b", "c", "d", "e", "f")

#: Wikipedian-by-interest labels shown in Figure 1(a).
FIGURE1_LABELS: Dict[str, str] = {"a": "art", "b": "law", "d": "law"}

#: Figure 1(a) edges, derived from the example's column-normalised Q:
#: column y of Q has entries 1/indeg(y) at the rows of y's in-neighbours.
_EDGES: List[Tuple[str, str]] = [
    ("d", "a"),
    ("a", "b"),
    ("c", "b"),
    ("e", "b"),
    ("d", "c"),
    ("a", "d"),
    ("e", "d"),
    ("f", "d"),
    ("c", "e"),
    ("f", "e"),
    ("d", "f"),
]

#: Parameters of the worked Example 3.6.
EXAMPLE_3_6_RANK = 3
EXAMPLE_3_6_DAMPING = 0.6


def figure1_node_ids() -> Dict[str, int]:
    """Mapping from node name (``"a" .. "f"``) to dense id."""
    return {name: idx for idx, name in enumerate(FIGURE1_NODES)}

def figure1_graph() -> DiGraph:
    """The 6-node, 11-edge Wiki-Talk fragment of Figure 1(a)."""
    ids = figure1_node_ids()
    return DiGraph(len(FIGURE1_NODES), [(ids[s], ids[t]) for s, t in _EDGES])


def example_3_6_queries() -> np.ndarray:
    """The multi-source query set ``Q = {b, d}`` as dense ids."""
    ids = figure1_node_ids()
    return np.asarray([ids["b"], ids["d"]], dtype=np.int64)


def example_3_6_expected() -> np.ndarray:
    """``[S]_{*,Q}`` printed at the end of Example 3.6 (2 decimals).

    Columns are for queries ``b`` and ``d``; rows in node order a..f.
    """
    column_b = [0.16, 1.49, 0.16, 0.49, 0.48, 0.16]
    column_d = [0.16, 0.49, 0.16, 1.49, 0.48, 0.16]
    return np.column_stack([column_b, column_d])
