"""Deterministic query-set sampling for the experiments.

The paper samples multi-source query sets of size ``|Q|`` (default 100)
from each graph.  Sampling here is seeded, skips nothing (any node may
be a query), and never repeats a node within one set, so experiment
runs are reproducible bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["sample_queries"]


def sample_queries(graph: DiGraph, size: int, seed: int = 0) -> np.ndarray:
    """``size`` distinct node ids sampled uniformly, deterministic in ``seed``."""
    if size < 1:
        raise InvalidParameterError(f"query size must be >= 1, got {size}")
    n = graph.num_nodes
    if size > n:
        raise InvalidParameterError(
            f"cannot sample {size} distinct queries from {n} nodes"
        )
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n, size=size, replace=False)).astype(np.int64)
