"""Datasets: the paper's SNAP catalogue, synthetic stand-ins, toy graphs."""

from repro.datasets.queries import sample_queries
from repro.datasets.registry import (
    PAPER_DATASETS,
    DatasetSpec,
    dataset_keys,
    load_dataset,
    paper_table,
)
from repro.datasets.synthetic import make_standin
from repro.datasets.toy import (
    EXAMPLE_3_6_DAMPING,
    EXAMPLE_3_6_RANK,
    FIGURE1_LABELS,
    FIGURE1_NODES,
    example_3_6_expected,
    example_3_6_queries,
    figure1_graph,
    figure1_node_ids,
)

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "dataset_keys",
    "load_dataset",
    "paper_table",
    "make_standin",
    "sample_queries",
    "figure1_graph",
    "figure1_node_ids",
    "example_3_6_queries",
    "example_3_6_expected",
    "FIGURE1_NODES",
    "FIGURE1_LABELS",
    "EXAMPLE_3_6_RANK",
    "EXAMPLE_3_6_DAMPING",
]
