"""Synonym expansion over a word co-occurrence graph.

CoSimRank was introduced (Rothe & Schütze, ACL 2014) for lexical
similarity: build a directed graph over words (edges from dependency or
co-occurrence links) and rank candidate synonyms of a query word by
similarity.  This module provides the thin vocabulary layer — mapping
words to dense node ids and back — on top of any similarity engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import SimilarityEngine
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError, QueryError
from repro.graphs.io import graph_from_labeled_edges

__all__ = ["SynonymExpander"]


class SynonymExpander:
    """Word-level top-k similarity search.

    Parameters
    ----------
    edges:
        Iterable of ``(word, context)`` links: the word on the left
        occurs in / points at the context on the right.
    rank, damping:
        CSR+ parameters for the default engine.
    engine_factory:
        Optional callable ``graph -> SimilarityEngine`` to use an
        engine other than CSR+.
    orientation:
        CoSimRank similarity is driven by shared *in-neighbours*.  The
        default ``"word-to-context"`` therefore reverses the edges
        internally, so that two words pointing at the same contexts
        become similar (the distributional-semantics reading).  Pass
        ``"as-is"`` to use the edges untouched (nodes are then similar
        when *pointed at* by similar nodes).

    Examples
    --------
    >>> expander = SynonymExpander([("car", "road"), ("auto", "road"),
    ...                             ("car", "wheel"), ("auto", "wheel")])
    >>> expander.expand("car", k=1)[0][0]
    'auto'
    """

    def __init__(
        self,
        edges: Iterable[Tuple[str, str]],
        rank: int = 5,
        damping: float = 0.6,
        engine_factory=None,
        orientation: str = "word-to-context",
    ):
        if orientation not in ("word-to-context", "as-is"):
            raise InvalidParameterError(
                f"orientation must be 'word-to-context' or 'as-is', "
                f"got {orientation!r}"
            )
        edge_list = list(edges)
        if orientation == "word-to-context":
            edge_list = [(context, word) for word, context in edge_list]
        self.graph, self._word_to_id = graph_from_labeled_edges(edge_list)
        if self.graph.num_nodes == 0:
            raise InvalidParameterError("synonym graph has no words")
        self._id_to_word: Dict[int, str] = {
            idx: word for word, idx in self._word_to_id.items()
        }
        if engine_factory is None:
            config = CSRPlusConfig(
                damping=damping, rank=min(rank, self.graph.num_nodes)
            )
            self.engine: SimilarityEngine = CSRPlusIndex(self.graph, config)
        else:
            self.engine = engine_factory(self.graph)

    @property
    def vocabulary(self) -> List[str]:
        """All words, in dense-id order."""
        return [self._id_to_word[i] for i in range(self.graph.num_nodes)]

    def word_id(self, word: str) -> int:
        """Dense node id of ``word`` (raises :class:`QueryError` if unknown)."""
        try:
            return self._word_to_id[word]
        except KeyError:
            raise QueryError(f"unknown word {word!r}") from None

    def similarity(self, word_a: str, word_b: str) -> float:
        """CoSimRank similarity between two words."""
        return self.engine.single_pair(self.word_id(word_a), self.word_id(word_b))

    def expand(self, word: str, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` most similar words to ``word`` (word itself excluded).

        Returns ``(word, score)`` pairs in descending score order.
        """
        node = self.word_id(word)
        scores = self.engine.single_source(node)
        top = self.engine.top_k(node, min(k, self.graph.num_nodes - 1))
        return [(self._id_to_word[int(i)], float(scores[int(i)])) for i in top]

    def expand_set(self, words: Sequence[str], k: int = 10) -> List[Tuple[str, float]]:
        """Multi-source expansion: candidates similar to a whole seed set.

        Scores are summed over the seed words (the §1 semantics); seeds
        are excluded from the result.
        """
        if not words:
            raise InvalidParameterError("need at least one seed word")
        ids = [self.word_id(w) for w in words]
        block = self.engine.query(ids)
        scores = block.sum(axis=1)
        seed_set = set(ids)
        order = np.lexsort((np.arange(scores.size), -scores))
        out = []
        for idx in order:
            if int(idx) in seed_set:
                continue
            out.append((self._id_to_word[int(idx)], float(scores[int(idx)])))
            if len(out) == k:
                break
        return out
