"""Item-to-item recommendation over bipartite interaction data.

A classic CoSimRank deployment: users interact with items; two items
are similar when similar users interact with them (collaborative
filtering by link structure alone).  The interaction list is compiled
into a digraph with user -> item edges — so each item's in-neighbours
are its users, which is exactly the direction CoSimRank's similarity
propagates through — and a CSR+ index answers "items like this one"
and "items for this user" queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import SimilarityEngine
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError, QueryError
from repro.graphs.digraph import DiGraph
from repro.graphs.weighted import WeightedDiGraph

__all__ = ["Recommender"]


class Recommender:
    """Item recommendations from (user, item[, strength]) interactions.

    Parameters
    ----------
    interactions:
        Iterable of ``(user, item)`` or ``(user, item, strength)``
        records over arbitrary hashable labels.  Strengths, when given,
        weight the transition matrix (repeat interactions accumulate).
    rank, damping:
        CSR+ parameters for the underlying index.
    """

    def __init__(
        self,
        interactions: Iterable[Tuple],
        rank: int = 8,
        damping: float = 0.6,
    ):
        records = [tuple(r) for r in interactions]
        if not records:
            raise InvalidParameterError("need at least one interaction")
        weighted = any(len(r) == 3 for r in records)

        self._user_ids: Dict[object, int] = {}
        self._item_ids: Dict[object, int] = {}
        triples: List[Tuple[int, int, float]] = []
        for record in records:
            if len(record) == 2:
                user, item, strength = record[0], record[1], 1.0
            elif len(record) == 3:
                user, item, strength = record
            else:
                raise InvalidParameterError(
                    f"interactions must be (user, item[, strength]); got {record!r}"
                )
            if user not in self._user_ids:
                self._user_ids[user] = len(self._user_ids)
            if item not in self._item_ids:
                self._item_ids[item] = len(self._item_ids)
            triples.append(
                (self._user_ids[user], self._item_ids[item], float(strength))
            )

        num_users = len(self._user_ids)
        num_items = len(self._item_ids)
        n = num_users + num_items
        # user u occupies node u; item i occupies node num_users + i
        edges = [(u, num_users + i, w) for u, i, w in triples]
        if weighted:
            graph: DiGraph = WeightedDiGraph(n, edges)
        else:
            graph = DiGraph(n, [(s, t) for s, t, _ in edges])
        self._num_users = num_users
        self.graph = graph
        config = CSRPlusConfig(damping=damping, rank=min(rank, n))
        self.index: SimilarityEngine = CSRPlusIndex(graph, config).prepare()
        self._items_in_order = sorted(self._item_ids, key=self._item_ids.get)

    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_items(self) -> int:
        return len(self._item_ids)

    def _item_node(self, item) -> int:
        try:
            return self._num_users + self._item_ids[item]
        except KeyError:
            raise QueryError(f"unknown item {item!r}") from None

    # ------------------------------------------------------------------
    def similar_items(self, item, k: int = 10) -> List[Tuple[object, float]]:
        """The ``k`` items most similar to ``item`` (itself excluded)."""
        node = self._item_node(item)
        scores = self.index.single_source(node)
        item_scores = scores[self._num_users :]
        own = self._item_ids[item]
        order = np.lexsort((np.arange(item_scores.size), -item_scores))
        out = []
        for idx in order:
            if int(idx) == own:
                continue
            out.append((self._items_in_order[int(idx)], float(item_scores[int(idx)])))
            if len(out) == k:
                break
        return out

    def recommend_for_user(self, user, k: int = 10) -> List[Tuple[object, float]]:
        """Items similar to the user's interacted items, unseen first.

        Scores each candidate item by its summed similarity to the
        user's history (one multi-source query), then drops the history
        itself.
        """
        try:
            user_id = self._user_ids[user]
        except KeyError:
            raise QueryError(f"unknown user {user!r}") from None
        history_nodes = [int(t) for t in self.graph.out_neighbors(user_id)]
        if not history_nodes:
            return []
        block = self.index.query(history_nodes)
        scores = block.sum(axis=1)[self._num_users :]
        seen = {node - self._num_users for node in history_nodes}
        order = np.lexsort((np.arange(scores.size), -scores))
        out = []
        for idx in order:
            if int(idx) in seen:
                continue
            out.append((self._items_in_order[int(idx)], float(scores[int(idx)])))
            if len(out) == k:
                break
        return out
