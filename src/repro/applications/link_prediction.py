"""Link prediction by CoSimRank similarity.

A standard evaluation protocol: hide a fraction of a graph's edges,
score candidate node pairs by similarity on the remaining graph, and
check how highly the hidden edges rank against random non-edges.
CoSimRank is a natural scorer here (paper §1 cites link prediction as a
target application); CSR+ makes scoring many candidate sources cheap
because all candidates sharing a target hit the same multi-source
query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import SimilarityEngine
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["LinkPredictionReport", "split_edges", "score_pairs", "evaluate_link_prediction"]


@dataclass(frozen=True)
class LinkPredictionReport:
    """AUC-style outcome of one link-prediction evaluation."""

    auc: float
    num_positives: int
    num_negatives: int
    mean_positive_score: float
    mean_negative_score: float


def split_edges(
    graph: DiGraph, holdout_fraction: float = 0.2, seed: int = 0
) -> Tuple[DiGraph, List[Tuple[int, int]]]:
    """Remove a random ``holdout_fraction`` of edges.

    Returns ``(training_graph, held_out_edges)``.
    """
    if not (0.0 < holdout_fraction < 1.0):
        raise InvalidParameterError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
        )
    m = graph.num_edges
    if m < 2:
        raise InvalidParameterError("graph too small to split")
    rng = np.random.default_rng(seed)
    num_holdout = max(1, int(round(m * holdout_fraction)))
    chosen = rng.choice(m, size=num_holdout, replace=False)
    src = graph.edge_sources
    dst = graph.edge_targets
    held_out = [(int(src[i]), int(dst[i])) for i in chosen]
    training = graph.with_edges_removed(held_out)
    return training, held_out


def score_pairs(
    engine: SimilarityEngine,
    pairs: Sequence[Tuple[int, int]],
    mode: str = "inlink",
    max_neighbors: int = 10,
) -> np.ndarray:
    """Score each candidate edge ``(source, target)``.

    Two scorers:

    * ``"inlink"`` (default): ``sum_w S[source, w]`` over up to
      ``max_neighbors`` existing in-neighbours ``w`` of ``target`` —
      "does the source resemble the nodes already pointing at the
      target?"  This is the predictive signal; it folds in both
      structural similarity and the target's popularity.
    * ``"direct"``: the raw similarity ``S[source, target]`` — useful
      for inspection, but a weak predictor of *directed* links (similar
      nodes need not link to each other).

    Either way, all needed similarity columns are fetched with a single
    multi-source query — the access pattern CSR+ is built for.
    """
    if not pairs:
        raise InvalidParameterError("need at least one pair to score")
    if mode not in ("inlink", "direct"):
        raise InvalidParameterError(f"mode must be 'inlink' or 'direct', got {mode!r}")

    if mode == "direct":
        targets = sorted({int(t) for _, t in pairs})
        column_of = {t: i for i, t in enumerate(targets)}
        block = engine.query(targets)
        return np.array([block[int(s), column_of[int(t)]] for s, t in pairs])

    graph = engine.graph
    neighbors = {
        int(t): graph.in_neighbors(int(t))[:max_neighbors]
        for t in {int(t) for _, t in pairs}
    }
    witness_ids = sorted({int(w) for ws in neighbors.values() for w in ws})
    if not witness_ids:
        return np.zeros(len(pairs))
    column_of = {w: i for i, w in enumerate(witness_ids)}
    block = engine.query(witness_ids)
    scores = []
    for s, t in pairs:
        ws = neighbors[int(t)]
        if ws.size == 0:
            scores.append(0.0)
        else:
            cols = [column_of[int(w)] for w in ws]
            scores.append(float(block[int(s), cols].sum()))
    return np.array(scores)


def sample_negative_pairs(
    graph: DiGraph, count: int, seed: int = 0
) -> List[Tuple[int, int]]:
    """``count`` uniformly random node pairs that are not edges."""
    n = graph.num_nodes
    if n < 2:
        raise InvalidParameterError("graph too small for negative sampling")
    rng = np.random.default_rng(seed)
    existing = {(int(s), int(t)) for s, t in zip(graph.edge_sources, graph.edge_targets)}
    out: List[Tuple[int, int]] = []
    guard = 0
    while len(out) < count:
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n))
        guard += 1
        if guard > 100 * count + 1000:
            raise InvalidParameterError(
                "could not sample enough non-edges (graph too dense?)"
            )
        if s == t or (s, t) in existing:
            continue
        out.append((s, t))
    return out


def evaluate_link_prediction(
    graph: DiGraph,
    holdout_fraction: float = 0.2,
    rank: int = 10,
    damping: float = 0.6,
    seed: int = 0,
    engine: Optional[SimilarityEngine] = None,
    mode: str = "inlink",
) -> LinkPredictionReport:
    """Full protocol: split, index the training graph, compare scores.

    AUC is estimated by pairwise comparison of held-out-edge scores
    against an equal number of sampled non-edges (ties count 0.5).
    """
    training, positives = split_edges(graph, holdout_fraction, seed=seed)
    negatives = sample_negative_pairs(graph, len(positives), seed=seed + 1)
    if engine is None:
        config = CSRPlusConfig(
            damping=damping, rank=min(rank, training.num_nodes)
        )
        engine = CSRPlusIndex(training, config)
    engine.prepare()
    pos_scores = score_pairs(engine, positives, mode=mode)
    neg_scores = score_pairs(engine, negatives, mode=mode)

    greater = (pos_scores[:, None] > neg_scores[None, :]).sum()
    equal = (pos_scores[:, None] == neg_scores[None, :]).sum()
    auc = (greater + 0.5 * equal) / (pos_scores.size * neg_scores.size)
    return LinkPredictionReport(
        auc=float(auc),
        num_positives=len(positives),
        num_negatives=len(negatives),
        mean_positive_score=float(pos_scores.mean()),
        mean_negative_score=float(neg_scores.mean()),
    )
