"""Wikipedians categorisation — the motivating application of §1.

Given a graph and a few labelled seed nodes per category (e.g.
Wikipedia users tagged "law" or "art"), every unlabelled node is scored
against each category by one *multi-source* CoSimRank query per
category (``[S]_{*,Q_label}``) and assigned the argmax.  This is
exactly the workload CSR+ accelerates: the offline index is shared by
all categories and all future labellings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.base import SimilarityEngine
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["CategorisationResult", "categorise"]


@dataclass
class CategorisationResult:
    """Output of :func:`categorise`."""

    #: category -> score vector over all nodes (n,)
    scores: Dict[str, np.ndarray]
    #: predicted category per node ("" where every score is 0)
    assignments: List[str]
    #: the categories in a fixed order (sorted)
    categories: List[str] = field(default_factory=list)

    def top_nodes(self, category: str, k: int) -> np.ndarray:
        """The ``k`` highest-scoring nodes for ``category`` (descending)."""
        score = self.scores[category]
        order = np.lexsort((np.arange(score.size), -score))
        return order[:k].astype(np.int64)


def categorise(
    graph: DiGraph,
    seeds: Mapping[str, Sequence[int]],
    engine: Optional[SimilarityEngine] = None,
    rank: int = 5,
    damping: float = 0.6,
    exclude_seeds: bool = True,
) -> CategorisationResult:
    """Assign every node to the category of its most similar seed set.

    Parameters
    ----------
    graph:
        The directed graph (e.g. a talk/communication network).
    seeds:
        ``category -> node ids`` of the labelled examples.
    engine:
        A prepared (or preparable) similarity engine to reuse; defaults
        to a fresh :class:`CSRPlusIndex` with the given ``rank`` and
        ``damping``.
    exclude_seeds:
        When ``True`` (default), seed nodes keep their own label in
        ``assignments`` rather than competing on scores.

    A node's score for a category is the *sum* of its similarities to
    the category's seeds — the multi-source semantics of §1's example.
    """
    if not seeds:
        raise InvalidParameterError("seeds must contain at least one category")
    for category, nodes in seeds.items():
        if len(nodes) == 0:
            raise InvalidParameterError(f"category {category!r} has no seed nodes")

    if engine is None:
        config = CSRPlusConfig(damping=damping, rank=min(rank, graph.num_nodes))
        engine = CSRPlusIndex(graph, config)
    engine.prepare()

    categories = sorted(seeds)
    scores: Dict[str, np.ndarray] = {}
    for category in categories:
        block = engine.query(list(seeds[category]))
        scores[category] = block.sum(axis=1)

    stacked = np.column_stack([scores[c] for c in categories])
    best = np.argmax(stacked, axis=1)
    assignments = []
    seed_owner: Dict[int, str] = {}
    if exclude_seeds:
        for category, nodes in seeds.items():
            for node in nodes:
                seed_owner[int(node)] = category
    for node in range(graph.num_nodes):
        if node in seed_owner:
            assignments.append(seed_owner[node])
        elif stacked[node].max() <= 0.0:
            assignments.append("")
        else:
            assignments.append(categories[int(best[node])])
    return CategorisationResult(
        scores=scores, assignments=assignments, categories=categories
    )
