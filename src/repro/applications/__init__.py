"""Application layers from the paper's introduction: categorisation,
synonym expansion, link prediction."""

from repro.applications.categorisation import CategorisationResult, categorise
from repro.applications.link_prediction import (
    LinkPredictionReport,
    evaluate_link_prediction,
    sample_negative_pairs,
    score_pairs,
    split_edges,
)
from repro.applications.recommendation import Recommender
from repro.applications.synonyms import SynonymExpander

__all__ = [
    "Recommender",
    "categorise",
    "CategorisationResult",
    "SynonymExpander",
    "split_edges",
    "score_pairs",
    "sample_negative_pairs",
    "evaluate_link_prediction",
    "LinkPredictionReport",
]
