"""Sliding-window latency tracking for live percentile readouts.

A :class:`~repro.obs.metrics.Histogram` is the right shape for a
Prometheus scrape — cheap, mergeable, fixed memory — but its quantiles
are bucket-resolution estimates over the *whole* process lifetime.
Operating a serving SLO also needs the other view: exact percentiles
over *recent* traffic ("what is p99 right now?").  :class:`LatencyWindow`
keeps the last ``max_samples`` observations (optionally further limited
to the last ``window_seconds``) in a bounded ring and computes exact
linear-interpolated percentiles over them on demand.

The clock is injectable so window expiry is unit-testable without real
waiting, and so the load generator can run deterministically under a
simulated clock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["LatencyWindow", "DEFAULT_PERCENTILES"]

#: The standard serving readout: median, tail, far tail.
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


class LatencyWindow:
    """Bounded ring of recent latency samples with exact percentiles.

    Parameters
    ----------
    max_samples:
        Ring capacity; the oldest sample is dropped when full.
    window_seconds:
        If set, samples older than this (by the injected clock) are
        also expired at read time, so a quiet service's percentiles
        reflect recent traffic rather than an old burst.
    clock:
        Monotonic-seconds source (injectable for tests / simulation).

    Examples
    --------
    >>> window = LatencyWindow(max_samples=4)
    >>> for value in (0.1, 0.2, 0.3, 0.4):
    ...     window.observe(value)
    >>> round(window.percentile(50.0), 3)
    0.25
    """

    def __init__(
        self,
        max_samples: int = 4096,
        window_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_samples < 1:
            raise InvalidParameterError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        if window_seconds is not None and window_seconds <= 0:
            raise InvalidParameterError(
                f"window_seconds must be > 0 (or None), got {window_seconds}"
            )
        self._lock = threading.Lock()
        self._clock = clock
        self._window_seconds = window_seconds
        self._samples: "deque[Tuple[float, float]]" = deque(maxlen=int(max_samples))
        self._observed = 0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (timestamped with the clock)."""
        now = self._clock()
        with self._lock:
            self._samples.append((now, float(seconds)))
            self._observed += 1

    def _live_values(self) -> List[float]:
        now = self._clock()
        with self._lock:
            if self._window_seconds is not None:
                horizon = now - self._window_seconds
                while self._samples and self._samples[0][0] < horizon:
                    self._samples.popleft()
            return [value for _, value in self._samples]

    @property
    def observed(self) -> int:
        """Total samples ever observed (expiry does not reduce this)."""
        with self._lock:
            return self._observed

    def __len__(self) -> int:
        """Samples currently inside the window."""
        return len(self._live_values())

    def percentile(self, p: float) -> float:
        """Exact linear-interpolated ``p``-th percentile (``nan`` if empty)."""
        return self.percentiles((p,))[p]

    def percentiles(
        self, ps: Iterable[float] = DEFAULT_PERCENTILES
    ) -> Dict[float, float]:
        """Percentiles over the live window, keyed by the requested ``p``."""
        ps = tuple(float(p) for p in ps)
        for p in ps:
            if not 0.0 <= p <= 100.0:
                raise InvalidParameterError(
                    f"percentile must be in [0, 100], got {p}"
                )
        values = self._live_values()
        if not values:
            return {p: float("nan") for p in ps}
        computed = np.percentile(np.asarray(values, dtype=np.float64), ps)
        return {p: float(value) for p, value in zip(ps, computed)}

    def snapshot(self) -> Dict[str, float]:
        """The standard readout: ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {
            f"p{p:g}": value for p, value in self.percentiles().items()
        }

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyWindow(live={len(self)}, observed={self.observed}, "
            f"window_seconds={self._window_seconds})"
        )
