"""Observability for the CSR+ reproduction (docs/observability.md).

Three pieces, all dependency-free and thread-safe:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms in a :class:`MetricsRegistry`, exposable as Prometheus
  text format or JSON;
* :mod:`repro.obs.tracing` — nested, thread-aware :class:`Span` timing
  (wall + CPU) collected by a :class:`Tracer`, exportable as JSON or a
  rendered tree;
* :mod:`repro.obs.config` — the module-level enable flag that makes
  every instrumented path near-zero-cost when off.

The package keeps one process-global registry and tracer
(:func:`get_registry` / :func:`get_tracer`) that the engines'
prepare/query instrumentation reports to; the serving layer defaults to
a private registry per service (so two services never mix counters) but
shares the global tracer.

Quick use::

    import repro.obs as obs

    with obs.span("my.stage", items=42):
        ...
    print(obs.get_tracer().render_tree())
    print(obs.get_registry().render_prometheus())
"""

from repro.obs.config import (
    disable,
    enable,
    enabled,
    instrumentation,
    set_enabled,
)
from repro.obs.latency import DEFAULT_PERCENTILES, LatencyWindow
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_PREPARE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registries_as_dict,
    render_prometheus,
)
from repro.obs.slo import (
    DEFAULT_SERVE_SLOS,
    AvailabilitySLO,
    LatencySLO,
    SLOReport,
    SLOResult,
    evaluate_slos,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    render_tree_from_dict,
)

__all__ = [
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "instrumentation",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PREPARE_BUCKETS",
    "LatencyWindow",
    "DEFAULT_PERCENTILES",
    "LatencySLO",
    "AvailabilitySLO",
    "SLOResult",
    "SLOReport",
    "evaluate_slos",
    "DEFAULT_SERVE_SLOS",
    "render_prometheus",
    "registries_as_dict",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "render_tree_from_dict",
    "get_registry",
    "get_tracer",
    "span",
]

_default_registry = MetricsRegistry()
_default_tracer = Tracer()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry (engine-level metrics)."""
    return _default_registry


def get_tracer() -> Tracer:
    """The process-global tracer (all library spans land here)."""
    return _default_tracer


def span(name: str, parent=None, **attributes):
    """A span on the global tracer (no-op while instrumentation is off)."""
    return _default_tracer.span(name, parent=parent, **attributes)
