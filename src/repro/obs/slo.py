"""Serving SLOs: declarative objectives evaluated from a metrics registry.

An SLO (service-level objective) turns "fast enough" into a testable
statement.  Two kinds are modelled, matching the two failure surfaces
of the serving stack:

* :class:`LatencySLO` — "p99 batch latency stays under 250 ms":
  evaluated against a :class:`~repro.obs.metrics.Histogram` by name,
  using bucket-interpolated quantiles (:meth:`Histogram.quantile`).
  The compliance target implied by the percentile (p99 → 99% of
  requests under the threshold) defines the **error budget** (1%); the
  measured fraction of over-threshold requests divided by that budget
  is the **burn rate** (1.0 = budget exactly exhausted).
* :class:`AvailabilitySLO` — "99.9% of requests are answered": bad
  outcomes (shed / deadline-exceeded / degraded, by counter name) over
  a total counter, with the same budget/burn arithmetic.

:func:`evaluate_slos` reads one or more registries (nothing is
created or mutated), returns an :class:`SLOReport`, and the report can
:meth:`~SLOReport.export` itself as ``csrplus_slo_*`` gauges for the
Prometheus scrape and :meth:`~SLOReport.render` a verdict table for
humans.  The load generator (:mod:`repro.serving.loadgen`) and
``csrplus bench`` both build on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "LatencySLO",
    "AvailabilitySLO",
    "SLOResult",
    "SLOReport",
    "evaluate_slos",
    "DEFAULT_SERVE_SLOS",
]

#: Guard for float comparisons at the budget boundary.
_EPS = 1e-12


def _merged_histogram(
    registries: Sequence[MetricsRegistry], name: str
) -> Optional[Histogram]:
    """All children of a histogram family summed into one histogram.

    Returns ``None`` when no registry has the family.  Children must
    share bucket bounds (they always do when created through the same
    call site); mismatched bounds raise rather than merging nonsense.
    """
    merged: Optional[Histogram] = None
    for registry in registries:
        for _, instrument in registry.instruments(name):
            if not isinstance(instrument, Histogram):
                raise InvalidParameterError(
                    f"SLO metric {name!r} is a "
                    f"{instrument.metric_type}, not a histogram"
                )
            if merged is None:
                merged = Histogram(instrument.bucket_bounds)
            elif merged.bucket_bounds != instrument.bucket_bounds:
                raise InvalidParameterError(
                    f"histogram {name!r} has children with different "
                    f"bucket bounds; cannot merge for SLO evaluation"
                )
            # same-module private access: fold the child's counts in
            # so quantile/fraction logic stays single-sourced
            with instrument._lock:
                counts = list(instrument._counts)
                merged._sum += instrument._sum
                merged._count += instrument._count
            for index, count in enumerate(counts):
                merged._counts[index] += count
    return merged


def _counter_sum(registries: Sequence[MetricsRegistry], name: str) -> float:
    total = 0.0
    for registry in registries:
        for _, instrument in registry.instruments(name):
            total += instrument.value
    return total


def _fraction_le(hist: Histogram, value: float) -> float:
    """Estimated fraction of observations ``<= value`` (interpolated).

    Observations in the implicit ``+Inf`` bucket are conservatively
    counted as *over* any finite threshold.
    """
    buckets = hist.buckets()
    total = buckets[-1][1]
    if total == 0:
        return 1.0
    previous = 0
    lower = 0.0
    for bound, cumulative in buckets:
        if value < bound:
            in_bucket = cumulative - previous
            if in_bucket == 0 or bound == float("inf"):
                return previous / total
            covered = (value - lower) / (bound - lower)
            return (previous + in_bucket * max(0.0, covered)) / total
        previous = cumulative
        lower = bound
    return 1.0  # pragma: no cover - +Inf bound always exceeds value


@dataclass(frozen=True)
class SLOResult:
    """One evaluated objective: the verdict plus its arithmetic."""

    name: str
    kind: str                 # "latency" | "availability"
    objective: str            # human-readable target, e.g. "p99 <= 250ms"
    target: float
    measured: float           # quantile seconds / availability fraction
    samples: int              # observations / requests the verdict rests on
    error_budget: float       # allowed bad fraction
    bad_fraction: float       # measured bad fraction
    ok: bool

    @property
    def burn_rate(self) -> float:
        """Bad fraction over budget: 1.0 = budget exactly exhausted."""
        return self.bad_fraction / self.error_budget

    @property
    def budget_remaining(self) -> float:
        """Unspent error budget as a fraction of the budget (can go < 0)."""
        return 1.0 - self.burn_rate

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "target": self.target,
            "measured": self.measured,
            "samples": self.samples,
            "error_budget": self.error_budget,
            "bad_fraction": self.bad_fraction,
            "burn_rate": self.burn_rate,
            "budget_remaining": self.budget_remaining,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class LatencySLO:
    """Latency objective: the ``percentile``-th percentile of a latency
    histogram must stay at or under ``threshold_s``.

    Parameters
    ----------
    name:
        Identifier (becomes the ``slo`` label on exported gauges).
    threshold_s:
        Latency bound in seconds.
    percentile:
        Which percentile the bound applies to, in ``(0, 100)``.  Also
        defines the error budget: p99 tolerates 1% of requests over
        the threshold.
    metric:
        Histogram family name to evaluate (children are merged).
    """

    name: str
    threshold_s: float
    percentile: float = 99.0
    metric: str = "csrplus_serve_batch_seconds"

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise InvalidParameterError(
                f"threshold_s must be > 0, got {self.threshold_s}"
            )
        if not 0.0 < self.percentile < 100.0:
            raise InvalidParameterError(
                f"percentile must be in (0, 100), got {self.percentile}"
            )

    def evaluate(self, *registries: MetricsRegistry) -> SLOResult:
        budget = 1.0 - self.percentile / 100.0
        hist = _merged_histogram(registries, self.metric)
        if hist is None or hist.count == 0:
            # no traffic: vacuous pass with nan measurement
            return SLOResult(
                name=self.name,
                kind="latency",
                objective=self._objective(),
                target=self.threshold_s,
                measured=float("nan"),
                samples=0,
                error_budget=budget,
                bad_fraction=0.0,
                ok=True,
            )
        bad_fraction = 1.0 - _fraction_le(hist, self.threshold_s)
        return SLOResult(
            name=self.name,
            kind="latency",
            objective=self._objective(),
            target=self.threshold_s,
            measured=hist.quantile(self.percentile / 100.0),
            samples=hist.count,
            error_budget=budget,
            bad_fraction=bad_fraction,
            ok=bad_fraction <= budget + _EPS,
        )

    def _objective(self) -> str:
        return f"p{self.percentile:g} <= {self.threshold_s * 1000:g}ms"


@dataclass(frozen=True)
class AvailabilitySLO:
    """Availability objective: bad outcomes stay within ``1 - target``.

    Parameters
    ----------
    name:
        Identifier (becomes the ``slo`` label on exported gauges).
    target:
        Required good fraction, in ``(0, 1)`` — e.g. ``0.999``.
    total_metric:
        Counter family counting every request (children summed).
    bad_metrics:
        Counter families whose sum is the bad-outcome count — by
        default the serving stack's shed / deadline / degraded tallies.
    """

    name: str
    target: float = 0.999
    total_metric: str = "csrplus_serve_requests_total"
    bad_metrics: Tuple[str, ...] = (
        "csrplus_serve_shed_total",
        "csrplus_serve_deadline_exceeded_total",
        "csrplus_serve_degraded_requests_total",
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise InvalidParameterError(
                f"target must be in (0, 1), got {self.target}"
            )

    def evaluate(self, *registries: MetricsRegistry) -> SLOResult:
        budget = 1.0 - self.target
        total = _counter_sum(registries, self.total_metric)
        bad = sum(_counter_sum(registries, name) for name in self.bad_metrics)
        if total <= 0:
            return SLOResult(
                name=self.name,
                kind="availability",
                objective=self._objective(),
                target=self.target,
                measured=float("nan"),
                samples=0,
                error_budget=budget,
                bad_fraction=0.0,
                ok=True,
            )
        bad_fraction = min(1.0, bad / total)
        return SLOResult(
            name=self.name,
            kind="availability",
            objective=self._objective(),
            target=self.target,
            measured=1.0 - bad_fraction,
            samples=int(total),
            error_budget=budget,
            bad_fraction=bad_fraction,
            ok=bad_fraction <= budget + _EPS,
        )

    def _objective(self) -> str:
        return f"availability >= {self.target * 100:g}%"


@dataclass
class SLOReport:
    """Every objective's verdict for one evaluation pass."""

    results: List[SLOResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failed(self) -> List[SLOResult]:
        return [result for result in self.results if not result.ok]

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "slos": [result.as_dict() for result in self.results],
        }

    def export(self, registry: MetricsRegistry) -> None:
        """Publish the verdicts as ``csrplus_slo_*`` gauges.

        One child per SLO (labelled ``slo=<name>``), so a scrape after
        a loadgen or bench pass carries the objectives next to the raw
        counters they were computed from.
        """
        for result in self.results:
            labels = {"slo": result.name}
            registry.gauge(
                "csrplus_slo_target",
                "Objective target (seconds for latency SLOs, fraction "
                "for availability SLOs)",
                labels=labels,
            ).set(result.target)
            measured = result.measured
            registry.gauge(
                "csrplus_slo_measured",
                "Measured value the verdict was computed from",
                labels=labels,
            ).set(0.0 if measured != measured else measured)
            registry.gauge(
                "csrplus_slo_error_budget",
                "Allowed bad fraction",
                labels=labels,
            ).set(result.error_budget)
            registry.gauge(
                "csrplus_slo_bad_fraction",
                "Measured bad fraction",
                labels=labels,
            ).set(result.bad_fraction)
            registry.gauge(
                "csrplus_slo_burn_rate",
                "Bad fraction over error budget (1.0 = budget exhausted)",
                labels=labels,
            ).set(result.burn_rate)
            registry.gauge(
                "csrplus_slo_ok",
                "1 when the objective is met, else 0",
                labels=labels,
            ).set(1.0 if result.ok else 0.0)

    def render(self) -> str:
        """Monospace verdict table, one row per objective."""
        headers = (
            "SLO", "kind", "objective", "measured", "samples",
            "budget burn", "verdict",
        )
        rows = []
        for result in self.results:
            if result.measured != result.measured:  # nan: no traffic
                measured = "n/a"
            elif result.kind == "latency":
                measured = f"{result.measured * 1000:.2f}ms"
            else:
                measured = f"{result.measured:.4%}"
            rows.append((
                result.name,
                result.kind,
                result.objective,
                measured,
                str(result.samples),
                f"{result.burn_rate * 100:.1f}%",
                "PASS" if result.ok else "FAIL",
            ))
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            if rows else len(headers[i])
            for i in range(len(headers))
        ]
        def line(cells):
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            )
        out = [line(headers), line(["-" * width for width in widths])]
        out.extend(line(row) for row in rows)
        return "\n".join(out)


def evaluate_slos(
    slos: Sequence[object], *registries: MetricsRegistry
) -> SLOReport:
    """Evaluate every objective against the given registries (read-only)."""
    if not registries:
        raise InvalidParameterError("evaluate_slos needs at least one registry")
    return SLOReport(
        results=[slo.evaluate(*registries) for slo in slos]
    )


#: A sensible default objective set for the serving stack: tail latency
#: on the per-batch histogram plus availability over the robustness
#: counters.  Callers tune thresholds per deployment.
DEFAULT_SERVE_SLOS: Tuple[object, ...] = (
    LatencySLO(name="serve-p99", threshold_s=0.25, percentile=99.0),
    LatencySLO(name="serve-p50", threshold_s=0.05, percentile=50.0),
    AvailabilitySLO(name="serve-availability", target=0.999),
)
