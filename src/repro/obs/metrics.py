"""A small, thread-safe metrics registry with Prometheus/JSON exposition.

The model follows the Prometheus client-library conventions without the
dependency:

* :class:`Counter` — monotone float (``inc``);
* :class:`Gauge` — settable float (``set``/``inc``/``dec``);
* :class:`Histogram` — fixed cumulative buckets plus ``sum``/``count``;
* :class:`MetricsRegistry` — get-or-create factory keyed by
  ``(name, labels)``, exposable as Prometheus text format
  (:meth:`~MetricsRegistry.render_prometheus`) or a JSON-friendly dict
  (:meth:`~MetricsRegistry.as_dict`).

All mutation is per-instrument locked, so instruments can be shared
across threads freely; the registry lock only guards instrument
creation and snapshotting.

Examples
--------
>>> registry = MetricsRegistry()
>>> registry.counter("demo_requests_total", "Requests answered").inc()
>>> registry.counter("demo_requests_total").value
1.0
>>> "demo_requests_total 1" in registry.render_prometheus()
True
"""

from __future__ import annotations

import bisect
import json
import os
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PREPARE_BUCKETS",
    "render_prometheus",
    "registries_as_dict",
]

#: Default latency buckets (seconds): half a millisecond to ten seconds
#: in a 1-2.5-5 progression, the usual Prometheus shape for request
#: latencies.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for the *offline* phase (seconds).  ``prepare()`` on a bench
#: graph runs minutes, not milliseconds; with the request-latency
#: buckets every observation lands in ``+Inf`` and any quantile
#: estimate degenerates to the last finite bound.  Ten milliseconds to
#: a half hour in the same 1-2.5-5 progression.
DEFAULT_PREPARE_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelSet = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    frozen = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise InvalidParameterError(f"invalid label name {key!r}")
        frozen.append((key, str(labels[key])))
    return tuple(frozen)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelSet, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    # Prometheus accepts Go-style floats; emit integers without the
    # trailing ".0" for readability.
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


class Counter:
    """Monotonically increasing float value."""

    metric_type = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counters only go up; cannot inc by {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _samples(self, name: str, labels: LabelSet) -> List[str]:
        return [f"{name}{_format_labels(labels)} {_format_value(self.value)}"]

    def _as_dict(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge(Counter):
    """A value that can go up and down."""

    metric_type = "gauge"

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the tail.  ``observe`` is a binary
    search plus three locked adds.
    """

    metric_type = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = [float(b) for b in buckets]
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise InvalidParameterError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._bounds, float(value))
        with self._lock:
            self._counts[index] += 1
            self._sum += float(value)
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._counts)
        bounds = self._bounds + [float("inf")]
        cumulative, total = [], 0
        for bound, count in zip(bounds, counts):
            total += count
            cumulative.append((bound, total))
        return cumulative

    @property
    def bucket_bounds(self) -> Tuple[float, ...]:
        """The finite upper bounds this histogram was built with."""
        return tuple(self._bounds)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Prometheus ``histogram_quantile`` semantics: locate the bucket
        the target rank falls in, then interpolate linearly within it
        (the lowest bucket interpolates from ``0``).  The estimate is
        therefore within one bucket width of the exact empirical
        quantile — unless the rank lands in the implicit ``+Inf``
        bucket, in which case the highest finite bound is returned (the
        honest answer when the histogram's range was exceeded).

        Returns ``nan`` when nothing has been observed.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return float("nan")
        rank = q * total
        cumulative = 0.0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            # the cumulative > 0 guard makes q=0 resolve to the lower
            # bound of the first non-empty bucket instead of an empty one
            if cumulative >= rank and cumulative > 0:
                if index >= len(self._bounds):
                    # target rank is in +Inf: clamp to the largest
                    # finite bound, as histogram_quantile does
                    return self._bounds[-1]
                lower = self._bounds[index - 1] if index > 0 else 0.0
                upper = self._bounds[index]
                if count == 0:  # pragma: no cover - cumulative jump implies count>0
                    return upper
                return lower + (upper - lower) * (rank - previous) / count
        return self._bounds[-1]  # pragma: no cover - loop always terminates above

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._sum = 0.0
            self._count = 0

    def _samples(self, name: str, labels: LabelSet) -> List[str]:
        lines = [
            f"{name}_bucket"
            f"{_format_labels(labels, [('le', _format_le(bound))])} {count}"
            for bound, count in self.buckets()
        ]
        lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(self.sum)}")
        lines.append(f"{name}_count{_format_labels(labels)} {self.count}")
        return lines

    def _as_dict(self) -> Dict[str, object]:
        return {
            "buckets": {
                _format_le(bound): count for bound, count in self.buckets()
            },
            "sum": self.sum,
            "count": self.count,
        }


class _Family:
    """All instruments sharing one metric name (one per label set)."""

    def __init__(self, name: str, metric_type: str, help_text: str):
        self.name = name
        self.metric_type = metric_type
        self.help = help_text
        self.children: "Dict[LabelSet, Union[Counter, Gauge, Histogram]]" = {}


class MetricsRegistry:
    """Get-or-create factory and exposition point for instruments.

    Instrument accessors (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) return the existing instrument for
    ``(name, labels)`` if one was registered before, so call sites can
    re-request an instrument cheaply instead of holding references.
    Registering the same name with a different type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # instrument factories
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        return self._get_or_create(name, help, labels, Counter, lambda: Counter())

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        return self._get_or_create(name, help, labels, Gauge, lambda: Gauge())

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, help, labels, Histogram, lambda: Histogram(buckets)
        )

    def _get_or_create(self, name, help_text, labels, cls, factory):
        if not _NAME_RE.match(name):
            raise InvalidParameterError(f"invalid metric name {name!r}")
        label_set = _freeze_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, cls.metric_type, help_text)
                self._families[name] = family
            elif family.metric_type != cls.metric_type:
                raise InvalidParameterError(
                    f"metric {name!r} already registered as a "
                    f"{family.metric_type}, not a {cls.metric_type}"
                )
            if help_text and not family.help:
                family.help = help_text
            instrument = family.children.get(label_set)
            if instrument is None:
                instrument = factory()
                family.children[label_set] = instrument
            return instrument

    # ------------------------------------------------------------------
    # introspection / exposition
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def instruments(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Union[Counter, Gauge, Histogram]]]:
        """Existing ``(labels, instrument)`` pairs for one metric name.

        Read-only lookup (nothing is created): an unknown name returns
        an empty list.  This is how consumers like the SLO evaluator
        (:mod:`repro.obs.slo`) read a registry without mutating it.
        """
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return []
            return [
                (dict(label_set), instrument)
                for label_set, instrument in sorted(family.children.items())
            ]

    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        for family in self._snapshot():
            for instrument in family.children.values():
                instrument._reset()

    def _snapshot(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        return render_prometheus(self)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly structured dump of every metric family."""
        return registries_as_dict(self)

    def write_prometheus(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            handle.write(self.render_prometheus())

    def write_json(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2)
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry(families={len(self._families)})"


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Prometheus text format for one or more registries, concatenated.

    Passing several registries (e.g. the process-global one plus a
    service-private one) is valid as long as their metric names are
    disjoint; duplicate names raise to avoid emitting an exposition a
    scraper would reject.
    """
    lines: List[str] = []
    seen: Dict[str, bool] = {}
    for registry in registries:
        for family in registry._snapshot():
            if family.name in seen:
                raise InvalidParameterError(
                    f"metric {family.name!r} appears in more than one "
                    f"registry; cannot merge expositions"
                )
            seen[family.name] = True
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.metric_type}")
            for label_set, instrument in sorted(family.children.items()):
                lines.extend(instrument._samples(family.name, label_set))
    return "\n".join(lines) + ("\n" if lines else "")


def registries_as_dict(*registries: MetricsRegistry) -> Dict[str, object]:
    """JSON-friendly dump of one or more registries (names must be disjoint)."""
    families: List[Dict[str, object]] = []
    seen: Dict[str, bool] = {}
    for registry in registries:
        for family in registry._snapshot():
            if family.name in seen:
                raise InvalidParameterError(
                    f"metric {family.name!r} appears in more than one "
                    f"registry; cannot merge dumps"
                )
            seen[family.name] = True
            samples = []
            for label_set, instrument in sorted(family.children.items()):
                entry: Dict[str, object] = {"labels": dict(label_set)}
                entry.update(instrument._as_dict())
                samples.append(entry)
            families.append(
                {
                    "name": family.name,
                    "type": family.metric_type,
                    "help": family.help,
                    "samples": samples,
                }
            )
    return {"metrics": families}
