"""The observability on/off switch.

One module-level flag gates *all* instrumentation cost: when disabled,
:func:`repro.obs.span` returns a shared no-op span (no clock reads, no
allocation) and the hooks wired through the engines and the serving
layer skip their histogram observations.  Plain traffic counters keep
counting either way — they are a handful of locked integer adds and
:class:`~repro.serving.stats.ServingStats` depends on them.

The flag defaults to *enabled*: the instrumented paths are cheap
relative to the linear algebra they wrap (bounded by
``benchmarks/test_obs_overhead.py``), and stage timings are useful by
default.  Disable it to squeeze out the last few percent::

    import repro.obs as obs

    obs.disable()                  # process-wide
    with obs.instrumentation(True):
        ...                        # temporarily back on (tests)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["enabled", "enable", "disable", "set_enabled", "instrumentation"]

# A bare module global read on the hot path; writes are rare (start-up
# or tests) and guarded so concurrent toggles cannot interleave oddly.
_enabled = True
_flag_lock = threading.Lock()


def enabled() -> bool:
    """Whether instrumentation (spans, histograms) is currently on."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Set the flag; returns the previous value."""
    global _enabled
    with _flag_lock:
        previous = _enabled
        _enabled = bool(value)
    return previous


def enable() -> None:
    """Turn instrumentation on (the default)."""
    set_enabled(True)


def disable() -> None:
    """Turn instrumentation off (near-zero-cost no-op spans)."""
    set_enabled(False)


@contextmanager
def instrumentation(value: bool) -> Iterator[None]:
    """Temporarily force the flag to ``value`` (restores on exit)."""
    previous = set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)
