"""Lightweight structured tracing: nested, thread-aware spans.

A :class:`Span` measures one named region of work — wall time
(``time.perf_counter``), CPU time of the owning thread
(``time.thread_time``), and arbitrary attributes — and nests:

* **implicitly** under whatever span is open on the *same* thread
  (a thread-local stack), or
* **explicitly** under a ``parent=`` span from another thread, which is
  how the serving layer attaches per-worker compute spans to the batch
  that spawned them.

Completed root spans are retained by the :class:`Tracer` in a bounded
buffer (oldest dropped first, with a drop counter) and can be exported
as a JSON-friendly dict (:meth:`Tracer.as_dict`) or a rendered tree
(:meth:`Tracer.render_tree`).

When the module flag is off (:func:`repro.obs.disable`),
:meth:`Tracer.span` returns the shared :data:`NULL_SPAN` — no clock
reads, no allocation — so instrumented code needs no conditionals::

    with tracer.span("prepare.svd", rank=r) as sp:
        ...heavy work...
    seconds = sp.wall_seconds        # 0.0 when disabled
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Union

from repro.obs import config

__all__ = ["Span", "Tracer", "NULL_SPAN", "render_tree_from_dict"]


class Span:
    """One timed region; also its own context manager.

    Attributes are ``kwargs`` at creation plus anything added with
    :meth:`set_attribute` while open.  Timing fields are populated on
    ``__exit__`` (zero while the span is still open).
    """

    __slots__ = (
        "name", "attributes", "thread_name", "start_seconds",
        "wall_seconds", "cpu_seconds", "children",
        "_tracer", "_parent", "_explicit_parent", "_wall0", "_cpu0",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.thread_name = ""
        self.start_seconds = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.children: List["Span"] = []
        self._tracer = tracer
        self._parent = parent
        self._explicit_parent = parent is not None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if not self._explicit_parent and stack:
            self._parent = stack[-1]
        stack.append(self)
        self.thread_name = threading.current_thread().name
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        self.start_seconds = self._wall0 - self._tracer._epoch
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.thread_time() - self._cpu0
        if exc_type is not None:
            self.attributes["error"] = f"{exc_type.__name__}: {exc_value}"
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exits; recover instead of corrupting
            stack.remove(self)
        self._tracer._record(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "thread": self.thread_name,
            "start_seconds": self.start_seconds,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, wall={self.wall_seconds:.6f}s)"


class _NullSpan:
    """Shared no-op span returned while instrumentation is disabled."""

    name = ""
    thread_name = ""
    start_seconds = 0.0
    wall_seconds = 0.0
    cpu_seconds = 0.0
    attributes: Dict[str, Any] = {}
    children: List[Span] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def as_dict(self) -> Dict[str, Any]:  # pragma: no cover - degenerate
        return {"name": "", "children": []}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NULL_SPAN"


#: The singleton no-op span (``tracer.span(...) is NULL_SPAN`` while
#: instrumentation is disabled).
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects completed spans; hands out new ones.

    Parameters
    ----------
    max_roots:
        Bound on retained completed *root* spans (children ride along
        with their root).  The oldest roots are dropped first;
        :attr:`dropped` counts them.
    """

    def __init__(self, max_roots: int = 512):
        if max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self._max_roots = int(max_roots)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._dropped = 0
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # producing spans
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Union[Span, _NullSpan]:
        """A new span, or :data:`NULL_SPAN` when instrumentation is off.

        ``parent`` pins the span under an explicit parent (cross-thread
        nesting); otherwise the innermost open span on the current
        thread is the parent.
        """
        if not config.enabled():
            return NULL_SPAN
        if parent is NULL_SPAN:
            parent = None
        return Span(self, name, parent=parent, attributes=attributes)

    def current_span(self) -> Optional[Span]:
        """The innermost span open on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        parent = span._parent
        with self._lock:
            if parent is not None:
                parent.children.append(span)
                return
            self._roots.append(span)
            overflow = len(self._roots) - self._max_roots
            if overflow > 0:
                del self._roots[:overflow]
                self._dropped += overflow

    # ------------------------------------------------------------------
    # consuming spans
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def roots(self) -> List[Span]:
        """Snapshot of the retained completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        """Drop all retained spans and the drop counter."""
        with self._lock:
            self._roots.clear()
            self._dropped = 0
            self._epoch = time.perf_counter()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump: ``{"dropped": n, "spans": [...]}``."""
        with self._lock:
            roots, dropped = list(self._roots), self._dropped
        return {"dropped": dropped, "spans": [s.as_dict() for s in roots]}

    def write_json(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2)
            handle.write("\n")

    def render_tree(self) -> str:
        """Human-readable indented tree of all retained spans."""
        return render_tree_from_dict(self.as_dict())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"Tracer(roots={len(self._roots)}, dropped={self._dropped})"


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _render_span(span: Dict[str, Any], depth: int, lines: List[str]) -> None:
    attrs = span.get("attributes") or {}
    attr_text = (
        "  [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
        if attrs
        else ""
    )
    head = "  " * depth + span.get("name", "?")
    timing = (
        f"wall {_fmt_seconds(float(span.get('wall_seconds', 0.0)))}  "
        f"cpu {_fmt_seconds(float(span.get('cpu_seconds', 0.0)))}"
    )
    thread = span.get("thread", "")
    thread_text = f"  ({thread})" if thread else ""
    lines.append(f"{head:<44} {timing}{thread_text}{attr_text}")
    for child in span.get("children", ()):
        _render_span(child, depth + 1, lines)


def render_tree_from_dict(trace: Dict[str, Any]) -> str:
    """Render a :meth:`Tracer.as_dict`-shaped dump as an indented tree."""
    lines: List[str] = []
    for root in trace.get("spans", ()):
        _render_span(root, 0, lines)
    dropped = int(trace.get("dropped", 0))
    if dropped:
        lines.append(f"... ({dropped} older root span(s) dropped)")
    return "\n".join(lines)
