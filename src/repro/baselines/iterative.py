"""CSR-IT — Rothe & Schütze's iterative CoSimRank [6], all-pairs form.

The paper characterises this competitor precisely (§4.2.1, Figure 5):

* "CSR-IT is an iterative algorithm to assess all node pairs, its time
  is orthogonal to |Q|" — so it iterates the full matrix recurrence
  ``S_{k+1} = c Q^T S_k Q + I`` rather than working per query;
* its ``O(n^2)`` footprint makes it "fail due to memory crash" on
  medium graphs.

The similarity matrix is kept sparse (it starts as ``I`` and fills in
with every iteration), which is the only way the method reaches
beyond toy sizes at all; every product is budget-checked with a cheap
nnz upper bound *before* scipy allocates it, so exhaustion surfaces as
:class:`~repro.errors.MemoryBudgetExceeded` rather than an OOM kill.

Per the paper's fairness rule (§4.1), the iteration count defaults to
the low rank ``r`` used by CSR+/CSR-NI.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.base import SimilarityEngine
from repro.core.iterations import baseline_iterations_for_rank
from repro.core.memory import sparse_nbytes
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.linalg.sparse_utils import sparse_bytes_for_nnz, spmm_nnz_upper_bound

__all__ = ["CSRITEngine"]


class CSRITEngine(SimilarityEngine):
    """All-pairs iterative CoSimRank (time independent of ``|Q|``)."""

    name = "CSR-IT"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        iterations: int = 5,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if iterations < 1:
            raise InvalidParameterError(
                f"iterations must be >= 1, got {iterations}"
            )
        self.iterations = int(iterations)
        self._s_matrix: Optional[sparse.csr_matrix] = None

    @classmethod
    def for_rank(cls, graph: DiGraph, rank: int, **kwargs) -> "CSRITEngine":
        """Instance following the paper's fairness rule ``k = r``."""
        return cls(graph, iterations=baseline_iterations_for_rank(rank), **kwargs)

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        n = self.num_nodes
        q_matrix = self.transition()
        q_t = q_matrix.T.tocsr()
        self.memory.charge("precompute/Q_T", sparse_nbytes(q_t))

        identity = sparse.identity(n, format="csr")
        s_matrix = identity.copy()
        self.memory.charge("precompute/S", sparse_nbytes(s_matrix))

        for _ in range(self.iterations):
            self.check_time_budget()
            # Pre-flight both products with cheap nnz bounds.
            bound_left = spmm_nnz_upper_bound(q_t, s_matrix)
            self.memory.require(
                "precompute/QtS", sparse_bytes_for_nnz(bound_left)
            )
            left = q_t @ s_matrix
            self.memory.charge("precompute/QtS", sparse_nbytes(left))

            bound_full = spmm_nnz_upper_bound(left, q_matrix)
            self.memory.require(
                "precompute/S_next", sparse_bytes_for_nnz(bound_full)
            )
            s_matrix = (self.damping * (left @ q_matrix) + identity).tocsr()
            self.memory.release("precompute/QtS")
            self.memory.charge("precompute/S", sparse_nbytes(s_matrix))
        self._s_matrix = s_matrix

    # ------------------------------------------------------------------
    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        n = self.num_nodes
        self.memory.require("query/S", n * query_ids.size * 8)
        columns = self._s_matrix.tocsc()[:, query_ids]
        result = np.asarray(columns.todense())
        self.memory.charge("query/S", result.nbytes)
        return result
