"""Every CoSimRank competitor the paper evaluates, plus the exact solver."""

from repro.baselines.cosimmate import CoSimMateEngine
from repro.baselines.exact import (
    ExactCoSimRank,
    exact_cosimrank_direct,
    exact_cosimrank_matrix,
)
from repro.baselines.fcosim import FCoSimEngine
from repro.baselines.iterative import CSRITEngine
from repro.baselines.ni import CSRNIEngine
from repro.baselines.registry import COMPARISON_ENGINES, engine_names, make_engine
from repro.baselines.rls import CSRRLSEngine
from repro.baselines.rpcosim import RPCoSimEngine
from repro.baselines.single_pair import single_pair_cosimrank

__all__ = [
    "ExactCoSimRank",
    "exact_cosimrank_matrix",
    "exact_cosimrank_direct",
    "CSRNIEngine",
    "CSRITEngine",
    "CSRRLSEngine",
    "CoSimMateEngine",
    "RPCoSimEngine",
    "FCoSimEngine",
    "single_pair_cosimrank",
    "make_engine",
    "engine_names",
    "COMPARISON_ENGINES",
]
