"""RP-CoSim — Yang's random-projection estimator [9].

The estimator replaces each inner product ``<p_a^(k), p_b^(k)>`` in the
CoSimRank series with its Johnson–Lindenstrauss sketch: draw a Gaussian
matrix ``R`` of shape ``d x n`` (``d`` = number of projections), iterate
``Y_0 = R``, ``Y_{k+1} = Y_k Q`` so that ``Y_k = R Q^k``, and estimate

    S_hat = sum_{k=0}^{K} c^k Y_k^T Y_k / d,       E[S_hat] = S_K.

Two query modes:

* ``mode="all-pairs"`` (the published method) materialises the dense
  ``n x n`` estimate during preprocessing — the ``O(n^2)`` memory the
  paper says "seriously limits its scalability";
* ``mode="multi-source"`` keeps only the sketches and assembles the
  requested ``n x |Q|`` block online, as a fairer contender for the
  Table-1 scaling study.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import SimilarityEngine
from repro.core.iterations import baseline_iterations_for_rank
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["RPCoSimEngine"]

_MODES = ("all-pairs", "multi-source")
_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


class RPCoSimEngine(SimilarityEngine):
    """Gaussian random-projection CoSimRank estimator (unbiased)."""

    name = "RP-CoSim"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        iterations: int = 5,
        num_projections: int = 256,
        mode: str = "all-pairs",
        seed: int = 0,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
        dtype: "np.typing.DTypeLike" = np.float64,
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if iterations < 1:
            raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
        if num_projections < 1:
            raise InvalidParameterError(
                f"num_projections must be >= 1, got {num_projections}"
            )
        if mode not in _MODES:
            raise InvalidParameterError(f"mode must be one of {_MODES}, got {mode!r}")
        requested = np.dtype(dtype)
        if requested not in _DTYPES:
            raise InvalidParameterError(
                f"dtype must be float32 or float64, got {requested}"
            )
        self.iterations = int(iterations)
        self.num_projections = int(num_projections)
        self.mode = mode
        self.seed = seed
        self.dtype = requested
        self._sketches: List[np.ndarray] = []
        self._s_hat: Optional[np.ndarray] = None

    @classmethod
    def for_rank(cls, graph: DiGraph, rank: int, **kwargs) -> "RPCoSimEngine":
        """Instance following the paper's fairness rule ``K = r``."""
        return cls(graph, iterations=baseline_iterations_for_rank(rank), **kwargs)

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        n = self.num_nodes
        d = self.num_projections
        q_matrix = self.transition()

        # Iterate in float64 for stability, then store each retained
        # sketch in the requested dtype (the same cast-on-store policy
        # as CSRPlusIndex factors).  C-contiguous, so an npz round trip
        # (ApproxIndex.save/load) restores the exact memory layout and
        # reloaded replicas answer bit-identically.
        rng = np.random.default_rng(self.seed)
        sketch = rng.standard_normal((d, n)) / np.sqrt(d)
        sketches = [np.ascontiguousarray(sketch, dtype=self.dtype)]
        for _ in range(self.iterations):
            sketch = sketch @ q_matrix  # Y_{k+1} = Y_k Q (dense @ sparse)
            sketches.append(np.ascontiguousarray(sketch, dtype=self.dtype))
        self._sketches = sketches
        self.memory.charge(
            "precompute/sketches", sum(y.nbytes for y in sketches)
        )

        if self.mode == "all-pairs":
            self.memory.require("precompute/S_hat", n * n * self.dtype.itemsize)
            s_hat = np.zeros((n, n), dtype=self.dtype)
            c_power = 1.0
            for y_k in sketches:
                s_hat += c_power * (y_k.T @ y_k)
                c_power *= self.damping
            self._s_hat = s_hat
            self.memory.charge("precompute/S_hat", s_hat.nbytes)

    # ------------------------------------------------------------------
    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        n = self.num_nodes
        self.memory.require("query/S", n * query_ids.size * self.dtype.itemsize)
        if self.mode == "all-pairs":
            result = self._s_hat[:, query_ids].copy()
        else:
            result = np.zeros((n, query_ids.size), dtype=self.dtype)
            c_power = 1.0
            for y_k in self._sketches:
                result += c_power * (y_k.T @ y_k[:, query_ids])
                c_power *= self.damping
        self.memory.charge("query/S", result.nbytes)
        return result

    # ------------------------------------------------------------------
    def standard_error_bound(self) -> float:
        """Crude ``O(1/sqrt(d))`` scale of the estimator's noise.

        Each sketched inner product has standard deviation
        ``<= ||p_a|| ||p_b|| * sqrt(2/d)``; with column-substochastic
        ``Q`` the PPR norms are at most 1, and summing the series gives
        the bound ``sqrt(2/d) / (1 - c)``.
        """
        return float(np.sqrt(2.0 / self.num_projections) / (1.0 - self.damping))
