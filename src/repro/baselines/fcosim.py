"""F-CoSim — exact single-source CoSimRank with incremental updates [14].

Yu & Fan's WWW'18 method targets *evolving* graphs: exact single-source
CoSimRank whose results can be maintained as edges arrive.  The paper
under reproduction only uses it as a Table-1 complexity row and notes
it is "less efficient when employed for multi-source search on static
graphs"; its spanning-polytree internals are not described there, so
(per DESIGN.md's substitution table) this engine reproduces the
*interface and cost profile*:

* exact single-source columns via the forward/backward scheme run to a
  truncation depth chosen from ``epsilon`` (not the fairness-rule ``r``
  of CSR-RLS — this engine is exact up to ``epsilon``);
* a per-query cache, so repeated queries on a static graph are free;
* :meth:`update_edges` applies edge insertions/deletions and
  invalidates only the cached queries whose K-hop in-link neighbourhood
  can reach a touched endpoint, keeping unaffected queries warm — the
  "dynamic" value proposition of F-CoSim.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.core.base import SimilarityEngine
from repro.core.iterations import fixed_point_iterations
from repro.core.memory import sparse_nbytes
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["FCoSimEngine"]


class FCoSimEngine(SimilarityEngine):
    """Exact single-source engine with incremental edge updates."""

    name = "F-CoSim"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        epsilon: float = 1e-5,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if not (0.0 < epsilon < 1.0):
            raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        # Depth K with tail bound c^(K+1)/(1-c) < epsilon.
        self.depth = fixed_point_iterations(
            damping, epsilon * (1.0 - damping)
        )
        self._q_t: Optional[sparse.csr_matrix] = None
        self._cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        q_matrix = self.transition()
        self._q_t = q_matrix.T.tocsr()
        self.memory.charge("precompute/Q_T", sparse_nbytes(self._q_t))

    def _column(self, query: int) -> np.ndarray:
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        n = self.num_nodes
        q_matrix = self.transition()
        stack = np.zeros((self.depth + 1, n))
        stack[0, query] = 1.0
        for j in range(1, self.depth + 1):
            stack[j] = q_matrix @ stack[j - 1]
        accumulator = stack[self.depth].copy()
        for j in range(self.depth - 1, -1, -1):
            accumulator = stack[j] + self.damping * (self._q_t @ accumulator)
        self._cache[query] = accumulator
        self.memory.charge(
            "query/cache", sum(col.nbytes for col in self._cache.values())
        )
        return accumulator

    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        n = self.num_nodes
        self.memory.require("query/S", n * query_ids.size * 8)
        result = np.empty((n, query_ids.size))
        for col, query in enumerate(query_ids):
            self.check_time_budget()
            result[:, col] = self._column(int(query))
        self.memory.charge("query/S", result.nbytes)
        return result

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def update_edges(
        self,
        added: Sequence[Tuple[int, int]] = (),
        removed: Sequence[Tuple[int, int]] = (),
    ) -> int:
        """Apply edge changes and invalidate only the affected queries.

        Why the rule below is safe: with the series truncated at depth
        ``K``, the entry ``[S]_{x,q}`` only reads weighted path counts
        ``w ->^{<=K} x`` and ``w ->^{<=K} q``.  A changed edge can
        therefore alter the column of ``q`` only at rows ``x`` lying in
        ``A = forward-reach^{<=K}(touched endpoints)``, and only when
        ``x`` shares a ``<=K``-step common source ``w`` with ``q`` —
        i.e. when ``x`` lies in
        ``C_q = forward-reach^{<=K}(backward-reach^{<=K}(q))``.
        Both sets are evaluated on the *union* of the old and new graph
        (a superset of the paths of either), so
        ``A intersect C_q == empty`` guarantees the cached column is
        unchanged.  Returns the number of cache entries invalidated.
        """
        if not added and not removed:
            return 0
        added = [(int(s), int(t)) for s, t in added]
        removed = [(int(s), int(t)) for s, t in removed]
        new_graph = self.graph.with_edges_added(added).with_edges_removed(removed)
        union_graph = self.graph.with_edges_added(added)

        touched: Set[int] = set()
        for s, t in added + removed:
            touched.add(s)
            touched.add(t)

        affected = _forward_reach(union_graph, touched, self.depth)
        invalidated = []
        for q in list(self._cache):
            sources = _backward_reach(union_graph, {q}, self.depth)
            interaction = _forward_reach(union_graph, sources, self.depth)
            if affected & interaction:
                invalidated.append(q)
        for q in invalidated:
            del self._cache[q]

        self.graph = new_graph
        self._transition = None
        self._q_t = self.transition().T.tocsr()
        self.memory.charge("precompute/Q_T", sparse_nbytes(self._q_t))
        return len(invalidated)

    @property
    def cache_size(self) -> int:
        """Number of cached single-source columns."""
        return len(self._cache)


def _forward_reach(graph: DiGraph, seeds: Set[int], hops: int) -> Set[int]:
    """Nodes reachable from ``seeds`` within ``hops`` steps along edges."""
    frontier = set(seeds)
    reached = set(seeds)
    for _ in range(hops):
        next_frontier: Set[int] = set()
        for node in frontier:
            for nbr in graph.out_neighbors(node):
                nbr = int(nbr)
                if nbr not in reached:
                    reached.add(nbr)
                    next_frontier.add(nbr)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached


def _backward_reach(graph: DiGraph, seeds: Set[int], hops: int) -> Set[int]:
    """Nodes that can reach ``seeds`` within ``hops`` steps along edges."""
    frontier = set(seeds)
    reached = set(seeds)
    for _ in range(hops):
        next_frontier: Set[int] = set()
        for node in frontier:
            for nbr in graph.in_neighbors(node):
                nbr = int(nbr)
                if nbr not in reached:
                    reached.add(nbr)
                    next_frontier.add(nbr)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached
