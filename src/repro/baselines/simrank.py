"""Jeh & Widom's SimRank — the contrast model of the paper's §2.

SimRank solves Eq. (2), ``S = max(c Q^T S Q, I_n)`` entrywise: the
diagonal is pinned to exactly 1 and off-diagonal entries measure the
*first* meeting time of two reverse random surfers.  CoSimRank (Eq. 1)
instead adds ``I_n``, accumulating *all* meeting times.

This engine exists to make the paper's historical point testable:
Li et al. [4] believed their linear system approximated SimRank, but
[13] proved it solves the scaled CoSimRank equation instead.  The test
suite verifies both halves — Li et al.'s solution equals
``(1 - c) * CoSimRank`` exactly, and genuinely differs from SimRank.

Implementation: the standard dense fixed-point iteration

    S_{k+1} = c Q^T S_k Q;   diag(S_{k+1}) := 1

starting from ``S_0 = I``, run until the max-norm update falls below
``epsilon`` (geometric convergence at rate ``c``).  ``O(n^2)`` memory,
budget-checked — a reference implementation for small graphs, like the
exact CoSimRank solver.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SimilarityEngine
from repro.core.iterations import fixed_point_iterations
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["SimRankEngine", "simrank_matrix"]


def simrank_matrix(
    q_dense: np.ndarray, damping: float, epsilon: float = 1e-10, tick=None
) -> np.ndarray:
    """Dense fixed-point SimRank to accuracy ``epsilon``."""
    n = q_dense.shape[0]
    s_matrix = np.eye(n)
    diag = np.arange(n)
    for _ in range(fixed_point_iterations(damping, epsilon) + 1):
        if tick is not None:
            tick()
        s_matrix = damping * (q_dense.T @ s_matrix @ q_dense)
        s_matrix[diag, diag] = 1.0
    return s_matrix


class SimRankEngine(SimilarityEngine):
    """Reference SimRank (Eq. 2) engine for small graphs."""

    name = "SimRank"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        epsilon: float = 1e-10,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if not (0.0 < epsilon < 1.0):
            raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._s_matrix: Optional[np.ndarray] = None

    def _prepare_impl(self) -> None:
        n = self.num_nodes
        self.memory.require("precompute/S", 3 * n * n * 8)
        q_dense = self.transition().toarray()
        self.memory.charge("precompute/Q_dense", q_dense.nbytes)
        self._s_matrix = simrank_matrix(
            q_dense, self.damping, self.epsilon, tick=self.check_time_budget
        )
        self.memory.charge("precompute/S", self._s_matrix.nbytes)
        self.memory.release("precompute/Q_dense")

    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        result = self._s_matrix[:, query_ids].copy()
        self.memory.charge("query/S", result.nbytes)
        return result
