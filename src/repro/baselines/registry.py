"""Name-based engine registry.

The experiment harness and CLI refer to engines by the names the paper
uses ("CSR+", "CSR-NI", "CSR-IT", "CSR-RLS", ...).  The registry maps
those names to factory callables that accept a graph plus the shared
experiment parameters and return a ready-to-prepare engine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.baselines.cosimmate import CoSimMateEngine
from repro.baselines.exact import ExactCoSimRank
from repro.baselines.fcosim import FCoSimEngine
from repro.baselines.iterative import CSRITEngine
from repro.baselines.ni import CSRNIEngine
from repro.baselines.rls import CSRRLSEngine
from repro.baselines.rpcosim import RPCoSimEngine
from repro.core.base import SimilarityEngine
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.core.iterations import baseline_iterations_for_rank
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["make_engine", "engine_names", "COMPARISON_ENGINES"]

#: The competitor set of the paper's figures (§4.1 "Competitors").
COMPARISON_ENGINES = ("CSR+", "CSR-RLS", "CSR-IT", "CSR-NI")


def _make_csr_plus(graph, damping, rank, budget) -> SimilarityEngine:
    config = CSRPlusConfig(damping=damping, rank=rank, memory_budget_bytes=budget)
    return CSRPlusIndex(graph, config)


def _make_ni(graph, damping, rank, budget) -> SimilarityEngine:
    return CSRNIEngine(graph, damping=damping, rank=rank, memory_budget_bytes=budget)


def _make_it(graph, damping, rank, budget) -> SimilarityEngine:
    return CSRITEngine(
        graph,
        damping=damping,
        iterations=baseline_iterations_for_rank(rank),
        memory_budget_bytes=budget,
    )


def _make_rls(graph, damping, rank, budget) -> SimilarityEngine:
    return CSRRLSEngine(
        graph,
        damping=damping,
        iterations=baseline_iterations_for_rank(rank),
        memory_budget_bytes=budget,
    )


def _make_cosimmate(graph, damping, rank, budget) -> SimilarityEngine:
    return CoSimMateEngine(graph, damping=damping, memory_budget_bytes=budget)


def _make_rpcosim(graph, damping, rank, budget) -> SimilarityEngine:
    return RPCoSimEngine(
        graph,
        damping=damping,
        iterations=baseline_iterations_for_rank(rank),
        memory_budget_bytes=budget,
    )


def _make_fcosim(graph, damping, rank, budget) -> SimilarityEngine:
    return FCoSimEngine(graph, damping=damping, memory_budget_bytes=budget)


def _make_exact(graph, damping, rank, budget) -> SimilarityEngine:
    return ExactCoSimRank(graph, damping=damping, memory_budget_bytes=budget)


_FACTORIES: Dict[str, Callable[..., SimilarityEngine]] = {
    "CSR+": _make_csr_plus,
    "CSR-NI": _make_ni,
    "CSR-IT": _make_it,
    "CSR-RLS": _make_rls,
    "CoSimMate": _make_cosimmate,
    "RP-CoSim": _make_rpcosim,
    "F-CoSim": _make_fcosim,
    "Exact": _make_exact,
}


def engine_names() -> List[str]:
    """All registered engine names."""
    return list(_FACTORIES)


def make_engine(
    name: str,
    graph: DiGraph,
    damping: float = 0.6,
    rank: int = 5,
    memory_budget_bytes: Optional[int] = None,
) -> SimilarityEngine:
    """Instantiate the engine registered under ``name``.

    ``rank`` doubles as the iteration count of the iterative baselines,
    per the paper's fairness rule (§4.1).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown engine {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory(graph, damping, rank, memory_budget_bytes)
