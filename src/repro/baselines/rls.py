"""CSR-RLS — Kusumoto et al.'s linearised per-query method [2].

Kusumoto, Maehara and Kawarabayashi's SIGMOD'14 technique evaluates
linear-recursive similarities one seed at a time through a
forward/backward pass over the power series.  Applied to CoSimRank
(as the paper does for its CSR-RLS competitor), a single-source column
is

    [S]_{*,q} = sum_{k=0}^{K} c^k (Q^T)^k Q^k e_q

computed as

    forward:   x_j = Q^j e_q                       (j = 0..K)
    backward:  u_K = x_K;   u_{j} = x_j + c Q^T u_{j+1}
    result:    [S]_{*,q} = u_0

i.e. ``2K`` sparse mat-vecs and a ``(K+1) x n`` scratch stack *per
query*.  Nothing is shared across queries — exactly the duplicate work
(Example 1.1) that makes the method's total time grow linearly with
``|Q|`` in Figure 5.

Iterations default to the paper's fairness rule ``K = r``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.base import SimilarityEngine
from repro.core.iterations import baseline_iterations_for_rank
from repro.core.memory import sparse_nbytes
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["CSRRLSEngine"]


class CSRRLSEngine(SimilarityEngine):
    """Per-query forward/backward CoSimRank (time linear in ``|Q|``)."""

    name = "CSR-RLS"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        iterations: int = 5,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if iterations < 1:
            raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
        self.iterations = int(iterations)
        self._q_t: Optional[sparse.csr_matrix] = None

    @classmethod
    def for_rank(cls, graph: DiGraph, rank: int, **kwargs) -> "CSRRLSEngine":
        """Instance following the paper's fairness rule ``K = r``."""
        return cls(graph, iterations=baseline_iterations_for_rank(rank), **kwargs)

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        # The only offline work is materialising Q and its transpose —
        # the method is fundamentally online, which is its weakness.
        q_matrix = self.transition()
        self._q_t = q_matrix.T.tocsr()
        self.memory.charge("precompute/Q_T", sparse_nbytes(self._q_t))

    # ------------------------------------------------------------------
    def _single_query_column(self, query: int) -> np.ndarray:
        n = self.num_nodes
        k_iters = self.iterations
        q_matrix = self.transition()

        # Forward pass: x_j = Q^j e_q, stored for the backward pass.
        stack = np.zeros((k_iters + 1, n))
        stack[0, query] = 1.0
        for j in range(1, k_iters + 1):
            stack[j] = q_matrix @ stack[j - 1]
        self.memory.charge("query/ppr_stack", stack.nbytes)

        # Backward pass: u = x_j + c Q^T u.
        accumulator = stack[k_iters].copy()
        for j in range(k_iters - 1, -1, -1):
            accumulator = stack[j] + self.damping * (self._q_t @ accumulator)
        return accumulator

    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        n = self.num_nodes
        self.memory.require("query/S", n * query_ids.size * 8)
        result = np.empty((n, query_ids.size))
        # Deliberately one query at a time: the repeated computation
        # across queries is the behaviour the paper measures.
        for col, query in enumerate(query_ids):
            self.check_time_budget()
            result[:, col] = self._single_query_column(int(query))
        self.memory.charge("query/S", result.nbytes)
        self.memory.release("query/ppr_stack")
        return result
