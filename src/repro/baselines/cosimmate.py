"""CoSimMate — Yu & McCann's repeated-squaring all-pairs method [11].

CoSimMate cuts the iteration count exponentially by squaring the walk
matrix:

    S_0 = I,  W_0 = Q
    S_{t+1} = S_t + c^(2^t) W_t^T S_t W_t
    W_{t+1} = W_t^2

after ``t`` steps ``S_t = sum_{j=0}^{2^t - 1} c^j (Q^j)^T Q^j``, so
``ceil(log2 log_c eps)`` steps suffice — but both ``S_t`` and the
squared ``W_t`` must be memoised, and their fill-in is what Table 1
records as ``O(n^2)`` space.  All products are budget-checked with nnz
upper bounds before allocation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.base import SimilarityEngine
from repro.core.memory import sparse_nbytes
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.linalg.sparse_utils import sparse_bytes_for_nnz, spmm_nnz_upper_bound
from repro.linalg.stein import squaring_iteration_count

__all__ = ["CoSimMateEngine"]


class CoSimMateEngine(SimilarityEngine):
    """All-pairs CoSimRank by repeated squaring of the walk matrix."""

    name = "CoSimMate"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        epsilon: float = 1e-5,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if not (0.0 < epsilon < 1.0):
            raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._s_matrix: Optional[sparse.csr_matrix] = None
        self.squaring_steps: int = 0

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        n = self.num_nodes
        q_matrix = self.transition()
        steps = squaring_iteration_count(self.damping, self.epsilon) + 1
        self.squaring_steps = steps

        s_matrix = sparse.identity(n, format="csr")
        w_matrix = q_matrix.copy()
        self.memory.charge("precompute/S", sparse_nbytes(s_matrix))
        self.memory.charge("precompute/W", sparse_nbytes(w_matrix))
        c_power = self.damping  # c^(2^t) for the current t

        for _ in range(steps):
            self.check_time_budget()
            w_t = w_matrix.T.tocsr()
            bound_left = spmm_nnz_upper_bound(w_t, s_matrix)
            self.memory.require("precompute/WtS", sparse_bytes_for_nnz(bound_left))
            left = w_t @ s_matrix
            self.memory.charge("precompute/WtS", sparse_nbytes(left))

            bound_full = spmm_nnz_upper_bound(left, w_matrix)
            self.memory.require("precompute/S_next", sparse_bytes_for_nnz(bound_full))
            s_matrix = (s_matrix + c_power * (left @ w_matrix)).tocsr()
            self.memory.release("precompute/WtS")
            self.memory.charge("precompute/S", sparse_nbytes(s_matrix))

            bound_square = spmm_nnz_upper_bound(w_matrix, w_matrix)
            self.memory.require("precompute/W_next", sparse_bytes_for_nnz(bound_square))
            w_matrix = (w_matrix @ w_matrix).tocsr()
            self.memory.charge("precompute/W", sparse_nbytes(w_matrix))

            c_power = c_power * c_power
        self._s_matrix = s_matrix

    # ------------------------------------------------------------------
    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        n = self.num_nodes
        self.memory.require("query/S", n * query_ids.size * 8)
        columns = self._s_matrix.tocsc()[:, query_ids]
        result = np.asarray(columns.todense())
        self.memory.charge("query/S", result.nbytes)
        return result
