"""CSR-NI — Li et al.'s non-iterative SVD method [4], the paper's §2 recap.

This is the *literal* algorithm the paper criticises, Kronecker products
and all:

Precomputation (Eq. 6b)
    1. rank-``r`` SVD with ``Q^T = U Sigma V^T`` (same convention as
       CSR+, see :mod:`repro.core.index`);
    2. materialise the tensor products ``U kron U`` and ``V kron V``
       (each ``n^2 x r^2`` — the ``O(r^2 n^2)`` memory the paper calls
       cost-inhibitive);
    3. ``M = (V kron V)^T (U kron U)`` by literal matrix product
       (``O(r^4 n^2)`` time);
    4. ``Lambda = ((Sigma kron Sigma)^{-1} - c M)^{-1}``  (``r^2 x r^2``).

Online query (Eq. 6a)
    ``vec(S) = vec(I_n) + c (U kron U) Lambda (V kron V)^T vec(I_n)``,
    then the requested columns are sliced out of the unvec'd ``S``.

Every large intermediate is charged to the memory meter *before*
allocation, so on graphs where the paper reports CSR-NI crashing, this
implementation raises :class:`~repro.errors.MemoryBudgetExceeded`
instead of taking the machine down.

Because CSR+ (Theorems 3.1–3.5) is an exact algebraic rewriting of this
pipeline, ``CSRNIEngine`` and :class:`~repro.core.index.CSRPlusIndex`
produce identical similarities at equal rank — the losslessness claim
verified in the test suite and Table 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SimilarityEngine
from repro.errors import DecompositionError, InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.linalg.kronecker import unvec, vec_identity
from repro.linalg.svd import truncated_svd

__all__ = ["CSRNIEngine"]


class CSRNIEngine(SimilarityEngine):
    """Li et al. 2010's low-rank method with literal tensor products."""

    name = "CSR-NI"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        rank: int = 5,
        svd_seed: int = 0,
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if rank < 1:
            raise InvalidParameterError(f"rank must be >= 1, got {rank}")
        if rank > max(1, graph.num_nodes):
            raise InvalidParameterError(
                f"rank {rank} exceeds the number of nodes {graph.num_nodes}"
            )
        self.rank = int(rank)
        self.svd_seed = svd_seed
        self._kron_u: Optional[np.ndarray] = None
        self._kron_v: Optional[np.ndarray] = None
        self._lambda: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        n = self.num_nodes
        r = self.rank
        q_matrix = self.transition()

        with self._stage("svd", rank=r):
            svd = truncated_svd(q_matrix, r, seed=self.svd_seed)
        # Paper convention: Q^T = U Sigma V^T, hence U := V_q, V := U_q.
        u_factor, v_factor, sigma = svd.v, svd.u, svd.sigma
        if np.any(sigma <= 0):
            raise DecompositionError(
                "CSR-NI needs strictly positive singular values to invert "
                "Sigma kron Sigma; lower the rank"
            )
        self.memory.charge("precompute/U", u_factor.nbytes)
        self.memory.charge("precompute/V", v_factor.nbytes)

        # The cost-inhibitive tensor products (checked before allocation).
        with self._stage("kronecker"):
            kron_bytes = (n * n) * (r * r) * 8
            self.memory.require("precompute/U_kron_U", kron_bytes)
            kron_u = np.kron(u_factor, u_factor)
            self.memory.charge("precompute/U_kron_U", kron_u.nbytes)

            self.memory.require("precompute/V_kron_V", kron_bytes)
            kron_v = np.kron(v_factor, v_factor)
            self.memory.charge("precompute/V_kron_V", kron_v.nbytes)

        with self._stage("assemble"):
            # (V kron V)^T (U kron U): the O(r^4 n^2) product of Eq. (6b).
            m_matrix = kron_v.T @ kron_u
            self.memory.charge("precompute/M", m_matrix.nbytes)

            sigma_kron_inv = np.diag(1.0 / np.kron(sigma, sigma))
            try:
                lambda_matrix = np.linalg.inv(
                    sigma_kron_inv - self.damping * m_matrix
                )
            except np.linalg.LinAlgError as exc:
                raise DecompositionError(f"Lambda inverse failed: {exc}") from exc
            self.memory.charge("precompute/Lambda", lambda_matrix.nbytes)

        self._kron_u = kron_u
        self._kron_v = kron_v
        self._lambda = lambda_matrix
        self.memory.release("precompute/M")

    # ------------------------------------------------------------------
    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        n = self.num_nodes
        # Eq. (6a), literally: the redundant (V kron V)^T vec(I_n) product
        # included (its removal is CSR+'s Theorem 3.2, not CSR-NI).
        self.memory.require("query/vecS", n * n * 8)
        rhs = self._kron_v.T @ vec_identity(n)          # r^2 vector
        middle = self._lambda @ rhs                      # r^2 vector
        vec_s = vec_identity(n) + self.damping * (self._kron_u @ middle)
        self.memory.charge("query/vecS", vec_s.nbytes)
        s_matrix = unvec(vec_s, n, n)
        result = s_matrix[:, query_ids].copy()
        self.memory.charge("query/S", result.nbytes)
        return result
