"""Rothe & Schütze's single-pair CoSimRank with early termination.

Besides the single-source method (our CSR-IT/CSR-RLS ancestors), the
original CoSimRank paper [6] gives a *single-pair* algorithm: iterate
the two PPR vectors side by side and accumulate

    S[a, b] = sum_k c^k <p_a^(k), p_b^(k)>,

stopping as soon as the geometric tail bound ``c^(k+1)/(1 - c)``
(each inner product of sub-stochastic vectors is at most 1) drops below
the requested accuracy — or earlier, when one of the walks dies out
(reaches an all-dangling frontier).

This is the right tool when only a handful of pairs is needed and no
index exists yet; the test suite also uses it as an independent
implementation to cross-check the engines.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError, QueryError
from repro.graphs.digraph import DiGraph
from repro.graphs.transition import transition_matrix

__all__ = ["single_pair_cosimrank"]


def single_pair_cosimrank(
    graph: DiGraph,
    a: int,
    b: int,
    damping: float = 0.6,
    epsilon: float = 1e-8,
    max_iterations: int = 10_000,
    dangling: str = "zero",
) -> Tuple[float, int]:
    """``([S]_{a,b}, iterations_used)`` by paired PPR iteration.

    Parameters
    ----------
    graph, damping, dangling:
        As for the engines.
    epsilon:
        Absolute accuracy target; iteration stops once the remaining
        tail is provably below it.
    max_iterations:
        Safety bound (never reached for valid ``damping``).
    """
    if not (0.0 < damping < 1.0):
        raise InvalidParameterError(f"damping must be in (0, 1), got {damping}")
    if not (0.0 < epsilon < 1.0):
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    n = graph.num_nodes
    for node in (a, b):
        if not (0 <= int(node) < n):
            raise QueryError(f"node {node} out of range for graph with {n} nodes")

    q_matrix = transition_matrix(graph, dangling=dangling)
    p_a = np.zeros(n)
    p_a[int(a)] = 1.0
    p_b = np.zeros(n)
    p_b[int(b)] = 1.0

    total = float(p_a @ p_b)  # k = 0 term (1 if a == b else 0)
    c_power = damping
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        p_a = q_matrix @ p_a
        p_b = q_matrix @ p_b
        # dead walk: all further terms vanish
        if not p_a.any() or not p_b.any():
            break
        total += c_power * float(p_a @ p_b)
        # remaining tail <= c^(k+1) / (1 - c) since each <p,p'> <= 1
        if c_power * damping / (1.0 - damping) < epsilon:
            break
        c_power *= damping
    return total, iterations
