"""Exact CoSimRank — the ground truth for every accuracy experiment.

Two interchangeable methods, both solving Eq. (1) ``S = c Q^T S Q + I``:

* dense fixed-point iteration until the max-norm update falls below a
  tolerance (the default; ``O(K n^3)`` time but trivially correct);
* the direct linear solve ``vec(S) = (I - c(Q kron Q)^T)^{-1} vec(I)``
  of Eq. (5) (``O(n^6)`` — tiny graphs only, used to cross-check the
  iteration in tests).

Both are ``O(n^2)`` memory and budget-checked, so they refuse to run on
graphs where the dense matrix would not fit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SimilarityEngine
from repro.core.iterations import fixed_point_iterations
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph

__all__ = ["ExactCoSimRank", "exact_cosimrank_matrix", "exact_cosimrank_direct"]


def exact_cosimrank_matrix(
    q_dense: np.ndarray,
    damping: float,
    epsilon: float = 1e-12,
    tick=None,
) -> np.ndarray:
    """Dense fixed-point solve of ``S = c Q^T S Q + I`` to ``epsilon``.

    ``tick``, if given, is called once per iteration (used for the
    cooperative time budget).
    """
    n = q_dense.shape[0]
    identity = np.eye(n)
    s_matrix = identity.copy()
    for _ in range(fixed_point_iterations(damping, epsilon) + 1):
        if tick is not None:
            tick()
        s_matrix = damping * (q_dense.T @ s_matrix @ q_dense) + identity
    return s_matrix


def exact_cosimrank_direct(q_dense: np.ndarray, damping: float) -> np.ndarray:
    """Closed-form solve via Eq. (5); ``O(n^6)``, tiny graphs only."""
    n = q_dense.shape[0]
    if n > 64:
        raise InvalidParameterError(
            f"direct vec-solve is O(n^6); refusing n={n} > 64"
        )
    system = np.eye(n * n) - damping * np.kron(q_dense.T, q_dense.T)
    rhs = np.eye(n).reshape(-1, order="F")
    solution = np.linalg.solve(system, rhs)
    return solution.reshape(n, n, order="F")


class ExactCoSimRank(SimilarityEngine):
    """Reference engine computing CoSimRank to machine-level accuracy.

    Parameters
    ----------
    graph, damping, memory_budget_bytes:
        As for every :class:`SimilarityEngine`.
    epsilon:
        Convergence tolerance of the fixed-point iteration (default
        ``1e-12``, i.e. far below any approximation error under study).
    method:
        ``"iteration"`` (default) or ``"direct"`` (Eq. 5, n <= 64).
    """

    name = "Exact"

    def __init__(
        self,
        graph: DiGraph,
        damping: float = 0.6,
        epsilon: float = 1e-12,
        method: str = "iteration",
        memory_budget_bytes: Optional[int] = None,
        dangling: str = "zero",
    ):
        super().__init__(graph, damping, memory_budget_bytes, dangling)
        if method not in ("iteration", "direct"):
            raise InvalidParameterError(
                f"method must be 'iteration' or 'direct', got {method!r}"
            )
        if not (0.0 < epsilon < 1.0):
            raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.method = method
        self._s_matrix: Optional[np.ndarray] = None

    def _prepare_impl(self) -> None:
        n = self.num_nodes
        self.memory.require("precompute/S", 3 * n * n * 8)
        q_dense = self.transition().toarray()
        self.memory.charge("precompute/Q_dense", q_dense.nbytes)
        if self.method == "direct":
            self._s_matrix = exact_cosimrank_direct(q_dense, self.damping)
        else:
            self._s_matrix = exact_cosimrank_matrix(
                q_dense, self.damping, self.epsilon, tick=self.check_time_budget
            )
        self.memory.charge("precompute/S", self._s_matrix.nbytes)
        self.memory.release("precompute/Q_dense")

    def _query_impl(self, query_ids: np.ndarray) -> np.ndarray:
        result = self._s_matrix[:, query_ids].copy()
        self.memory.charge("query/S", result.nbytes)
        return result
