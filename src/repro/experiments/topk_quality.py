"""Top-k ranking quality vs rank — an extension experiment.

The paper evaluates accuracy only through AvgDiff (Table 3), which
averages over all ``n x |Q|`` entries.  Applications consume the *head*
of each ranking, and on heavy-tailed graphs the low-rank pipeline can
miss localized head scores even when AvgDiff is tiny (see
EXPERIMENTS.md, deviation 6).  This experiment makes that visible:
precision@k of CSR+'s top-k against the exact top-k, swept over the
rank, per dataset stand-in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.exact import ExactCoSimRank
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.datasets.registry import load_dataset
from repro.experiments.report import ExperimentResult
from repro.metrics.ranking import precision_at_k

__all__ = ["topk_quality"]


def topk_quality(
    datasets: Sequence[Tuple[str, str]] = (("FB", "small"), ("YT", "tiny")),
    ranks: Sequence[int] = (5, 25, 100),
    k: int = 10,
    num_queries: int = 20,
    damping: float = 0.6,
) -> ExperimentResult:
    """Mean precision@k of CSR+'s top-k vs exact, per dataset and rank.

    The largest requested rank is built once per dataset and the
    smaller ranks derived with
    :meth:`CSRPlusIndex.truncate_to_rank` — one SVD per dataset.
    """
    ranks = sorted({int(r) for r in ranks})
    rows: List[Dict[str, object]] = []
    for key, tier in datasets:
        graph = load_dataset(key, tier)
        usable_ranks = [r for r in ranks if r < graph.num_nodes]
        if not usable_ranks:
            continue
        queries = sample_queries(
            graph, min(num_queries, graph.num_nodes), seed=7
        )
        exact = ExactCoSimRank(graph, damping=damping, epsilon=1e-12)
        exact.prepare()
        exact_tops = {}
        for q in queries:
            scores = exact.single_source(int(q))
            order = np.lexsort((np.arange(scores.size), -scores))
            exact_tops[int(q)] = order[order != int(q)][:k]

        base = CSRPlusIndex(
            graph, CSRPlusConfig(damping=damping, rank=max(usable_ranks))
        ).prepare()
        for rank in usable_ranks:
            index = (
                base if rank == max(usable_ranks) else base.truncate_to_rank(rank)
            )
            precisions = [
                precision_at_k(
                    index.top_k(int(q), k).tolist(),
                    exact_tops[int(q)].tolist(),
                    k,
                )
                for q in queries
            ]
            rows.append(
                {
                    "dataset": key,
                    "r": rank,
                    f"precision@{k}": f"{float(np.mean(precisions)):.3f}",
                    "precision_value": float(np.mean(precisions)),
                }
            )
    return ExperimentResult(
        exp_id="topk-quality",
        title=f"Head-of-ranking quality: precision@{k} of CSR+ vs exact",
        columns=["dataset", "r", f"precision@{k}"],
        rows=rows,
        parameters={"k": k, "|Q|": num_queries, "c": damping},
        notes=[
            "AvgDiff (Table 3) hides head errors on skewed graphs; this "
            "sweep shows how much rank the *ranking* itself needs.",
        ],
    )
