"""Generic engine x dataset x parameter sweeps.

The figure runners hard-code the paper's sweeps; :func:`sweep` exposes
the same machinery for custom studies ("my graph, my engines, my
grids") and returns a tidy :class:`ExperimentResult` — one row per
configuration with both formatted and raw columns.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.datasets.queries import sample_queries
from repro.errors import InvalidParameterError
from repro.experiments.harness import (
    DEFAULT_MEMORY_BUDGET,
    DEFAULT_TIME_BUDGET,
    format_bytes,
    format_seconds,
    measure,
)
from repro.experiments.report import ExperimentResult
from repro.graphs.digraph import DiGraph

__all__ = ["sweep"]


def sweep(
    graphs: Dict[str, DiGraph],
    engines: Sequence[str] = ("CSR+",),
    ranks: Sequence[int] = (5,),
    q_sizes: Sequence[int] = (100,),
    damping: float = 0.6,
    memory_budget_bytes: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget_seconds: Optional[float] = DEFAULT_TIME_BUDGET,
    query_seed: int = 7,
    title: str = "custom sweep",
) -> ExperimentResult:
    """Measure every (graph, engine, rank, |Q|) combination.

    Each row carries ``status``, formatted ``time``/``memory`` cells,
    and raw ``seconds``/``bytes`` values (``None`` when the run did not
    complete).
    """
    if not graphs:
        raise InvalidParameterError("sweep needs at least one graph")
    if not engines:
        raise InvalidParameterError("sweep needs at least one engine")
    rows = []
    for graph_name, graph in graphs.items():
        for q_size in q_sizes:
            queries = sample_queries(
                graph, min(int(q_size), graph.num_nodes), seed=query_seed
            )
            for rank in ranks:
                for engine in engines:
                    record = measure(
                        engine,
                        graph,
                        queries,
                        rank=int(rank),
                        damping=damping,
                        memory_budget_bytes=memory_budget_bytes,
                        time_budget_seconds=time_budget_seconds,
                    )
                    rows.append(
                        {
                            "graph": graph_name,
                            "engine": engine,
                            "r": int(rank),
                            "|Q|": int(queries.size),
                            "status": record.status,
                            "time": (
                                format_seconds(record.total_seconds)
                                if record.completed
                                else record.status.upper()
                            ),
                            "memory": format_bytes(record.peak_bytes),
                            "seconds": (
                                record.total_seconds if record.completed else None
                            ),
                            "bytes": (
                                record.peak_bytes if record.completed else None
                            ),
                        }
                    )
    return ExperimentResult(
        exp_id="sweep",
        title=title,
        columns=["graph", "engine", "r", "|Q|", "status", "time", "memory"],
        rows=rows,
        parameters={
            "c": damping,
            "memory_budget": (
                format_bytes(memory_budget_bytes) if memory_budget_bytes else "none"
            ),
        },
    )
