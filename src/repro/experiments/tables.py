"""Runners for the paper's tables.

* :func:`tab3` — the accuracy study of §4.2.3: AvgDiff of CSR+ (and
  CSR-NI where it fits in memory) against the exact CoSimRank, across
  ranks, with the losslessness check CSR+ == CSR-NI.
* :func:`tab1` — Table 1 validated empirically: scaling exponents of
  each algorithm's measured time as ``n`` and ``r`` grow, compared with
  the stated complexity.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.ni import CSRNIEngine
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.datasets.registry import load_dataset
from repro.errors import MemoryBudgetExceeded
from repro.experiments.harness import DEFAULT_MEMORY_BUDGET, measure
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import erdos_renyi
from repro.metrics.accuracy import avg_diff, max_diff

__all__ = ["tab3", "tab1"]

QUERY_SEED = 7

#: Table 3's rank grid.
TAB3_RANKS: Tuple[int, ...] = (25, 50, 100, 200)

#: Theoretical complexities from Table 1 (for the report only).
_THEORY_TIME = {
    "CSR+": "O(r(m + n(r + |Q|)))",
    "CSR-NI": "O(r^4 n^2 + r^4 n |Q|)",
    "CSR-IT": "O(n^2 log(1/eps) |Q|)",
    "CSR-RLS": "O(K m |Q|)",
}


def tab3(
    datasets: Sequence[Tuple[str, str]] = (("FB", "small"), ("P2P", "small")),
    ranks: Sequence[int] = TAB3_RANKS,
    q_size: int = 100,
    damping: float = 0.6,
    memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
) -> ExperimentResult:
    """Table 3: AvgDiff of CSR+/CSR-NI vs the exact CoSimRank.

    CSR-NI is attempted at each rank under the memory budget; cells
    where it cannot materialise its tensor products read "OOM" (on the
    paper's 256 GB server it survived — at our laptop stand-in scale it
    cannot, which is itself the paper's scalability point).  Wherever
    both run, the CSR+ == CSR-NI losslessness is checked bit-for-bit
    and reported in the ``lossless`` column.
    """
    rows: List[Dict[str, object]] = []
    for key, tier in datasets:
        graph = load_dataset(key, tier)
        queries = sample_queries(graph, min(q_size, graph.num_nodes), seed=QUERY_SEED)
        exact = ExactCoSimRank(graph, damping=damping, epsilon=1e-12)
        exact_block = exact.query(queries)
        for rank in ranks:
            if rank >= graph.num_nodes:
                continue
            config = CSRPlusConfig(damping=damping, rank=rank)
            plus_block = CSRPlusIndex(graph, config).query(queries)
            row: Dict[str, object] = {
                "dataset": key,
                "r": rank,
                "AvgDiff(CSR+)": f"{avg_diff(plus_block, exact_block):.4e}",
                "avg_diff_value": avg_diff(plus_block, exact_block),
            }
            try:
                ni = CSRNIEngine(
                    graph,
                    damping=damping,
                    rank=rank,
                    memory_budget_bytes=memory_budget,
                )
                ni_block = ni.query(queries)
            except MemoryBudgetExceeded:
                row["AvgDiff(CSR-NI)"] = "OOM"
                row["lossless"] = "n/a"
            else:
                row["AvgDiff(CSR-NI)"] = f"{avg_diff(ni_block, exact_block):.4e}"
                row["lossless"] = (
                    "yes" if max_diff(plus_block, ni_block) < 1e-8 else "NO"
                )
            rows.append(row)
    return ExperimentResult(
        exp_id="tab3",
        title="AvgDiff of CSR+ and CSR-NI vs exact CoSimRank",
        columns=["dataset", "r", "AvgDiff(CSR+)", "AvgDiff(CSR-NI)", "lossless"],
        rows=rows,
        parameters={"|Q|": q_size, "c": damping, "datasets": dict(datasets)},
        notes=[
            "AvgDiff decreases mildly as r grows (paper Table 3); "
            "'lossless' = CSR+ and CSR-NI agree to < 1e-8 wherever CSR-NI fits.",
        ],
    )


# ----------------------------------------------------------------------
# Table 1 — complexity table validated by scaling fits
# ----------------------------------------------------------------------
def _fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x)."""
    xs_arr = np.log(np.asarray(xs, dtype=np.float64))
    ys_arr = np.log(np.maximum(np.asarray(ys, dtype=np.float64), 1e-9))
    slope, _ = np.polyfit(xs_arr, ys_arr, deg=1)
    return float(slope)


def tab1(
    n_grid: Sequence[int] = (400, 800, 1600),
    r_grid: Sequence[int] = (4, 8, 16),
    edges_per_node: int = 4,
    q_size: int = 50,
    damping: float = 0.6,
    repeats: int = 3,
) -> ExperimentResult:
    """Table 1, empirically: fitted time-scaling exponents per algorithm.

    Engines run on Erdős–Rényi graphs over an ``n`` grid (fixed
    ``r = r_grid[0]``) and over an ``r`` grid (fixed ``n = n_grid[0]``);
    the log-log slope of total time is reported next to the published
    complexity.  Exponents are indicative (small grids, wall-clock
    noise) — the test suite only asserts the orderings that matter,
    e.g. CSR-NI's r-exponent far above CSR+'s.
    """
    engines = ("CSR+", "CSR-NI", "CSR-IT", "CSR-RLS")
    times_by_n: Dict[str, List[float]] = {name: [] for name in engines}
    times_by_r: Dict[str, List[float]] = {name: [] for name in engines}

    for n in n_grid:
        graph = erdos_renyi(n, edges_per_node * n, seed=11)
        queries = sample_queries(graph, min(q_size, n), seed=QUERY_SEED)
        for name in engines:
            best = math.inf
            for _ in range(repeats):
                record = measure(
                    name,
                    graph,
                    queries,
                    rank=r_grid[0],
                    damping=damping,
                    memory_budget_bytes=None,
                    time_budget_seconds=None,
                )
                best = min(best, record.total_seconds)
            times_by_n[name].append(best)

    base_graph = erdos_renyi(n_grid[0], edges_per_node * n_grid[0], seed=11)
    base_queries = sample_queries(base_graph, min(q_size, n_grid[0]), seed=QUERY_SEED)
    for rank in r_grid:
        for name in engines:
            best = math.inf
            for _ in range(repeats):
                record = measure(
                    name,
                    base_graph,
                    base_queries,
                    rank=rank,
                    damping=damping,
                    memory_budget_bytes=None,
                    time_budget_seconds=None,
                )
                best = min(best, record.total_seconds)
            times_by_r[name].append(best)

    rows = []
    for name in engines:
        rows.append(
            {
                "algorithm": name,
                "theoretical time": _THEORY_TIME[name],
                "fitted n-exponent": f"{_fit_exponent(n_grid, times_by_n[name]):.2f}",
                "fitted r-exponent": f"{_fit_exponent(r_grid, times_by_r[name]):.2f}",
                "n_exponent_value": _fit_exponent(n_grid, times_by_n[name]),
                "r_exponent_value": _fit_exponent(r_grid, times_by_r[name]),
            }
        )
    return ExperimentResult(
        exp_id="tab1",
        title="Table 1 complexities, validated by empirical scaling fits",
        columns=["algorithm", "theoretical time", "fitted n-exponent", "fitted r-exponent"],
        rows=rows,
        parameters={
            "n_grid": tuple(n_grid),
            "r_grid": tuple(r_grid),
            "m/n": edges_per_node,
            "|Q|": q_size,
        },
        notes=[
            "Exponents are log-log least-squares slopes of best-of-"
            f"{repeats} total times; expect ~1 for CSR+ in n, ~2 for "
            "CSR-NI in n, and ~4 for CSR-NI in r.",
        ],
    )
