"""Measurement harness shared by every experiment.

One :func:`measure` call runs a named engine through the two-phase
protocol on a graph + query set and records what the paper's figures
plot: phase times, phase memory (from the engine's deterministic byte
accounting), and a completion status:

* ``"ok"``      — both phases finished;
* ``"memory"``  — the engine hit its memory budget (the paper's
  "memory crash" annotation);
* ``"timeout"`` — the engine blew its cooperative time budget (the
  paper's bars that simply never finished).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

import repro.obs as obs
from repro.baselines.registry import make_engine
from repro.errors import MemoryBudgetExceeded, TimeBudgetExceeded
from repro.graphs.digraph import DiGraph

__all__ = ["Measurement", "measure", "format_bytes", "format_seconds"]

logger = logging.getLogger("repro.experiments")

#: Default hard budgets for the comparison experiments; chosen so that
#: at the default "bench" tier each baseline survives/crashes exactly
#: where the paper reports it doing so (see DESIGN.md §5).
DEFAULT_MEMORY_BUDGET = 1_500_000_000  # 1.5 GB of accounted arrays
DEFAULT_TIME_BUDGET = 120.0  # seconds per phase


@dataclass
class Measurement:
    """Everything recorded about one (engine, graph, queries) run."""

    engine: str
    status: str = "ok"
    prepare_seconds: float = 0.0
    query_seconds: float = 0.0
    peak_bytes: int = 0
    prepare_bytes: int = 0
    query_bytes: int = 0
    error: str = ""
    result: Optional[np.ndarray] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.prepare_seconds + self.query_seconds

    @property
    def completed(self) -> bool:
        return self.status == "ok"


def measure(
    engine_name: str,
    graph: DiGraph,
    queries: np.ndarray,
    rank: int = 5,
    damping: float = 0.6,
    memory_budget_bytes: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget_seconds: Optional[float] = DEFAULT_TIME_BUDGET,
    keep_result: bool = False,
) -> Measurement:
    """Run ``engine_name`` on ``graph``/``queries`` and record the outcome.

    Failures covered by the budgets are converted to statuses, not
    exceptions; anything else propagates (a real bug should fail loud).
    """
    engine = make_engine(
        engine_name,
        graph,
        damping=damping,
        rank=rank,
        memory_budget_bytes=memory_budget_bytes,
    )
    engine.time_budget_seconds = time_budget_seconds
    record = Measurement(engine=engine_name)
    with obs.span(
        "experiment.measure",
        engine=engine_name,
        n=graph.num_nodes,
        m=graph.num_edges,
        num_queries=int(np.asarray(queries).size),
    ) as measure_span:
        try:
            engine.prepare()
            record.prepare_seconds = engine.prepare_seconds
            result = engine.query(queries)
            record.query_seconds = engine.last_query_seconds
            if keep_result:
                record.result = result
        except MemoryBudgetExceeded as exc:
            record.status = "memory"
            record.error = str(exc)
            logger.info("%s on n=%d: memory budget hit (%s)",
                        engine_name, graph.num_nodes, exc)
        except TimeBudgetExceeded as exc:
            record.status = "timeout"
            record.error = str(exc)
            logger.info("%s on n=%d: time budget hit (%s)",
                        engine_name, graph.num_nodes, exc)
        measure_span.set_attribute("status", record.status)
    record.peak_bytes = engine.memory.peak_bytes
    record.prepare_bytes = engine.memory.phase_peak_bytes("precompute")
    record.query_bytes = engine.memory.phase_peak_bytes("query")
    return record


# ----------------------------------------------------------------------
# human-readable formatting used by the text reports
# ----------------------------------------------------------------------
def format_bytes(num_bytes: float) -> str:
    """``1234567 -> '1.2 MB'`` (decimal units, one decimal)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1000.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    return f"{value:.1f} TB"  # pragma: no cover - unreachable


def format_seconds(seconds: float) -> str:
    """Adaptive precision: microseconds up to minutes."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
