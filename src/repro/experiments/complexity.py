"""Analytic cost models from the paper's complexity analysis.

Theorem 3.7 proves CSR+'s bound by costing Algorithm 1 line by line;
Table 1 states every competitor's bound.  This module encodes those
formulas as callable models so that

* the Table-1 bench can print predicted-vs-fitted exponents,
* users can estimate feasibility ("will CSR-NI fit on my graph?")
  before running anything, and
* tests can assert the models' orderings match measurements.

All values are unit-free operation/byte counts — only *ratios* between
configurations are meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import InvalidParameterError

__all__ = [
    "CostModel",
    "cost_models",
    "csr_plus_cost",
    "csr_ni_cost",
    "csr_it_cost",
    "csr_rls_cost",
    "feasible_under_budget",
]


@dataclass(frozen=True)
class CostModel:
    """Predicted time (ops) and memory (bytes) for one algorithm."""

    name: str
    time_ops: Callable[[int, int, int, int], float]
    memory_bytes: Callable[[int, int, int, int], float]
    time_formula: str
    memory_formula: str

    def time(self, n: int, m: int, r: int, q: int) -> float:
        _validate(n, m, r, q)
        return float(self.time_ops(n, m, r, q))

    def memory(self, n: int, m: int, r: int, q: int) -> float:
        _validate(n, m, r, q)
        return float(self.memory_bytes(n, m, r, q))


def _validate(n: int, m: int, r: int, q: int) -> None:
    if min(n, r, q) < 1 or m < 0:
        raise InvalidParameterError(
            f"need n, r, q >= 1 and m >= 0; got n={n}, m={m}, r={r}, q={q}"
        )


# --- Theorem 3.7's per-line table for CSR+ -----------------------------
def csr_plus_cost(n: int, m: int, r: int, q: int) -> float:
    """Σ of Algorithm 1's line costs: O(m) + O(mr + r^3) + O(nr^2 + nr)
    + O(r^3) + O(nr^2) + O(nr|Q|)."""
    return m + (m * r + r**3) + (n * r**2 + n * r) + r**3 + n * r**2 + n * r * q


def _csr_plus_memory(n: int, m: int, r: int, q: int) -> float:
    # O(m) for Q, O(nr) for U and Z, O(r^2) subspace, O(nq) result
    return 8.0 * (2 * m + 2 * n * r + 2 * r * r + n * q)


def csr_ni_cost(n: int, m: int, r: int, q: int) -> float:
    """Li et al.: O(r^4 n^2) precompute + O(n^2 r^2) query."""
    return (r**4) * (n**2) + (n**2) * (r**2)


def _csr_ni_memory(n: int, m: int, r: int, q: int) -> float:
    # two n^2 x r^2-entry tensor products dominate
    return 8.0 * 2 * (n**2) * (r**2)


def csr_it_cost(n: int, m: int, r: int, q: int) -> float:
    """All-pairs iteration: K sparse triple products; fill-in makes the
    effective per-iteration cost approach n * m (pessimistically n^2)."""
    k_iters = r  # fairness rule
    return k_iters * n * m


def _csr_it_memory(n: int, m: int, r: int, q: int) -> float:
    return 8.0 * (n**2)


def csr_rls_cost(n: int, m: int, r: int, q: int) -> float:
    """Per query: 2K sparse mat-vecs of m ops each."""
    k_iters = r
    return 2.0 * k_iters * m * q


def _csr_rls_memory(n: int, m: int, r: int, q: int) -> float:
    # Q + Q^T, the (K+1) x n stack, and the n x q result
    return 8.0 * (2 * m + (r + 1) * n + n * q)


_MODELS: Dict[str, CostModel] = {
    "CSR+": CostModel(
        "CSR+", csr_plus_cost, _csr_plus_memory,
        "O(r(m + n(r + |Q|)))", "O(rn)",
    ),
    "CSR-NI": CostModel(
        "CSR-NI", csr_ni_cost, _csr_ni_memory,
        "O(r^4 n^2)", "O(r^2 n^2)",
    ),
    "CSR-IT": CostModel(
        "CSR-IT", csr_it_cost, _csr_it_memory,
        "O(K n m) ~ O(n^2)", "O(n^2)",
    ),
    "CSR-RLS": CostModel(
        "CSR-RLS", csr_rls_cost, _csr_rls_memory,
        "O(K m |Q|)", "O(m + n(K + |Q|))",
    ),
}


def cost_models() -> Dict[str, CostModel]:
    """All analytic models, keyed by the paper's algorithm names."""
    return dict(_MODELS)


def feasible_under_budget(
    name: str, n: int, m: int, r: int, q: int, budget_bytes: int
) -> bool:
    """Whether the model predicts the algorithm fits in ``budget_bytes``.

    This is the pencil-and-paper version of the memory meter: it lets a
    user rule out CSR-NI on a big graph without allocating anything.
    """
    try:
        model = _MODELS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; known: {sorted(_MODELS)}"
        ) from None
    if budget_bytes <= 0:
        raise InvalidParameterError(f"budget must be positive, got {budget_bytes}")
    return model.memory(n, m, r, q) <= budget_bytes
