"""Runners for the paper's Figures 2–9.

Each ``figN`` function replays the corresponding experiment on the
synthetic stand-ins and returns an
:class:`~repro.experiments.report.ExperimentResult` holding the same
rows/series the paper plots.  Scales, budgets and sweeps default to the
values in DESIGN.md §4–5 but are all overridable, so the figures can be
re-run larger on bigger machines or tiny in CI.

Shared sweeps (Figure 2/6 use the same runs, as do 4/8 and 5/9) are
cached in-process, so rendering both views costs one run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.registry import COMPARISON_ENGINES
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.datasets.registry import dataset_keys, load_dataset
from repro.experiments.harness import (
    DEFAULT_MEMORY_BUDGET,
    DEFAULT_TIME_BUDGET,
    Measurement,
    format_bytes,
    format_seconds,
    measure,
)
from repro.experiments.report import ExperimentResult

__all__ = ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]

#: Paper defaults (§4.1): |Q| = 100, c = 0.6, r = 5.
DEFAULT_Q_SIZE = 100
DEFAULT_RANK = 5
DEFAULT_DAMPING = 0.6
QUERY_SEED = 7

#: Sweep grids of Figures 3/5/7/9 and 4/8.
Q_SIZE_GRID: Tuple[int, ...] = (100, 300, 500, 700)
RANK_GRID: Tuple[int, ...] = (5, 10, 15, 20, 25)

#: Default dataset tiers per experiment family (DESIGN.md §5): the
#: comparison figures run at "bench" scale; the rank sweeps run on the
#: small graphs where CSR-NI can survive the low end of the grid.
_RANK_SWEEP_DATASETS: Tuple[Tuple[str, str], ...] = (("FB", "tiny"), ("P2P", "tiny"))
_QSIZE_SWEEP_DATASETS: Tuple[Tuple[str, str], ...] = (("FB", "small"), ("WT", "bench"))


def _status_cell(record: Measurement, value: str) -> str:
    if record.status == "memory":
        return "OOM"
    if record.status == "timeout":
        return "DNF"
    return value


# ----------------------------------------------------------------------
# shared sweeps (cached)
# ----------------------------------------------------------------------
@lru_cache(maxsize=8)
def _dataset_sweep(
    tier: str,
    q_size: int,
    rank: int,
    damping: float,
    memory_budget: Optional[int],
    time_budget: Optional[float],
) -> Tuple[Tuple[str, Tuple[Measurement, ...]], ...]:
    """All comparison engines on every dataset — backs Figures 2 and 6."""
    out = []
    for key in dataset_keys():
        graph = load_dataset(key, tier)
        queries = sample_queries(graph, min(q_size, graph.num_nodes), seed=QUERY_SEED)
        runs = tuple(
            measure(
                name,
                graph,
                queries,
                rank=rank,
                damping=damping,
                memory_budget_bytes=memory_budget,
                time_budget_seconds=time_budget,
            )
            for name in COMPARISON_ENGINES
        )
        out.append((key, runs))
    return tuple(out)


@lru_cache(maxsize=8)
def _rank_sweep(
    datasets: Tuple[Tuple[str, str], ...],
    ranks: Tuple[int, ...],
    q_size: int,
    damping: float,
    memory_budget: Optional[int],
    time_budget: Optional[float],
) -> Tuple[Tuple[str, int, Tuple[Measurement, ...]], ...]:
    """All comparison engines across the rank grid — backs Figures 4 and 8."""
    out = []
    for key, tier in datasets:
        graph = load_dataset(key, tier)
        queries = sample_queries(graph, min(q_size, graph.num_nodes), seed=QUERY_SEED)
        for rank in ranks:
            runs = tuple(
                measure(
                    name,
                    graph,
                    queries,
                    rank=rank,
                    damping=damping,
                    memory_budget_bytes=memory_budget,
                    time_budget_seconds=time_budget,
                )
                for name in COMPARISON_ENGINES
            )
            out.append((key, rank, runs))
    return tuple(out)


@lru_cache(maxsize=8)
def _qsize_sweep(
    datasets: Tuple[Tuple[str, str], ...],
    q_sizes: Tuple[int, ...],
    rank: int,
    damping: float,
    memory_budget: Optional[int],
    time_budget: Optional[float],
) -> Tuple[Tuple[str, int, Tuple[Measurement, ...]], ...]:
    """All comparison engines across the |Q| grid — backs Figures 5 and 9."""
    out = []
    for key, tier in datasets:
        graph = load_dataset(key, tier)
        for q_size in q_sizes:
            queries = sample_queries(
                graph, min(q_size, graph.num_nodes), seed=QUERY_SEED
            )
            runs = tuple(
                measure(
                    name,
                    graph,
                    queries,
                    rank=rank,
                    damping=damping,
                    memory_budget_bytes=memory_budget,
                    time_budget_seconds=time_budget,
                )
                for name in COMPARISON_ENGINES
            )
            out.append((key, q_size, runs))
    return tuple(out)


# ----------------------------------------------------------------------
# Figure 2 — total CPU time per dataset
# ----------------------------------------------------------------------
def fig2(
    tier: str = "bench",
    q_size: int = DEFAULT_Q_SIZE,
    rank: int = DEFAULT_RANK,
    damping: float = DEFAULT_DAMPING,
    memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget: Optional[float] = DEFAULT_TIME_BUDGET,
) -> ExperimentResult:
    """Figure 2: total time (preprocess + query) of all engines per dataset."""
    rows = []
    for key, runs in _dataset_sweep(
        tier, q_size, rank, damping, memory_budget, time_budget
    ):
        row: Dict[str, object] = {"dataset": key}
        for record in runs:
            row[record.engine] = _status_cell(
                record, format_seconds(record.total_seconds)
            )
            row[f"{record.engine}_seconds"] = (
                record.total_seconds if record.completed else None
            )
        rows.append(row)
    columns = ["dataset"] + list(COMPARISON_ENGINES)
    return ExperimentResult(
        exp_id="fig2",
        title="Total CPU time of multi-source CoSimRank per dataset",
        columns=columns,
        rows=rows,
        parameters={
            "tier": tier,
            "|Q|": q_size,
            "r": rank,
            "c": damping,
            "memory_budget": format_bytes(memory_budget) if memory_budget else "none",
        },
        notes=[
            "OOM = exceeded the memory budget (paper: memory crash); "
            "DNF = exceeded the per-phase time budget.",
        ],
    )


# ----------------------------------------------------------------------
# Figure 3 — CSR+ per-phase time vs |Q|
# ----------------------------------------------------------------------
def fig3(
    tier: str = "bench",
    q_sizes: Sequence[int] = Q_SIZE_GRID,
    rank: int = DEFAULT_RANK,
    damping: float = DEFAULT_DAMPING,
) -> ExperimentResult:
    """Figure 3: CSR+ preprocessing vs query time as |Q| grows.

    The index is prepared once per dataset (preprocessing does not
    depend on |Q|) and queried at each size.
    """
    rows = []
    for key in dataset_keys():
        graph = load_dataset(key, tier)
        config = CSRPlusConfig(damping=damping, rank=rank)
        index = CSRPlusIndex(graph, config).prepare()
        for q_size in q_sizes:
            queries = sample_queries(
                graph, min(q_size, graph.num_nodes), seed=QUERY_SEED
            )
            index.query(queries)
            rows.append(
                {
                    "dataset": key,
                    "|Q|": q_size,
                    "preprocess": format_seconds(index.prepare_seconds),
                    "query": format_seconds(index.last_query_seconds),
                    "preprocess_seconds": index.prepare_seconds,
                    "query_seconds": index.last_query_seconds,
                }
            )
    return ExperimentResult(
        exp_id="fig3",
        title="CSR+ time per phase as |Q| grows",
        columns=["dataset", "|Q|", "preprocess", "query"],
        rows=rows,
        parameters={"tier": tier, "r": rank, "c": damping},
        notes=["Preprocessing is |Q|-independent; query time grows linearly."],
    )


# ----------------------------------------------------------------------
# Figure 4 — effect of rank r on time
# ----------------------------------------------------------------------
def fig4(
    datasets: Tuple[Tuple[str, str], ...] = _RANK_SWEEP_DATASETS,
    ranks: Sequence[int] = RANK_GRID,
    q_size: int = DEFAULT_Q_SIZE,
    damping: float = DEFAULT_DAMPING,
    memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget: Optional[float] = DEFAULT_TIME_BUDGET,
) -> ExperimentResult:
    """Figure 4: total time of every engine as the rank r grows."""
    rows = []
    for key, rank, runs in _rank_sweep(
        tuple(datasets), tuple(ranks), q_size, damping, memory_budget, time_budget
    ):
        row: Dict[str, object] = {"dataset": key, "r": rank}
        for record in runs:
            row[record.engine] = _status_cell(
                record, format_seconds(record.total_seconds)
            )
            row[f"{record.engine}_seconds"] = (
                record.total_seconds if record.completed else None
            )
        rows.append(row)
    return ExperimentResult(
        exp_id="fig4",
        title="Effect of low rank r on CPU time",
        columns=["dataset", "r"] + list(COMPARISON_ENGINES),
        rows=rows,
        parameters={"|Q|": q_size, "c": damping, "datasets": dict(datasets)},
        notes=[
            "CSR-NI's O(r^4 n^2) tensor products make its time explode "
            "with r; the iterative baselines use k = r iterations.",
        ],
    )


# ----------------------------------------------------------------------
# Figure 5 — effect of |Q| on time
# ----------------------------------------------------------------------
def fig5(
    datasets: Tuple[Tuple[str, str], ...] = _QSIZE_SWEEP_DATASETS,
    q_sizes: Sequence[int] = Q_SIZE_GRID,
    rank: int = DEFAULT_RANK,
    damping: float = DEFAULT_DAMPING,
    memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget: Optional[float] = DEFAULT_TIME_BUDGET,
) -> ExperimentResult:
    """Figure 5: total time of every engine as |Q| grows."""
    rows = []
    for key, q_size, runs in _qsize_sweep(
        tuple(datasets), tuple(q_sizes), rank, damping, memory_budget, time_budget
    ):
        row: Dict[str, object] = {"dataset": key, "|Q|": q_size}
        for record in runs:
            row[record.engine] = _status_cell(
                record, format_seconds(record.total_seconds)
            )
            row[f"{record.engine}_seconds"] = (
                record.total_seconds if record.completed else None
            )
        rows.append(row)
    return ExperimentResult(
        exp_id="fig5",
        title="Effect of query-set size |Q| on CPU time",
        columns=["dataset", "|Q|"] + list(COMPARISON_ENGINES),
        rows=rows,
        parameters={"r": rank, "c": damping, "datasets": dict(datasets)},
        notes=[
            "CSR+ and CSR-IT are |Q|-insensitive; CSR-RLS and CSR-NI "
            "grow with |Q| (per-query duplication).",
        ],
    )


# ----------------------------------------------------------------------
# Figure 6 — total memory per dataset
# ----------------------------------------------------------------------
def fig6(
    tier: str = "bench",
    q_size: int = DEFAULT_Q_SIZE,
    rank: int = DEFAULT_RANK,
    damping: float = DEFAULT_DAMPING,
    memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget: Optional[float] = DEFAULT_TIME_BUDGET,
) -> ExperimentResult:
    """Figure 6: peak accounted memory of all engines per dataset."""
    rows = []
    for key, runs in _dataset_sweep(
        tier, q_size, rank, damping, memory_budget, time_budget
    ):
        row: Dict[str, object] = {"dataset": key}
        for record in runs:
            # Peak bytes are meaningful even for crashed runs (they show
            # how far the engine got); crashes are annotated.
            cell = format_bytes(record.peak_bytes)
            if record.status == "memory":
                cell = f">{format_bytes(memory_budget)} (OOM)" if memory_budget else cell
            elif record.status == "timeout":
                cell = f"{cell} (DNF)"
            row[record.engine] = cell
            row[f"{record.engine}_bytes"] = (
                record.peak_bytes if record.completed else None
            )
        rows.append(row)
    return ExperimentResult(
        exp_id="fig6",
        title="Peak memory of multi-source CoSimRank per dataset",
        columns=["dataset"] + list(COMPARISON_ENGINES),
        rows=rows,
        parameters={
            "tier": tier,
            "|Q|": q_size,
            "r": rank,
            "c": damping,
            "memory_budget": format_bytes(memory_budget) if memory_budget else "none",
        },
        notes=["Memory is deterministic byte accounting of materialised arrays."],
    )


# ----------------------------------------------------------------------
# Figure 7 — CSR+ per-phase memory vs |Q|
# ----------------------------------------------------------------------
def fig7(
    tier: str = "bench",
    q_sizes: Sequence[int] = Q_SIZE_GRID,
    rank: int = DEFAULT_RANK,
    damping: float = DEFAULT_DAMPING,
) -> ExperimentResult:
    """Figure 7: CSR+ memory per phase as |Q| grows."""
    rows = []
    for key in dataset_keys():
        graph = load_dataset(key, tier)
        config = CSRPlusConfig(damping=damping, rank=rank)
        index = CSRPlusIndex(graph, config).prepare()
        prepare_bytes = index.memory.phase_peak_bytes("precompute")
        for q_size in q_sizes:
            queries = sample_queries(
                graph, min(q_size, graph.num_nodes), seed=QUERY_SEED
            )
            index.query(queries)
            query_bytes = index.memory.live_breakdown().get("query/S", 0)
            rows.append(
                {
                    "dataset": key,
                    "|Q|": q_size,
                    "preprocess": format_bytes(prepare_bytes),
                    "query": format_bytes(query_bytes),
                    "preprocess_bytes": prepare_bytes,
                    "query_bytes": query_bytes,
                }
            )
    return ExperimentResult(
        exp_id="fig7",
        title="CSR+ memory per phase as |Q| grows",
        columns=["dataset", "|Q|", "preprocess", "query"],
        rows=rows,
        parameters={"tier": tier, "r": rank, "c": damping},
        notes=["Query memory is the n x |Q| result block; linear in |Q|."],
    )


# ----------------------------------------------------------------------
# Figure 8 — effect of rank r on memory
# ----------------------------------------------------------------------
def fig8(
    datasets: Tuple[Tuple[str, str], ...] = _RANK_SWEEP_DATASETS,
    ranks: Sequence[int] = RANK_GRID,
    q_size: int = DEFAULT_Q_SIZE,
    damping: float = DEFAULT_DAMPING,
    memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget: Optional[float] = DEFAULT_TIME_BUDGET,
) -> ExperimentResult:
    """Figure 8: peak memory of every engine as the rank r grows."""
    rows = []
    for key, rank, runs in _rank_sweep(
        tuple(datasets), tuple(ranks), q_size, damping, memory_budget, time_budget
    ):
        row: Dict[str, object] = {"dataset": key, "r": rank}
        for record in runs:
            cell = format_bytes(record.peak_bytes)
            if record.status == "memory":
                cell = f">{format_bytes(memory_budget)} (OOM)" if memory_budget else cell
            elif record.status == "timeout":
                cell = f"{cell} (DNF)"
            row[record.engine] = cell
            row[f"{record.engine}_bytes"] = (
                record.peak_bytes if record.completed else None
            )
        rows.append(row)
    return ExperimentResult(
        exp_id="fig8",
        title="Effect of low rank r on memory",
        columns=["dataset", "r"] + list(COMPARISON_ENGINES),
        rows=rows,
        parameters={"|Q|": q_size, "c": damping, "datasets": dict(datasets)},
        notes=["CSR-NI's tensor products need O(r^2 n^2) bytes — quartic blowup."],
    )


# ----------------------------------------------------------------------
# Figure 9 — effect of |Q| on memory
# ----------------------------------------------------------------------
def fig9(
    datasets: Tuple[Tuple[str, str], ...] = _QSIZE_SWEEP_DATASETS,
    q_sizes: Sequence[int] = Q_SIZE_GRID,
    rank: int = DEFAULT_RANK,
    damping: float = DEFAULT_DAMPING,
    memory_budget: Optional[int] = DEFAULT_MEMORY_BUDGET,
    time_budget: Optional[float] = DEFAULT_TIME_BUDGET,
) -> ExperimentResult:
    """Figure 9: peak memory of every engine as |Q| grows."""
    rows = []
    for key, q_size, runs in _qsize_sweep(
        tuple(datasets), tuple(q_sizes), rank, damping, memory_budget, time_budget
    ):
        row: Dict[str, object] = {"dataset": key, "|Q|": q_size}
        for record in runs:
            cell = format_bytes(record.peak_bytes)
            if record.status == "memory":
                cell = f">{format_bytes(memory_budget)} (OOM)" if memory_budget else cell
            elif record.status == "timeout":
                cell = f"{cell} (DNF)"
            row[record.engine] = cell
            row[f"{record.engine}_bytes"] = (
                record.peak_bytes if record.completed else None
            )
        rows.append(row)
    return ExperimentResult(
        exp_id="fig9",
        title="Effect of query-set size |Q| on memory",
        columns=["dataset", "|Q|"] + list(COMPARISON_ENGINES),
        rows=rows,
        parameters={"r": rank, "c": damping, "datasets": dict(datasets)},
        notes=["CSR+/CSR-RLS memory grows with |Q| (result block); "
               "CSR-IT/CSR-NI are |Q|-independent when they survive."],
    )
