"""Plain-text rendering and JSON serialisation of experiment results.

The paper's artefacts are bar/line figures and one table; this module
renders the same data as aligned text tables — the rows/series a plot
would show — so the reproduction is inspectable without matplotlib.
Results also round-trip through JSON for archiving and plotting with
external tools.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ExperimentResult", "render_table"]


def render_table(columns: Sequence[str], rows: Sequence[Dict[str, object]]) -> str:
    """Monospace table with one header row; missing cells render empty."""
    def cell(row: Dict[str, object], col: str) -> str:
        value = row.get(col, "")
        return "" if value is None else str(value)

    widths = {col: len(col) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(cell(row, col)))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[c]) for v, c in zip(values, columns))

    out = [line(list(columns)), line(["-" * widths[c] for c in columns])]
    out.extend(line([cell(row, c) for c in columns]) for row in rows)
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """A reproduced figure/table: id, title, tabular data, free-form notes."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)
    parameters: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Multi-line text block: header, parameters, table, notes."""
        parts = [f"== {self.exp_id}: {self.title} =="]
        if self.parameters:
            params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
            parts.append(f"parameters: {params}")
        parts.append(render_table(self.columns, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a JSON string (non-JSON values via ``str``)."""
        payload = {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": self.rows,
            "notes": list(self.notes),
            "parameters": self.parameters,
        }
        return json.dumps(payload, default=str, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            exp_id=payload["exp_id"],
            title=payload["title"],
            columns=list(payload["columns"]),
            rows=list(payload["rows"]),
            notes=list(payload.get("notes", [])),
            parameters=dict(payload.get("parameters", {})),
        )

    def save_json(self, path) -> None:
        """Write :meth:`to_json` to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load_json(cls, path) -> "ExperimentResult":
        """Read a result saved with :meth:`save_json`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
