"""Ablation of the four-stage optimisation scheme (§3.2).

The paper derives CSR+ from Li et al.'s method through four exact
rewrites (Theorems 3.1–3.5).  Each function below computes the same
multi-source block ``[S]_{*,Q}`` with the optimisations applied
*cumulatively*, so timing them in sequence shows exactly how much each
theorem buys — and the test suite checks that every stage returns the
same numbers (each rewrite is lossless):

========  ==========================================================
stage 0   Li et al. literal: Eq. (6b) + Eq. (6a), all tensor products
stage 1   + Thm 3.1: Lambda built from Theta kron Theta
stage 2   + Thm 3.2: query uses vec(I_r), (V kron V) never formed
stage 3   + Thms 3.3/3.4: Lambda never formed, P solved in r-space
stage 4   + Thm 3.5: no tensor products at all (this is CSR+)
========  ==========================================================
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.datasets.registry import load_dataset
from repro.experiments.harness import format_seconds
from repro.experiments.report import ExperimentResult
from repro.graphs.digraph import DiGraph
from repro.graphs.transition import transition_matrix
from repro.linalg.kronecker import unvec, vec_identity
from repro.linalg.stein import solve_stein_squaring
from repro.linalg.svd import truncated_svd

__all__ = ["run_stage", "stage_names", "ablation_stages", "STAGE_COUNT"]

STAGE_COUNT = 5


def _factors(graph: DiGraph, rank: int):
    """Shared SVD factors in the paper convention (Q^T = U Sigma V^T)."""
    q_matrix = transition_matrix(graph)
    svd = truncated_svd(q_matrix, rank)
    return svd.v, svd.u, svd.sigma  # U, V, sigma


def _query_literal(u, lam, kron_v, damping, n, query_ids):
    """Eq. (6a) with the literal (V kron V)^T vec(I_n) product."""
    kron_u = np.kron(u, u)
    rhs = kron_v.T @ vec_identity(n)
    vec_s = vec_identity(n) + damping * (kron_u @ (lam @ rhs))
    return unvec(vec_s, n, n)[:, query_ids].copy()


def _stage0(graph, query_ids, rank, damping):
    """Li et al. literal: tensor products in both phases."""
    n = graph.num_nodes
    u, v, sigma = _factors(graph, rank)
    kron_u = np.kron(u, u)
    kron_v = np.kron(v, v)
    m_matrix = kron_v.T @ kron_u                      # O(r^4 n^2)
    lam = np.linalg.inv(np.diag(1.0 / np.kron(sigma, sigma)) - damping * m_matrix)
    return _query_literal(u, lam, kron_v, damping, n, query_ids)


def _stage1(graph, query_ids, rank, damping):
    """+ Thm 3.1: (V kron V)^T (U kron U) = Theta kron Theta."""
    n = graph.num_nodes
    u, v, sigma = _factors(graph, rank)
    theta = v.T @ u                                    # O(r^2 n)
    m_matrix = np.kron(theta, theta)                   # O(r^4)
    lam = np.linalg.inv(np.diag(1.0 / np.kron(sigma, sigma)) - damping * m_matrix)
    kron_v = np.kron(v, v)                             # still needed by Eq. (6a)
    return _query_literal(u, lam, kron_v, damping, n, query_ids)


def _stage2(graph, query_ids, rank, damping):
    """+ Thm 3.2: (V kron V)^T vec(I_n) = vec(I_r); V kron V never formed."""
    n = graph.num_nodes
    u, v, sigma = _factors(graph, rank)
    rank_eff = sigma.size
    theta = v.T @ u
    lam = np.linalg.inv(
        np.diag(1.0 / np.kron(sigma, sigma)) - damping * np.kron(theta, theta)
    )
    kron_u = np.kron(u, u)
    vec_s = vec_identity(n) + damping * (kron_u @ (lam @ vec_identity(rank_eff)))
    return unvec(vec_s, n, n)[:, query_ids].copy()


def _stage3(graph, query_ids, rank, damping):
    """+ Thms 3.3/3.4: Lambda vec(I_r) = vec(Sigma P Sigma), P in r-space."""
    n = graph.num_nodes
    u, v, sigma = _factors(graph, rank)
    h_matrix = (v.T @ u) * sigma[np.newaxis, :]
    p_matrix, _ = solve_stein_squaring(h_matrix, damping, 1e-12)
    sps = (sigma[:, np.newaxis] * p_matrix) * sigma[np.newaxis, :]
    kron_u = np.kron(u, u)                             # the one tensor left
    vec_s = vec_identity(n) + damping * (kron_u @ sps.reshape(-1, order="F"))
    return unvec(vec_s, n, n)[:, query_ids].copy()


def _stage4(graph, query_ids, rank, damping):
    """+ Thm 3.5: full CSR+ — no tensor products anywhere."""
    config = CSRPlusConfig(damping=damping, rank=rank, epsilon=1e-12)
    return CSRPlusIndex(graph, config).query(query_ids)


_STAGES = (_stage0, _stage1, _stage2, _stage3, _stage4)
_NAMES = (
    "stage0: Li et al. literal",
    "stage1: +Thm3.1 Theta kron Theta",
    "stage2: +Thm3.2 vec(I_r)",
    "stage3: +Thm3.3/3.4 Stein P",
    "stage4: +Thm3.5 = CSR+",
)


def stage_names() -> Tuple[str, ...]:
    """Human-readable stage labels, index-aligned with :func:`run_stage`."""
    return _NAMES


def run_stage(
    stage: int,
    graph: DiGraph,
    query_ids: np.ndarray,
    rank: int = 5,
    damping: float = 0.6,
) -> np.ndarray:
    """Compute ``[S]_{*,Q}`` with optimisations 0..``stage`` applied."""
    if not (0 <= stage < STAGE_COUNT):
        raise ValueError(f"stage must be in [0, {STAGE_COUNT}), got {stage}")
    return _STAGES[stage](graph, np.asarray(query_ids, dtype=np.int64), rank, damping)


def ablation_stages(
    dataset: str = "FB",
    tier: str = "tiny",
    rank: int = 5,
    q_size: int = 20,
    damping: float = 0.6,
) -> ExperimentResult:
    """Time each cumulative stage on one dataset (all stages agree)."""
    graph = load_dataset(dataset, tier)
    queries = sample_queries(graph, min(q_size, graph.num_nodes), seed=7)
    rows: List[Dict[str, object]] = []
    reference = None
    for stage, (fn, name) in enumerate(zip(_STAGES, _NAMES)):
        start = time.perf_counter()
        block = fn(graph, queries, rank, damping)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = block
        drift = float(np.max(np.abs(block - reference)))
        rows.append(
            {
                "stage": name,
                "time": format_seconds(elapsed),
                "max drift vs stage0": f"{drift:.2e}",
                "seconds": elapsed,
                "drift_value": drift,
            }
        )
    return ExperimentResult(
        exp_id="ablation-stages",
        title="Cumulative effect of the four optimisation stages (§3.2)",
        columns=["stage", "time", "max drift vs stage0"],
        rows=rows,
        parameters={"dataset": dataset, "tier": tier, "r": rank, "|Q|": q_size},
        notes=["Every rewrite is exact: drift stays at floating-point noise."],
    )
