"""Experiment dispatch: one id per paper artefact.

``run_experiment("fig2")`` replays Figure 2 and returns an
:class:`~repro.experiments.report.ExperimentResult`; ``list_experiments``
enumerates everything the harness can reproduce.  Keyword arguments are
forwarded to the underlying runner (scales, budgets, grids).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments import figures, tables
from repro.experiments.report import ExperimentResult
from repro.experiments.stages import ablation_stages
from repro.experiments.topk_quality import topk_quality

__all__ = ["run_experiment", "list_experiments", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig2": figures.fig2,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "tab1": tables.tab1,
    "tab3": tables.tab3,
    "ablation-stages": ablation_stages,
    "topk-quality": topk_quality,
}


def list_experiments() -> List[str]:
    """All experiment ids, figures first."""
    return list(EXPERIMENTS)


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run the experiment registered under ``exp_id``."""
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
