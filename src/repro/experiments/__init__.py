"""Experiment harness reproducing every figure/table of the paper's §4."""

from repro.experiments.harness import (
    DEFAULT_MEMORY_BUDGET,
    DEFAULT_TIME_BUDGET,
    Measurement,
    format_bytes,
    format_seconds,
    measure,
)
from repro.experiments.complexity import CostModel, cost_models, feasible_under_budget
from repro.experiments.grid import sweep
from repro.experiments.report import ExperimentResult, render_table
from repro.experiments.runner import EXPERIMENTS, list_experiments, run_experiment
from repro.experiments.stages import ablation_stages, run_stage, stage_names

__all__ = [
    "measure",
    "Measurement",
    "DEFAULT_MEMORY_BUDGET",
    "DEFAULT_TIME_BUDGET",
    "format_bytes",
    "format_seconds",
    "ExperimentResult",
    "render_table",
    "run_experiment",
    "list_experiments",
    "EXPERIMENTS",
    "run_stage",
    "stage_names",
    "ablation_stages",
    "CostModel",
    "cost_models",
    "feasible_under_budget",
    "sweep",
]
