"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can guard a whole pipeline with a single
``except ReproError`` clause while still being able to distinguish the
individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """An edge-list file or in-memory edge description is malformed."""


class GraphConstructionError(ReproError):
    """Edges reference invalid node ids or otherwise cannot form a graph."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its documented domain.

    Inherits from :class:`ValueError` so generic callers that expect
    ``ValueError`` for bad arguments keep working.
    """


class QueryError(ReproError):
    """A query references unknown nodes or is otherwise unanswerable."""


class NotPreparedError(ReproError):
    """An online query was issued before the offline phase ran."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach the requested accuracy."""


class DecompositionError(ReproError):
    """A matrix decomposition (e.g. truncated SVD) failed or is ill-posed."""


class MemoryBudgetExceeded(ReproError, MemoryError):
    """An engine would materialise more bytes than its configured budget.

    This reproduces, deterministically and at laptop scale, the
    "memory crash" behaviour the paper reports for the quadratic-memory
    baselines on medium and large graphs.  Inherits from
    :class:`MemoryError` because that is what a genuine overflow would
    raise.
    """

    def __init__(self, requested_bytes: int, budget_bytes: int, what: str = ""):
        self.requested_bytes = int(requested_bytes)
        self.budget_bytes = int(budget_bytes)
        self.what = what
        detail = f" for {what}" if what else ""
        super().__init__(
            f"allocation of {self.requested_bytes:,} bytes{detail} exceeds "
            f"memory budget of {self.budget_bytes:,} bytes"
        )


class TimeBudgetExceeded(ReproError):
    """An engine's cooperative deadline passed mid-phase.

    The experiment harness uses this to record "did not finish" for
    baselines that are too slow at a given scale (the paper's figures
    simply omit such bars), without hanging the benchmark run.
    """

    def __init__(self, elapsed_seconds: float, budget_seconds: float, what: str = ""):
        self.elapsed_seconds = float(elapsed_seconds)
        self.budget_seconds = float(budget_seconds)
        self.what = what
        detail = f" during {what}" if what else ""
        super().__init__(
            f"time budget of {self.budget_seconds:.1f}s exceeded{detail} "
            f"({self.elapsed_seconds:.1f}s elapsed)"
        )


class DatasetError(ReproError):
    """A dataset key is unknown or a dataset failed to materialise."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""
