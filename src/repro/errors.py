"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can guard a whole pipeline with a single
``except ReproError`` clause while still being able to distinguish the
individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """An edge-list file or in-memory edge description is malformed."""


class GraphConstructionError(ReproError):
    """Edges reference invalid node ids or otherwise cannot form a graph."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its documented domain.

    Inherits from :class:`ValueError` so generic callers that expect
    ``ValueError`` for bad arguments keep working.
    """


class QueryError(ReproError):
    """A query references unknown nodes or is otherwise unanswerable."""


class NotPreparedError(ReproError):
    """An online query was issued before the offline phase ran."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach the requested accuracy."""


class DecompositionError(ReproError):
    """A matrix decomposition (e.g. truncated SVD) failed or is ill-posed."""


class MemoryBudgetExceeded(ReproError, MemoryError):
    """An engine would materialise more bytes than its configured budget.

    This reproduces, deterministically and at laptop scale, the
    "memory crash" behaviour the paper reports for the quadratic-memory
    baselines on medium and large graphs.  Inherits from
    :class:`MemoryError` because that is what a genuine overflow would
    raise.
    """

    def __init__(self, requested_bytes: int, budget_bytes: int, what: str = ""):
        self.requested_bytes = int(requested_bytes)
        self.budget_bytes = int(budget_bytes)
        self.what = what
        detail = f" for {what}" if what else ""
        super().__init__(
            f"allocation of {self.requested_bytes:,} bytes{detail} exceeds "
            f"memory budget of {self.budget_bytes:,} bytes"
        )


class TimeBudgetExceeded(ReproError):
    """An engine's cooperative deadline passed mid-phase.

    The experiment harness uses this to record "did not finish" for
    baselines that are too slow at a given scale (the paper's figures
    simply omit such bars), without hanging the benchmark run.
    """

    def __init__(self, elapsed_seconds: float, budget_seconds: float, what: str = ""):
        self.elapsed_seconds = float(elapsed_seconds)
        self.budget_seconds = float(budget_seconds)
        self.what = what
        detail = f" during {what}" if what else ""
        super().__init__(
            f"time budget of {self.budget_seconds:.1f}s exceeded{detail} "
            f"({self.elapsed_seconds:.1f}s elapsed)"
        )


class RetryableError(ReproError):
    """A transient failure that is safe to retry.

    Classification base for errors where the same call may well succeed
    a moment later (flaky disk reads, brief overload).  The serving
    layer's :class:`~repro.serving.retry.RetryPolicy` retries these (and
    ``OSError``) by default; anything else propagates immediately.
    """


class DeadlineExceeded(ReproError):
    """A serving deadline passed before the work completed.

    Raised by :meth:`~repro.serving.service.CoSimRankService.serve_batch`
    when ``deadline_s`` elapses mid-batch.  Cancellation is cooperative
    and chunk-grained: columns already computed are kept (and returned
    under the partial-result policy); ``cancelled_seeds`` counts the
    columns that were never started.  The sibling of the experiment
    harness's :class:`TimeBudgetExceeded`, but for online traffic.
    """

    def __init__(
        self,
        deadline_seconds: float,
        elapsed_seconds: float,
        *,
        completed_seeds: int = 0,
        cancelled_seeds: int = 0,
    ):
        self.deadline_seconds = float(deadline_seconds)
        self.elapsed_seconds = float(elapsed_seconds)
        self.completed_seeds = int(completed_seeds)
        self.cancelled_seeds = int(cancelled_seeds)
        super().__init__(
            f"deadline of {self.deadline_seconds:.3f}s exceeded "
            f"({self.elapsed_seconds:.3f}s elapsed, "
            f"{self.completed_seeds} seed columns computed, "
            f"{self.cancelled_seeds} cancelled)"
        )


class ServiceOverloaded(RetryableError):
    """Admission control shed a batch: the in-flight seed budget is full.

    Inherits :class:`RetryableError` because shedding is transient from
    the caller's point of view — the same batch may be admitted once
    in-flight work drains.  A batch whose own seed count exceeds the
    whole budget can never be admitted; split it instead of retrying
    (``requested > budget`` tells the two cases apart).
    """

    def __init__(self, requested: int, in_flight: int, budget: int):
        self.requested = int(requested)
        self.in_flight = int(in_flight)
        self.budget = int(budget)
        hint = (
            "; the batch alone exceeds the budget — split it"
            if self.requested > self.budget
            else "; retry after in-flight work drains"
        )
        super().__init__(
            f"batch of {self.requested} unique seeds rejected: "
            f"{self.in_flight}/{self.budget} seeds already in flight{hint}"
        )


class IndexCorrupted(ReproError):
    """A persisted index failed checksum or structural validation.

    Raised by :class:`~repro.serving.registry.IndexRegistry` instead of
    letting a cold ``numpy``/``zipfile`` error escape when a saved
    ``.npz`` is truncated, bit-flipped, or not an index at all.  The
    registry reacts by quarantining the file and re-preparing from the
    graph, so corruption degrades to a slow start, not an outage.
    """

    def __init__(self, path: str, reason: str):
        self.path = str(path)
        self.reason = str(reason)
        super().__init__(f"index file {self.path!r} is corrupt: {self.reason}")


class ShardCorrupted(ReproError):
    """A persisted shard failed its manifest checksum or shape validation.

    The shard-store analogue of :class:`IndexCorrupted`, but scoped to
    a *single* node-range shard: the manifest records one sha256 per
    shard over the raw array bytes, so corruption is localised and
    :class:`~repro.serving.registry.IndexRegistry` can quarantine and
    rebuild just the damaged shard instead of the whole store
    (docs/sharding.md).  Also raised by
    :class:`~repro.sharding.ShardedIndex` when a shard read stays bad
    after its retry budget — a poisoned shard degrades to this typed
    error, never to silently wrong rows.
    """

    def __init__(self, path: str, shard: int, reason: str):
        self.path = str(path)
        self.shard = int(shard)
        self.reason = str(reason)
        super().__init__(
            f"shard {self.shard} of store {self.path!r} is corrupt: "
            f"{self.reason}"
        )


class ColumnComputeFailed(ReproError):
    """A seed column could not be computed even after per-seed isolation.

    When a worker chunk throws, the service retries each of its seeds
    individually; seeds that still fail get this error attached to the
    affected requests (``__cause__`` holds the underlying exception)
    while every other request in the batch is served normally.
    """

    def __init__(self, seed: int, reason: str = ""):
        self.seed = int(seed)
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"failed to compute similarity column for seed {self.seed}{detail}"
        )


class WorkerCrashed(RetryableError):
    """A frontend worker process died mid-task.

    Raised by :class:`~repro.serving.frontend.worker.WorkerPool` when
    the pipe to a worker breaks while a task is outstanding.  The pool
    respawns the worker before raising, so the *next* submission finds
    a healthy process — which is why this is a :class:`RetryableError`:
    the dispatcher's per-seed isolation retries turn one crash into at
    most one :class:`ColumnComputeFailed` per genuinely poisonous seed,
    never a dead server.
    """

    def __init__(self, worker_id: int, reason: str = ""):
        self.worker_id = int(worker_id)
        self.reason = str(reason)
        detail = f": {self.reason}" if self.reason else ""
        super().__init__(
            f"frontend worker {self.worker_id} crashed mid-task{detail}"
        )


class DatasetError(ReproError):
    """A dataset key is unknown or a dataset failed to materialise."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""
