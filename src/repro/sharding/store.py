"""Persistent node-range shard store for the CSR+ query factors.

Layout of a store directory::

    <store>/
      manifest.json          # ShardManifest (+ .sha256 sidecar)
      shard-00000.z.npy      # Z[start_0:stop_0, :]
      shard-00000.u.npy      # U[start_0:stop_0, :]
      shard-00001.z.npy
      ...

Two ways to create one:

* :func:`shard_index` slices a *prepared* monolithic
  :class:`~repro.core.index.CSRPlusIndex` — the shard files hold the
  exact bytes of the corresponding factor rows, so a
  :class:`~repro.sharding.ShardedIndex` over the store answers
  queries ``np.array_equal`` to the source index;
* :func:`repro.sharding.builder.build_sharded_store` builds shards
  incrementally from the graph without ever materialising the full
  factors (the out-of-core path, tolerance-equivalence contract).

Reads go through :meth:`ShardStore.load_shard`, which carries the
``shard.read`` chaos seam (:mod:`repro.testing.faults`): tests inject
read failures, latency, and in-memory corruption there, and the
sharded index's retry + validation logic is proven against it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import InvalidParameterError, ShardCorrupted
from repro.sharding.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    ShardManifest,
    ShardMeta,
    array_sha256,
    plan_shards,
)
from repro.testing import faults

__all__ = ["Shard", "ShardStore", "ShardStoreWriter", "shard_index"]


def _shard_file_names(index: int) -> Tuple[str, str]:
    return f"shard-{index:05d}.z.npy", f"shard-{index:05d}.u.npy"


@dataclass(frozen=True)
class Shard:
    """One loaded shard: row range plus its two factor blocks."""

    index: int
    start: int
    stop: int
    z: np.ndarray
    u: np.ndarray

    @property
    def num_rows(self) -> int:
        return self.stop - self.start


class ShardStoreWriter:
    """Incremental writer: one shard at a time, manifest at the end.

    The out-of-core builder hands each ``(Z block, U block)`` pair to
    :meth:`write_shard` as soon as it is computed and frees it
    immediately after, so the writer never holds more than the shard
    currently being persisted.  :meth:`finalize` refuses to run until
    every planned shard was written — a crashed build leaves no
    manifest, and a store without a manifest does not open.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        boundaries: List[Tuple[int, int]],
        *,
        rank: int,
        damping: float,
        epsilon: float,
        dtype: str,
        builder: str,
        stein_iterations: int = 0,
        svd_seed: int = 0,
        solver: str = "squaring",
        dangling: str = "zero",
        block_rows: int = 0,
        overwrite: bool = False,
    ):
        self.path = os.fspath(path)
        if not boundaries:
            raise InvalidParameterError("boundaries must be non-empty")
        self._boundaries = [(int(a), int(b)) for a, b in boundaries]
        self._num_nodes = self._boundaries[-1][1]
        self._rank = int(rank)
        self._damping = float(damping)
        self._epsilon = float(epsilon)
        self._dtype = np.dtype(dtype)
        self._builder = str(builder)
        self._stein_iterations = int(stein_iterations)
        self._svd_seed = int(svd_seed)
        self._solver = str(solver)
        self._dangling = str(dangling)
        self._block_rows = int(block_rows)
        self._written: dict = {}
        if os.path.exists(os.path.join(self.path, MANIFEST_NAME)):
            if not overwrite:
                raise InvalidParameterError(
                    f"shard store {self.path!r} already exists "
                    "(pass overwrite=True to replace it)"
                )
        os.makedirs(self.path, exist_ok=True)

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        return list(self._boundaries)

    def write_shard(self, index: int, z_block: np.ndarray, u_block: np.ndarray) -> ShardMeta:
        """Persist one shard's factor blocks and record their digests."""
        if not (0 <= index < len(self._boundaries)):
            raise InvalidParameterError(
                f"shard index {index} out of range "
                f"[0, {len(self._boundaries)})"
            )
        start, stop = self._boundaries[index]
        for name, block in (("Z", z_block), ("U", u_block)):
            if block.shape != (stop - start, self._rank):
                raise InvalidParameterError(
                    f"shard {index} {name} block has shape {block.shape}, "
                    f"expected {(stop - start, self._rank)}"
                )
            if block.dtype != self._dtype:
                raise InvalidParameterError(
                    f"shard {index} {name} block dtype {block.dtype} does "
                    f"not match the store dtype {self._dtype}"
                )
        z_name, u_name = _shard_file_names(index)
        z_block = np.ascontiguousarray(z_block)
        u_block = np.ascontiguousarray(u_block)
        np.save(os.path.join(self.path, z_name), z_block)
        np.save(os.path.join(self.path, u_name), u_block)
        # The per-shard score bound for blockwise top-k: a pure float64
        # function of the shard bytes, so a single-shard rebuild
        # (repro.sharding.builder.rebuild_shards) reproduces it exactly.
        z_norms = np.linalg.norm(z_block.astype(np.float64, copy=False), axis=1)
        meta = ShardMeta(
            index=int(index),
            start=start,
            stop=stop,
            z_file=z_name,
            u_file=u_name,
            z_sha256=array_sha256(z_block),
            u_sha256=array_sha256(u_block),
            z_norm_max=float(z_norms.max()) if z_norms.size else 0.0,
        )
        self._written[int(index)] = meta
        return meta

    def finalize(self) -> "ShardStore":
        """Write the manifest (all shards must have been written)."""
        missing = [
            i for i in range(len(self._boundaries)) if i not in self._written
        ]
        if missing:
            raise InvalidParameterError(
                f"cannot finalize shard store: shards {missing} were "
                "never written"
            )
        manifest = ShardManifest(
            version=MANIFEST_VERSION,
            num_nodes=self._num_nodes,
            rank=self._rank,
            damping=self._damping,
            epsilon=self._epsilon,
            dtype=self._dtype.name,
            builder=self._builder,
            stein_iterations=self._stein_iterations,
            svd_seed=self._svd_seed,
            solver=self._solver,
            dangling=self._dangling,
            block_rows=self._block_rows,
            shards=[self._written[i] for i in range(len(self._boundaries))],
        )
        manifest.save(self.path)
        return ShardStore(self.path)


class ShardStore:
    """Read side of a shard-store directory.

    Parameters
    ----------
    path:
        Store directory (must contain a valid ``manifest.json``; the
        manifest's sidecar digest is always verified on open).
    verify:
        ``"manifest"`` (default) trusts the per-shard digests and
        checks them lazily/never; ``"hashes"`` re-hashes every shard
        file on open (full-store fsck, what the registry does before
        serving a store found on disk).

    Notes
    -----
    :meth:`load_shard` defaults to ``mmap=True`` so opening a store
    costs O(manifest) memory and queries touch only the pages of the
    shards they route to — the point of the subsystem.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        *,
        verify: str = "manifest",
    ):
        if verify not in ("manifest", "hashes"):
            raise InvalidParameterError(
                f"verify must be 'manifest' or 'hashes', got {verify!r}"
            )
        self.path = os.fspath(path)
        self.manifest = ShardManifest.load(self.path)
        if verify == "hashes":
            for meta in self.manifest.shards:
                self.verify_shard(meta.index)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.manifest.num_nodes

    @property
    def num_shards(self) -> int:
        return self.manifest.num_shards

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        return self.manifest.boundaries

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.manifest.dtype)

    def shard_paths(self, index: int) -> Tuple[str, str]:
        meta = self._meta(index)
        return (
            os.path.join(self.path, meta.z_file),
            os.path.join(self.path, meta.u_file),
        )

    def _meta(self, index: int) -> ShardMeta:
        if not (0 <= index < self.num_shards):
            raise InvalidParameterError(
                f"shard index {index} out of range [0, {self.num_shards})"
            )
        return self.manifest.shards[index]

    # ------------------------------------------------------------------
    # reads (the chaos seam lives here)
    # ------------------------------------------------------------------
    def load_shard(
        self, index: int, *, mmap: bool = True, validate: bool = False
    ) -> Shard:
        """Load one shard's ``(Z, U)`` blocks.

        The ``shard.read`` seam fires before the files are opened
        (injected ``OSError``/latency travel the real error path) and
        transforms the loaded pair afterwards (injected corruption).
        With ``validate=True`` both blocks are re-hashed against the
        manifest digests after loading — a corrupted shard (on disk or
        in flight) raises :class:`~repro.errors.ShardCorrupted` instead
        of flowing silently into query results.  Validation reads every
        page, so it defeats mmap laziness; the sharded index exposes it
        as an opt-in (``validate_reads``), mirroring the column cache's
        ``validate_checksums``.
        """
        meta = self._meta(index)
        z_path, u_path = self.shard_paths(index)
        faults.fire("shard.read", shard=int(index), path=self.path)
        mode: Optional[str] = "r" if mmap else None
        z_block = np.load(z_path, mmap_mode=mode)
        u_block = np.load(u_path, mmap_mode=mode)
        z_block, u_block = faults.transform(
            "shard.read", (z_block, u_block), shard=int(index), path=self.path
        )
        self._check_blocks(meta, z_block, u_block, validate=validate)
        return Shard(
            index=int(index),
            start=meta.start,
            stop=meta.stop,
            z=z_block,
            u=u_block,
        )

    def _check_blocks(
        self,
        meta: ShardMeta,
        z_block: np.ndarray,
        u_block: np.ndarray,
        *,
        validate: bool,
    ) -> None:
        expected_shape = (meta.num_rows, self.manifest.rank)
        for name, block, digest in (
            ("Z", z_block, meta.z_sha256),
            ("U", u_block, meta.u_sha256),
        ):
            if block.shape != expected_shape or block.dtype != self.dtype:
                raise ShardCorrupted(
                    self.path,
                    meta.index,
                    f"{name} block has shape {block.shape} dtype "
                    f"{block.dtype}, expected {expected_shape} {self.dtype}",
                )
            if validate:
                actual = array_sha256(block)
                if actual != digest:
                    raise ShardCorrupted(
                        self.path,
                        meta.index,
                        f"{name} sha256 mismatch (expected {digest[:12]}..., "
                        f"got {actual[:12]}...)",
                    )

    def verify_shard(self, index: int) -> None:
        """Re-read shard ``index`` from disk and check it byte-for-byte.

        Bypasses the chaos seam (this is the fsck path, not the serving
        path).  Raises :class:`~repro.errors.ShardCorrupted` on digest
        or shape mismatch; ``OSError`` propagates for missing files.
        """
        meta = self._meta(index)
        z_path, u_path = self.shard_paths(index)
        z_block = np.load(z_path, mmap_mode="r")
        u_block = np.load(u_path, mmap_mode="r")
        self._check_blocks(meta, z_block, u_block, validate=True)

    def quarantine_shard(self, index: int) -> None:
        """Move a bad shard's files aside (best effort, registry pattern)."""
        for target in self.shard_paths(index):
            try:
                os.replace(target, target + ".corrupt")
            except OSError:
                try:
                    os.remove(target)
                except OSError:
                    pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardStore(path={self.path!r}, n={self.num_nodes}, "
            f"shards={self.num_shards}, dtype={self.manifest.dtype})"
        )


def shard_index(
    index,
    path: Union[str, "os.PathLike[str]"],
    *,
    num_shards: int,
    overwrite: bool = False,
) -> ShardStore:
    """Shard a *prepared* monolithic index into a store, byte-exactly.

    Shard ``i`` holds ``Z[start_i:stop_i, :]`` and ``U[start_i:stop_i,
    :]`` as contiguous copies of the factor rows — the identical bytes
    — so a :class:`~repro.sharding.ShardedIndex` over the result is
    ``np.array_equal`` to ``index.query_columns`` in exact mode and
    within :func:`~repro.core.index.batched_query_atol` in batched
    mode, for every shard count (docs/sharding.md).  This is the path
    behind ``csrplus shard-build --from-index``; the memory-bounded
    default is :func:`repro.sharding.builder.build_sharded_store`.
    """
    u_matrix, _, _, z_matrix = index.factors  # enforces prepared-ness
    writer = ShardStoreWriter(
        path,
        plan_shards(index.num_nodes, num_shards),
        rank=index.config.rank,
        damping=index.config.damping,
        epsilon=index.config.epsilon,
        dtype=z_matrix.dtype.name,
        builder="from-index",
        stein_iterations=index.stein_iterations,
        svd_seed=index.config.svd_seed,
        solver=index.config.solver,
        dangling=index.config.dangling,
        overwrite=overwrite,
    )
    for i, (start, stop) in enumerate(writer.boundaries):
        writer.write_shard(i, z_matrix[start:stop, :], u_matrix[start:stop, :])
    return writer.finalize()
