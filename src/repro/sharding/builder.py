"""Out-of-core shard-store builder: Algorithm 1 without the full factors.

The monolithic :meth:`~repro.core.index.CSRPlusIndex.prepare` holds
three ``n x r`` dense factors at its peak (``U_q``, ``V_q``, ``Z``,
each ``n*r*8`` bytes) on top of the sparse ``Q``.  For a graph whose
factors do not fit, this builder runs the same pipeline with ~one
``n x r`` factor resident:

1. ``Q`` — sparse transition matrix (as usual);
2. SVD with ``return_singular_vectors="vh"`` — ARPACK solves the same
   eigenproblem but materialises only the right factor ``V_q`` (which
   is the *retained* query factor ``U := V_q``; the left factor is
   only ever needed transiently to form ``H``);
3. ``H`` accumulated blockwise: ``U_q[blk] = (Q[blk] @ V_q) / sigma``
   reconstructs ``block_rows`` rows of the left factor at a time, and
   ``H = (sum_blk U_q[blk]^T V_q[blk]) * sigma`` — peak extra memory
   is one ``block_rows x r`` buffer, and ``Q`` is released right after;
4. Stein solve for ``P`` (``r x r``, as usual);
5. ``Z`` streamed shard by shard: ``Z[a:b] = V_q[a:b] @ (Sigma P
   Sigma)`` is computed, persisted via
   :class:`~repro.sharding.store.ShardStoreWriter`, and freed before
   the next shard.

Every buffer is charged to a :class:`~repro.core.memory.MemoryMeter`
under ``shard/*`` labels for exactly its lifetime, so the ledger peak
honestly reflects the out-of-core profile — ``benchmarks/
test_sharding.py`` asserts it at <= 0.5x the monolithic build's peak.

**Equivalence contract** (docs/sharding.md): stores built this way are
*tolerance-equivalent*, not bit-identical, to a monolithic prepare —
the vh-only SVD skips sign canonicalisation (per-column sign flips
applied consistently to ``Z`` and ``U`` cancel exactly in every query,
since float negation is lossless) and the blockwise ``H``/``Z`` GEMMs
sum in a different order.  Queries against such a store agree with the
monolithic index within :func:`~repro.core.index.batched_query_atol`
(measured ~1e-16 vs a ~1e-14 bound).  For *byte-identical* shards use
:func:`~repro.sharding.store.shard_index` on a prepared index; the
small-matrix dense-SVD path below (where out-of-core cannot pay
anyway) also reproduces the monolithic bytes exactly.

Builds are deterministic: the factors are a pure function of
``(graph, config)`` and the shard layout of ``(n, num_shards)``, so
rebuilding any single shard reproduces its original bytes — which is
what lets :class:`~repro.serving.registry.IndexRegistry` repair one
corrupt shard in place (:func:`rebuild_shards`) with the manifest's
digests unchanged.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np
from scipy.sparse.linalg import svds

from repro.core.config import CSRPlusConfig
from repro.core.memory import MemoryMeter, publish_peak, sparse_nbytes
from repro.errors import (
    DecompositionError,
    InvalidParameterError,
    ShardCorrupted,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.transition import transition_matrix
from repro.linalg.stein import (
    solve_stein_direct,
    solve_stein_fixed_point,
    solve_stein_squaring,
)
from repro.linalg.svd import truncated_svd, uses_dense_fallback
from repro.sharding.manifest import (
    MANIFEST_VERSION,
    ShardManifest,
    ShardMeta,
    array_sha256,
    plan_shards,
)
from repro.sharding.store import ShardStore, ShardStoreWriter, _shard_file_names

__all__ = [
    "build_sharded_store",
    "rebuild_shards",
    "repair_sharded_store",
    "ShardRepairReport",
]

#: Default cap on the transient left-factor reconstruction buffer.
DEFAULT_BLOCK_ROWS = 4096


def _default_block_rows(num_nodes: int) -> int:
    """<= 1/8 of the factor rows, capped — keeps the buffer marginal."""
    return max(1, min(DEFAULT_BLOCK_ROWS, -(-num_nodes // 8)))


def _solve_stein(h_matrix: np.ndarray, cfg: CSRPlusConfig) -> Tuple[np.ndarray, int]:
    if cfg.solver == "squaring":
        return solve_stein_squaring(h_matrix, cfg.damping, cfg.epsilon)
    if cfg.solver == "fixed_point":
        return solve_stein_fixed_point(h_matrix, cfg.damping, cfg.epsilon)
    return solve_stein_direct(h_matrix, cfg.damping), 0


def _factors_streaming(
    graph: DiGraph,
    cfg: CSRPlusConfig,
    meter: MemoryMeter,
    block_rows: int,
) -> Tuple[np.ndarray, Callable[[int, int], np.ndarray], int]:
    """The vh-only pipeline: returns ``(U, z_block_of, stein_iterations)``.

    ``U`` is the retained ``n x r`` query factor (float64, *not* sign
    canonicalised — see the module docstring) and ``z_block_of(a, b)``
    computes ``Z[a:b]`` on demand; neither the left SVD factor nor the
    full ``Z`` is ever materialised.
    """
    q_matrix = transition_matrix(graph, dangling=cfg.dangling).tocsr()
    meter.charge("shard/Q", sparse_nbytes(q_matrix))
    n = graph.num_nodes

    # Same deterministic start vector as linalg.svd.truncated_svd, but
    # only the right singular vectors are computed and kept.
    rng = np.random.default_rng(cfg.svd_seed)
    v0 = rng.standard_normal(n)
    try:
        _, s, vt = svds(
            q_matrix.astype(np.float64),
            k=cfg.rank,
            v0=v0,
            return_singular_vectors="vh",
        )
    except Exception as exc:
        raise DecompositionError(f"sparse SVD (ARPACK) failed: {exc}") from exc
    order = np.argsort(s)[::-1]
    sigma = np.ascontiguousarray(s[order])
    u_factor = np.ascontiguousarray(vt[order].T)  # U := V_q, the retained factor
    meter.charge("shard/U", u_factor.nbytes)
    meter.charge("shard/Sigma", sigma.nbytes)

    # H = (U_q^T V_q) * sigma, with U_q reconstructed block by block:
    # Q V_q = U_q Sigma, so U_q[blk] = (Q[blk] @ V_q) / sigma.  A zero
    # singular value zeroes its H column either way (H scales by sigma),
    # so the guarded divisor never changes the result.
    divisor = np.where(sigma == 0.0, 1.0, sigma)
    h_matrix = np.zeros((cfg.rank, cfg.rank), dtype=np.float64)
    with meter.charged(
        "shard/Ublock", min(block_rows, n) * cfg.rank * 8
    ):
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            left_block = (q_matrix[start:stop, :] @ u_factor) / divisor
            h_matrix += left_block.T @ u_factor[start:stop, :]
    h_matrix *= sigma[np.newaxis, :]
    meter.charge("shard/H", h_matrix.nbytes)

    # Q was only needed for the SVD and the H reconstruction.
    del q_matrix
    meter.release("shard/Q")

    p_matrix, iterations = _solve_stein(h_matrix, cfg)
    meter.charge("shard/P", p_matrix.nbytes)
    sps = (sigma[:, np.newaxis] * p_matrix) * sigma[np.newaxis, :]

    def z_block_of(start: int, stop: int) -> np.ndarray:
        return u_factor[start:stop, :] @ sps

    return u_factor, z_block_of, iterations


def _factors_dense(
    graph: DiGraph,
    cfg: CSRPlusConfig,
    meter: MemoryMeter,
) -> Tuple[np.ndarray, Callable[[int, int], np.ndarray], int]:
    """The small-matrix path: mirrors ``prepare()`` line for line.

    Runs exactly the monolithic pipeline (dense SVD via
    :func:`~repro.linalg.svd.truncated_svd`, including sign
    canonicalisation, and one full-``Z`` GEMM), so the resulting shards
    are byte-identical to slicing a prepared index.  Out-of-core
    streaming cannot pay below the dense-fallback threshold, so
    fidelity wins over streaming here.
    """
    q_matrix = transition_matrix(graph, dangling=cfg.dangling)
    meter.charge("shard/Q", sparse_nbytes(q_matrix))
    svd = truncated_svd(q_matrix, cfg.rank, seed=cfg.svd_seed)
    u_factor, v_factor = svd.v, svd.u
    meter.charge("shard/U", u_factor.nbytes)
    meter.charge("shard/V", v_factor.nbytes)
    meter.charge("shard/Sigma", svd.sigma.nbytes)
    h_matrix = (v_factor.T @ u_factor) * svd.sigma[np.newaxis, :]
    meter.charge("shard/H", h_matrix.nbytes)
    del v_factor, q_matrix
    meter.release("shard/V")
    meter.release("shard/Q")
    p_matrix, iterations = _solve_stein(h_matrix, cfg)
    meter.charge("shard/P", p_matrix.nbytes)
    sps = (svd.sigma[:, np.newaxis] * p_matrix) * svd.sigma[np.newaxis, :]
    z_matrix = u_factor @ sps
    meter.charge("shard/Z", z_matrix.nbytes)
    return u_factor, lambda start, stop: z_matrix[start:stop, :], iterations


def _compute_factors(
    graph: DiGraph,
    cfg: CSRPlusConfig,
    meter: MemoryMeter,
    block_rows: Optional[int],
) -> Tuple[np.ndarray, Callable[[int, int], np.ndarray], int]:
    max_rank = max(1, graph.num_nodes)
    if cfg.rank > max_rank:
        raise InvalidParameterError(
            f"rank {cfg.rank} exceeds the number of nodes {graph.num_nodes}"
        )
    if block_rows is not None and block_rows < 1:
        raise InvalidParameterError(
            f"block_rows must be >= 1 (or None for auto), got {block_rows}"
        )
    shape = (graph.num_nodes, graph.num_nodes)
    if uses_dense_fallback(shape, cfg.rank):
        return _factors_dense(graph, cfg, meter)
    return _factors_streaming(
        graph, cfg, meter, block_rows or _default_block_rows(graph.num_nodes)
    )


def _cast_block(block: np.ndarray, dtype: str) -> np.ndarray:
    """prepare()'s dtype policy: compute in f64, cast only what is kept."""
    if dtype == "float32":
        return block.astype(np.float32)
    return np.ascontiguousarray(block)


def build_sharded_store(
    graph: DiGraph,
    path: Union[str, "os.PathLike[str]"],
    *,
    num_shards: int,
    config: Optional[CSRPlusConfig] = None,
    block_rows: Optional[int] = None,
    overwrite: bool = False,
    memory: Optional[MemoryMeter] = None,
    **overrides,
) -> ShardStore:
    """Build a sharded store from ``graph`` with ~one shard resident.

    Parameters
    ----------
    graph / config / overrides:
        Exactly as for :class:`~repro.core.index.CSRPlusIndex` —
        ``build_sharded_store(g, path, num_shards=4, rank=32)`` builds
        the sharded counterpart of ``CSRPlusIndex(g, rank=32)``.
    num_shards:
        Node-range shards to cut (clamped to ``num_nodes``;
        :func:`~repro.sharding.manifest.plan_shards`).
    block_rows:
        Rows per transient left-factor reconstruction block (streaming
        path only); ``None`` picks ``min(4096, ceil(n / 8))``.
    memory:
        Ledger to charge; a fresh unlimited
        :class:`~repro.core.memory.MemoryMeter` by default.  A
        ``memory_budget_bytes`` in the config is honoured either way.

    Returns the opened :class:`~repro.sharding.store.ShardStore`.
    """
    cfg = (config or CSRPlusConfig()).with_overrides(**overrides)
    meter = memory if memory is not None else MemoryMeter(cfg.memory_budget_bytes)
    u_factor, z_block_of, iterations = _compute_factors(
        graph, cfg, meter, block_rows
    )
    # The effective streaming block height is part of the determinism
    # record: blockwise H accumulation is partition-dependent in
    # floating point, so rebuilds must replay the same height (0 = the
    # dense path ran and no streaming was involved).
    shape = (graph.num_nodes, graph.num_nodes)
    if uses_dense_fallback(shape, cfg.rank):
        effective_block_rows = 0
    else:
        effective_block_rows = block_rows or _default_block_rows(graph.num_nodes)
    writer = ShardStoreWriter(
        path,
        plan_shards(graph.num_nodes, num_shards),
        rank=cfg.rank,
        damping=cfg.damping,
        epsilon=cfg.epsilon,
        dtype=cfg.dtype,
        builder="out-of-core",
        stein_iterations=iterations,
        overwrite=overwrite,
        svd_seed=cfg.svd_seed,
        solver=cfg.solver,
        dangling=cfg.dangling,
        block_rows=effective_block_rows,
    )
    itemsize = np.dtype(cfg.dtype).itemsize
    for i, (start, stop) in enumerate(writer.boundaries):
        rows = stop - start
        # transient f64 block plus (for f32 stores) the cast copies
        transient = rows * cfg.rank * (8 + 2 * itemsize if cfg.dtype == "float32" else 8)
        with meter.charged(f"shard/z-block-{i}", transient):
            z_block = _cast_block(z_block_of(start, stop), cfg.dtype)
            u_block = _cast_block(u_factor[start:stop, :], cfg.dtype)
            writer.write_shard(i, z_block, u_block)
            del z_block, u_block
    store = writer.finalize()
    # Everything the factor pipeline retained dies with this frame —
    # settle the ledger so the peak is the build's only legacy.
    del u_factor, z_block_of
    for label in list(meter.live_breakdown()):
        if label.startswith("shard/"):
            meter.release(label)
    publish_peak(meter, "shard-build")
    return store


def rebuild_shards(
    graph: DiGraph,
    path: Union[str, "os.PathLike[str]"],
    shard_ids: Iterable[int],
    *,
    verify: bool = True,
) -> List[int]:
    """Deterministically regenerate selected shards of an existing store.

    Re-runs the build pipeline recorded in the manifest (``builder``,
    ``svd_seed``, ``solver``, ...) against ``graph`` and rewrites only
    the files of ``shard_ids``, leaving the manifest untouched — builds
    are deterministic, so the regenerated bytes match the manifest's
    digests (checked when ``verify=True``; a mismatch raises
    :class:`~repro.errors.ShardCorrupted`, meaning the graph or code no
    longer matches the store and the whole store must be rebuilt).

    This is the single-shard repair primitive behind
    :meth:`~repro.serving.registry.IndexRegistry.get_sharded`.
    """
    root = os.fspath(path)
    manifest = ShardManifest.load(root)
    if manifest.num_nodes != graph.num_nodes:
        raise InvalidParameterError(
            f"store at {root!r} was built for {manifest.num_nodes} nodes, "
            f"got a graph with {graph.num_nodes}"
        )
    targets = sorted({int(i) for i in shard_ids})
    for i in targets:
        if not (0 <= i < manifest.num_shards):
            raise InvalidParameterError(
                f"shard index {i} out of range [0, {manifest.num_shards})"
            )
    if not targets:
        return []
    cfg = CSRPlusConfig(
        damping=manifest.damping,
        rank=manifest.rank,
        epsilon=manifest.epsilon,
        solver=manifest.solver,
        dangling=manifest.dangling,
        svd_seed=manifest.svd_seed,
        dtype=manifest.dtype,
    )
    if manifest.builder == "from-index":
        from repro.core.index import CSRPlusIndex

        index = CSRPlusIndex(graph, cfg).prepare()
        u_matrix, _, _, z_matrix = index.factors
        u_factor, z_block_of = u_matrix, (
            lambda start, stop: z_matrix[start:stop, :]
        )
        cast = lambda block: np.ascontiguousarray(block)  # noqa: E731
    else:
        meter = MemoryMeter()
        u_factor, z_block_of, _ = _compute_factors(
            graph, cfg, meter, manifest.block_rows or None
        )
        cast = lambda block: _cast_block(block, cfg.dtype)  # noqa: E731
    for i in targets:
        meta = manifest.shards[i]
        z_block = cast(z_block_of(meta.start, meta.stop))
        u_block = cast(u_factor[meta.start : meta.stop, :])
        if verify:
            for name, block, digest in (
                ("Z", z_block, meta.z_sha256),
                ("U", u_block, meta.u_sha256),
            ):
                actual = array_sha256(block)
                if actual != digest:
                    raise ShardCorrupted(
                        root,
                        i,
                        f"rebuilt {name} block does not reproduce the "
                        f"manifest digest (expected {digest[:12]}..., got "
                        f"{actual[:12]}...); graph/config no longer match "
                        "the store",
                    )
        z_name, u_name = _shard_file_names(i)
        np.save(os.path.join(root, z_name), z_block)
        np.save(os.path.join(root, u_name), u_block)
        # drop any quarantined leftovers for the repaired files
        for leftover in (z_name, u_name):
            try:
                os.remove(os.path.join(root, leftover + ".corrupt"))
            except OSError:
                pass
    return targets


@dataclass(frozen=True)
class ShardRepairReport:
    """Outcome of :func:`repair_sharded_store`.

    ``repaired_shards`` lists the shards whose bytes changed (and were
    rewritten); ``dirty_ranges`` gives the corresponding ``[start,
    stop)`` node ranges — the rows of ``Z``/``U`` a version swap must
    invalidate or patch in serving caches.  ``full_rebuild`` means the
    dirty fraction crossed the threshold (or the node count changed)
    and every shard was rewritten from scratch.
    """

    path: str
    repaired_shards: Tuple[int, ...]
    total_shards: int
    dirty_fraction: float
    full_rebuild: bool
    dirty_ranges: Tuple[Tuple[int, int], ...]

    def open(self, **kwargs) -> ShardStore:
        """Open the repaired store for serving."""
        return ShardStore(self.path, **kwargs)


def _link_or_copy(src: str, dst: str) -> None:
    """Hard-link ``src`` to ``dst`` (byte sharing), copying as fallback."""
    try:
        if os.path.exists(dst):
            os.remove(dst)
        os.link(src, dst)
    except OSError:
        shutil.copy2(src, dst)


def repair_sharded_store(
    graph: DiGraph,
    old_path: Union[str, "os.PathLike[str]"],
    new_path: Union[str, "os.PathLike[str]"],
    *,
    dirty_threshold: float = 0.5,
    overwrite: bool = False,
) -> ShardRepairReport:
    """Targeted repair of a store against a *mutated* graph (digest diff).

    Unlike :func:`rebuild_shards` — which restores a corrupted shard of
    an *unchanged* graph and leaves the manifest alone — this is the
    live-update primitive: the graph has genuinely changed, so the
    factors (and some shard digests) have too.  The pipeline recorded
    in the old manifest is replayed against ``graph``, every shard's
    fresh ``Z``/``U`` blocks are hashed, and only the shards whose
    digests differ from the old manifest are rewritten into
    ``new_path``; byte-identical shards are hard-linked from the old
    directory (Theorem 3.5 row independence makes per-row-range reuse
    sound, and the digest comparison makes it *exact*).  A fresh
    manifest is written either way, so the new directory is a complete,
    independently verifiable store and the old one is never touched —
    in-flight queries against mmap-ed old shards keep their bytes
    (zero-downtime swap, docs/dynamic.md).

    Past ``dirty_threshold`` (fraction of shards dirty), selective
    linking stops paying and the store is rebuilt wholesale into
    ``new_path`` (``full_rebuild=True`` in the report).  A changed node
    count always forces the full rebuild, since row ranges no longer
    correspond.

    The repaired store's bytes equal a from-scratch build against the
    mutated graph in every case: clean shards are proven equal by
    digest, dirty shards are freshly written from the recomputed
    factors.
    """
    old_root = os.fspath(old_path)
    new_root = os.fspath(new_path)
    if os.path.abspath(old_root) == os.path.abspath(new_root):
        raise InvalidParameterError(
            "repair_sharded_store must write a fresh directory: rewriting "
            "the live store in place would corrupt mmap-ed readers"
        )
    if not (0.0 <= dirty_threshold <= 1.0):
        raise InvalidParameterError(
            f"dirty_threshold must be in [0, 1], got {dirty_threshold}"
        )
    if os.path.exists(new_root):
        if not overwrite:
            raise InvalidParameterError(
                f"repair target {new_root!r} already exists "
                "(pass overwrite=True to replace it)"
            )
        shutil.rmtree(new_root)
    manifest = ShardManifest.load(old_root)
    cfg = CSRPlusConfig(
        damping=manifest.damping,
        rank=manifest.rank,
        epsilon=manifest.epsilon,
        solver=manifest.solver,
        dangling=manifest.dangling,
        svd_seed=manifest.svd_seed,
        dtype=manifest.dtype,
    )
    if manifest.builder == "from-index":
        from repro.core.index import CSRPlusIndex

        index = CSRPlusIndex(graph, cfg).prepare()
        u_matrix, _, _, z_matrix = index.factors
        u_factor = u_matrix
        z_block_of = lambda start, stop: z_matrix[start:stop, :]  # noqa: E731
        cast = lambda block: np.ascontiguousarray(block)  # noqa: E731
        iterations = int(index.stein_iterations)
    else:
        u_factor, z_block_of, iterations = _compute_factors(
            graph, cfg, MemoryMeter(), manifest.block_rows or None
        )
        cast = lambda block: _cast_block(block, cfg.dtype)  # noqa: E731

    def blocks_of(start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        return cast(z_block_of(start, stop)), cast(u_factor[start:stop, :])

    node_count_changed = manifest.num_nodes != graph.num_nodes
    boundaries = plan_shards(graph.num_nodes, manifest.num_shards)
    total = len(boundaries)
    dirty: List[int] = []
    if node_count_changed:
        dirty = list(range(total))
    else:
        for meta in manifest.shards:
            z_block, u_block = blocks_of(meta.start, meta.stop)
            if (
                array_sha256(z_block) != meta.z_sha256
                or array_sha256(u_block) != meta.u_sha256
            ):
                dirty.append(meta.index)
            del z_block, u_block
    dirty_fraction = len(dirty) / total if total else 0.0
    full_rebuild = node_count_changed or dirty_fraction > dirty_threshold

    if full_rebuild:
        writer = ShardStoreWriter(
            new_root,
            boundaries,
            rank=cfg.rank,
            damping=cfg.damping,
            epsilon=cfg.epsilon,
            dtype=cfg.dtype,
            builder=manifest.builder,
            stein_iterations=iterations,
            svd_seed=cfg.svd_seed,
            solver=cfg.solver,
            dangling=cfg.dangling,
            block_rows=manifest.block_rows,
        )
        for i, (start, stop) in enumerate(writer.boundaries):
            z_block, u_block = blocks_of(start, stop)
            writer.write_shard(i, z_block, u_block)
            del z_block, u_block
        writer.finalize()
        return ShardRepairReport(
            path=new_root,
            repaired_shards=tuple(range(total)),
            total_shards=total,
            dirty_fraction=1.0 if node_count_changed else dirty_fraction,
            full_rebuild=True,
            dirty_ranges=((0, graph.num_nodes),),
        )

    os.makedirs(new_root, exist_ok=True)
    dirty_set = set(dirty)
    new_metas: List[ShardMeta] = []
    for meta in manifest.shards:
        z_name, u_name = _shard_file_names(meta.index)
        if meta.index in dirty_set:
            z_block, u_block = blocks_of(meta.start, meta.stop)
            np.save(os.path.join(new_root, z_name), z_block)
            np.save(os.path.join(new_root, u_name), u_block)
            z_norms = np.linalg.norm(
                z_block.astype(np.float64, copy=False), axis=1
            )
            new_metas.append(
                ShardMeta(
                    index=meta.index,
                    start=meta.start,
                    stop=meta.stop,
                    z_file=z_name,
                    u_file=u_name,
                    z_sha256=array_sha256(z_block),
                    u_sha256=array_sha256(u_block),
                    z_norm_max=float(z_norms.max()) if z_norms.size else 0.0,
                )
            )
            del z_block, u_block
        else:
            for name in (z_name, u_name):
                _link_or_copy(
                    os.path.join(old_root, name), os.path.join(new_root, name)
                )
            new_metas.append(meta)
    ShardManifest(
        version=MANIFEST_VERSION,
        num_nodes=graph.num_nodes,
        rank=cfg.rank,
        damping=cfg.damping,
        epsilon=cfg.epsilon,
        dtype=cfg.dtype,
        builder=manifest.builder,
        stein_iterations=iterations,
        svd_seed=cfg.svd_seed,
        solver=cfg.solver,
        dangling=cfg.dangling,
        block_rows=manifest.block_rows,
        shards=new_metas,
    ).save(new_root)
    return ShardRepairReport(
        path=new_root,
        repaired_shards=tuple(dirty),
        total_shards=total,
        dirty_fraction=dirty_fraction,
        full_rebuild=False,
        dirty_ranges=tuple(
            (manifest.shards[i].start, manifest.shards[i].stop) for i in dirty
        ),
    )
