"""Pure seed-to-shard routing for a node-range shard layout.

:class:`ShardRouter` is the planning half of the sharded query path —
no I/O, no threads, just arithmetic on the shard boundaries — in the
same spirit as :mod:`repro.serving.scheduler` for the service.  Keeping
it pure makes the routing decisions unit-testable in isolation and
reusable by any executor (the in-process thread pool today, a
multi-process or multi-host dispatcher later).

Two distinct shard sets matter for one query batch:

* the **gather set** — shards owning the rows ``U[seed, :]`` for the
  batch's seeds (only these are touched to fetch query vectors);
* the **compute set** — *every* shard, because each shard contributes
  its own output row block ``[start, stop)`` of every column.

:meth:`ShardRouter.plan` resolves the first; the second is simply
``range(num_shards)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError, QueryError

__all__ = ["RoutedSeeds", "ShardRouter"]


@dataclass(frozen=True)
class RoutedSeeds:
    """Where each seed of a batch lives.

    Attributes
    ----------
    seed_ids:
        The validated batch, in request order (duplicates preserved).
    owners:
        ``owners[j]`` is the shard whose row range contains
        ``seed_ids[j]``.
    local_rows:
        ``local_rows[j] = seed_ids[j] - start[owners[j]]`` — the row of
        ``seed_ids[j]`` inside its owner's ``U`` block.
    gather_shards:
        Sorted distinct owners (the shards that must be read to gather
        the batch's query vectors).
    """

    seed_ids: np.ndarray
    owners: np.ndarray
    local_rows: np.ndarray
    gather_shards: Tuple[int, ...]


class ShardRouter:
    """Maps node ids to the shards owning their factor rows."""

    def __init__(self, boundaries: Sequence[Tuple[int, int]]):
        if not boundaries:
            raise InvalidParameterError("boundaries must be non-empty")
        starts = np.asarray([b[0] for b in boundaries], dtype=np.int64)
        stops = np.asarray([b[1] for b in boundaries], dtype=np.int64)
        if starts[0] != 0 or np.any(stops <= starts) or (
            starts.size > 1 and np.any(starts[1:] != stops[:-1])
        ):
            raise InvalidParameterError(
                f"boundaries must tile [0, n) contiguously, got "
                f"{list(boundaries)}"
            )
        self._starts = starts
        self._stops = stops

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return int(self._starts.size)

    @property
    def num_nodes(self) -> int:
        return int(self._stops[-1])

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        return [
            (int(a), int(b)) for a, b in zip(self._starts, self._stops)
        ]

    def row_range(self, shard: int) -> Tuple[int, int]:
        if not (0 <= shard < self.num_shards):
            raise InvalidParameterError(
                f"shard index {shard} out of range [0, {self.num_shards})"
            )
        return int(self._starts[shard]), int(self._stops[shard])

    def shard_of(self, node: int) -> int:
        """The shard whose row range contains ``node``."""
        node = int(node)
        if not (0 <= node < self.num_nodes):
            raise QueryError(
                f"node id must be in [0, {self.num_nodes}), got {node}"
            )
        return int(np.searchsorted(self._stops, node, side="right"))

    def plan(self, seeds) -> RoutedSeeds:
        """Route a seed batch (validates ids, preserves duplicates)."""
        seed_ids = np.asarray(seeds, dtype=np.int64).ravel()
        if seed_ids.size and (
            seed_ids.min() < 0 or seed_ids.max() >= self.num_nodes
        ):
            raise QueryError(
                f"seed ids must be in [0, {self.num_nodes}), got range "
                f"[{seed_ids.min()}, {seed_ids.max()}]"
            )
        owners = np.searchsorted(self._stops, seed_ids, side="right")
        local_rows = seed_ids - self._starts[owners] if seed_ids.size else owners
        return RoutedSeeds(
            seed_ids=seed_ids,
            owners=owners,
            local_rows=local_rows,
            gather_shards=tuple(int(s) for s in np.unique(owners)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRouter(num_shards={self.num_shards}, "
            f"num_nodes={self.num_nodes})"
        )
