"""Sharded out-of-core indexes: node-range shards with fan-out routing.

The paper's online formula ``S[x,q] = [x=q] + c * <Z[x], U[q]>``
(Theorem 3.5) is independent per output row, so row-partitioning the
``n x r`` factors is *embarrassingly exact* — this package exploits
that to serve graphs whose factors do not fit in RAM as one block
(docs/sharding.md):

* :mod:`~repro.sharding.manifest` — shard layout planning and the
  sidecar-checked JSON manifest (per-shard sha256 digests);
* :mod:`~repro.sharding.store` — mmap-able ``.npy`` shard files:
  :func:`shard_index` cuts a prepared monolithic index into
  byte-identical row slices, :class:`ShardStore` reads them back
  (carrying the ``shard.read`` chaos seam);
* :mod:`~repro.sharding.builder` — :func:`build_sharded_store` runs
  Algorithm 1 out-of-core (~one shard of ``Z`` resident, ledger
  charged per shard) and :func:`rebuild_shards` deterministically
  regenerates single shards for corruption repair;
* :mod:`~repro.sharding.router` / :mod:`~repro.sharding.index` —
  :class:`ShardRouter` maps seeds to owner shards and
  :class:`ShardedIndex` fans per-shard work across a thread pool,
  concatenating row blocks into answers ``np.array_equal`` to the
  monolithic exact path (within
  :func:`~repro.core.index.batched_query_atol` for batched mode).

A :class:`ShardedIndex` plugs straight into
:class:`~repro.serving.CoSimRankService` — cache, deadlines, retries,
load shedding, fault seams, and metrics all work unchanged — and into
the CLI via ``csrplus shard-build`` / ``--shards``.
"""

from repro.sharding.builder import (
    ShardRepairReport,
    build_sharded_store,
    rebuild_shards,
    repair_sharded_store,
)
from repro.sharding.index import ShardedIndex
from repro.sharding.manifest import (
    ShardManifest,
    ShardMeta,
    array_sha256,
    plan_shards,
)
from repro.sharding.router import RoutedSeeds, ShardRouter
from repro.sharding.store import Shard, ShardStore, ShardStoreWriter, shard_index

__all__ = [
    "ShardManifest",
    "ShardMeta",
    "array_sha256",
    "plan_shards",
    "Shard",
    "ShardStore",
    "ShardStoreWriter",
    "shard_index",
    "build_sharded_store",
    "rebuild_shards",
    "repair_sharded_store",
    "ShardRepairReport",
    "RoutedSeeds",
    "ShardRouter",
    "ShardedIndex",
]
