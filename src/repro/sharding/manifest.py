"""Shard layout planning and the on-disk shard-store manifest.

A sharded store row-partitions the two ``n x r`` query factors ``Z``
and ``U`` into contiguous *node-range* shards: shard ``i`` owns the
half-open row range ``[start_i, stop_i)`` and persists its slices as
two ``.npy`` files.  The manifest (``manifest.json``) is the store's
single source of truth: shard boundaries, the index hyper-parameters
needed to answer queries (``rank``, ``damping``, ``dtype``, ...), and
one sha256 per shard file computed over the **raw array bytes** — not
the ``.npy`` container — so the same digest verifies a file on disk
and an array in memory (the chaos seam corrupts arrays, not files).

Integrity follows the sidecar pattern of
:mod:`repro.serving.registry`: the manifest itself carries a
``manifest.json.sha256`` sidecar, and each shard is covered by the
digests *inside* the manifest.  One flipped bit therefore localises:
a bad sidecar condemns only the manifest, a bad shard digest condemns
only that shard (:class:`~repro.errors.ShardCorrupted`), and the
registry can quarantine and rebuild the damaged piece alone
(docs/sharding.md).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.errors import InvalidParameterError, ShardCorrupted

__all__ = [
    "MANIFEST_NAME",
    "ShardManifest",
    "ShardMeta",
    "array_sha256",
    "plan_shards",
]

#: File name of the manifest inside a shard-store directory.
MANIFEST_NAME = "manifest.json"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1


def array_sha256(array: np.ndarray) -> str:
    """sha256 of an array's raw data bytes (C order, container-free).

    Hashing the data bytes rather than the ``.npy`` file makes one
    digest usable both for disk verification (load, then hash) and for
    in-memory validation of arrays that may have been corrupted after
    loading (the ``shard.read`` chaos seam).
    """
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def plan_shards(num_nodes: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` row ranges covering ``n``.

    The first ``n % num_shards`` shards get one extra row, so shard
    sizes differ by at most one and the layout is a pure function of
    ``(num_nodes, num_shards)`` — the determinism single-shard rebuild
    relies on.  ``num_shards`` is clamped to ``num_nodes`` (a shard
    must own at least one row).
    """
    if num_nodes < 1:
        raise InvalidParameterError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_shards < 1:
        raise InvalidParameterError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    num_shards = min(int(num_shards), int(num_nodes))
    base, extra = divmod(int(num_nodes), num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(num_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclass(frozen=True)
class ShardMeta:
    """One shard's slot in the manifest."""

    index: int
    start: int
    stop: int
    z_file: str
    u_file: str
    z_sha256: str
    u_sha256: str
    #: Largest ``||Z[x]||_2`` among the shard's rows (float64).  The
    #: blockwise top-k kernel (:mod:`repro.core.topk`) uses it as a
    #: Cauchy–Schwarz score bound, so a cold shard whose bound falls
    #: below every seed's k-th floor is skipped without ever being read.
    #: ``-1.0`` marks manifests written before the field existed: an
    #: unknown bound, which the kernel treats as "never skip" (the
    #: shard is always loaded and scanned — correct, just not pruned).
    z_norm_max: float = -1.0

    @property
    def num_rows(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardManifest:
    """The complete description of a sharded store.

    ``builder`` records provenance: ``"from-index"`` stores are
    byte-identical row slices of a prepared monolithic index (queries
    are bit-exact against it), ``"out-of-core"`` stores were built
    without ever materialising the full factors and carry the
    tolerance-equivalence contract instead (docs/sharding.md).
    """

    version: int
    num_nodes: int
    rank: int
    damping: float
    epsilon: float
    dtype: str
    builder: str
    stein_iterations: int
    #: Build-determinism record: with these plus the fields above and
    #: the graph, a rebuild reproduces every shard byte-for-byte (what
    #: single-shard repair relies on; docs/sharding.md).  ``block_rows``
    #: matters because the streaming builder's blockwise ``H``
    #: accumulation is partition-dependent in floating point; ``0``
    #: means the build did not stream (dense path or from-index).
    svd_seed: int
    solver: str
    dangling: str
    block_rows: int
    shards: List[ShardMeta]

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        return [(meta.start, meta.stop) for meta in self.shards]

    def validate(self) -> None:
        """Structural sanity: shards tile ``[0, num_nodes)`` in order."""
        if self.num_nodes < 1:
            raise InvalidParameterError(
                f"manifest num_nodes must be >= 1, got {self.num_nodes}"
            )
        if not self.shards:
            raise InvalidParameterError("manifest has no shards")
        expected = 0
        for i, meta in enumerate(self.shards):
            if meta.index != i:
                raise InvalidParameterError(
                    f"shard {i} is labelled {meta.index} in the manifest"
                )
            if meta.start != expected or meta.stop <= meta.start:
                raise InvalidParameterError(
                    f"shard {i} covers [{meta.start}, {meta.stop}), "
                    f"expected a non-empty range starting at {expected}"
                )
            expected = meta.stop
        if expected != self.num_nodes:
            raise InvalidParameterError(
                f"shards cover [0, {expected}) but the manifest declares "
                f"{self.num_nodes} nodes"
            )

    # ------------------------------------------------------------------
    # persistence (sidecar-checked, registry.py pattern)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = asdict(self)
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, directory: Union[str, "os.PathLike[str]"]) -> str:
        """Write ``manifest.json`` plus its ``.sha256`` sidecar."""
        path = os.path.join(os.fspath(directory), MANIFEST_NAME)
        text = self.to_json()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        with open(path + ".sha256", "w", encoding="utf-8") as handle:
            handle.write(digest + "\n")
        return path

    @classmethod
    def load(
        cls, directory: Union[str, "os.PathLike[str]"], *, check_sidecar: bool = True
    ) -> "ShardManifest":
        """Read and validate a manifest, verifying its sidecar digest.

        Raises :class:`~repro.errors.ShardCorrupted` (shard index
        ``-1``: the store as a whole) when the sidecar does not match
        or the JSON cannot be parsed, and
        :class:`~repro.errors.InvalidParameterError` for structurally
        invalid layouts.
        """
        root = os.fspath(directory)
        path = os.path.join(root, MANIFEST_NAME)
        with open(path, "rb") as handle:
            raw = handle.read()
        sidecar = path + ".sha256"
        if check_sidecar and os.path.exists(sidecar):
            with open(sidecar, encoding="utf-8") as handle:
                expected = handle.read().strip()
            actual = hashlib.sha256(raw).hexdigest()
            if actual != expected:
                raise ShardCorrupted(
                    root,
                    -1,
                    f"manifest sha256 mismatch (expected {expected[:12]}..., "
                    f"got {actual[:12]}...)",
                )
        try:
            payload = json.loads(raw.decode("utf-8"))
            shards = [ShardMeta(**meta) for meta in payload.pop("shards")]
            manifest = cls(shards=shards, **payload)
        except (ValueError, TypeError, KeyError) as exc:
            raise ShardCorrupted(
                root, -1, f"unparseable manifest: {type(exc).__name__}: {exc}"
            ) from exc
        if manifest.version != MANIFEST_VERSION:
            raise ShardCorrupted(
                root, -1, f"unsupported manifest version {manifest.version}"
            )
        manifest.validate()
        return manifest
