"""Fan-out query engine over a node-range shard store.

:class:`ShardedIndex` implements the :meth:`query_columns` contract of
:class:`~repro.core.index.CSRPlusIndex` on top of a
:class:`~repro.sharding.store.ShardStore`, without ever holding the
monolithic factors:

1. **route** — seeds are mapped to the shards owning their ``U`` rows
   (:class:`~repro.sharding.router.ShardRouter`) and the query vectors
   are gathered from just those shards;
2. **fan out** — every shard contributes its output row block
   ``[start, stop)``: per-shard tasks run on a thread pool and write
   disjoint row ranges of one Fortran-ordered result;
3. **concatenate** — the identity term is scattered into the assembled
   block, exactly as the monolithic path does.

Exactness: in ``"exact"`` mode each shard evaluates the same
partition-stable kernel (:func:`~repro.core.index.exact_column_product`)
the monolithic index uses, and that kernel's output for row ``x``
depends only on ``Z[x]`` and the query vector — so the concatenation
is ``np.array_equal`` to the monolithic answer for any shard layout
(docs/sharding.md has the argument).  ``"batched"`` mode runs one GEMM
per shard and inherits the documented
:func:`~repro.core.index.batched_query_atol` tolerance contract.

Robustness: shard reads (the ``shard.read`` chaos seam) are retried
once by default; a shard that stays unreadable or fails validation
raises the typed :class:`~repro.errors.ShardCorrupted` — a poisoned
shard never degrades to silently wrong rows.  Under
:class:`~repro.serving.CoSimRankService` that error surfaces through
the existing per-seed isolation and typed-outcome machinery unchanged.

Observability: queries emit ``shard.query`` spans with one
``shard.query.block`` child per shard and ``shard.load`` spans for
store reads, plus ``csrplus_shard_*`` counters/gauges on the process
global (or an injected) metrics registry.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Union

import numpy as np

import repro.obs as obs
from repro.core.config import QUERY_MODES, CSRPlusConfig
from repro.core.index import exact_column_product
from repro.errors import InvalidParameterError, ShardCorrupted
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sharding.router import ShardRouter
from repro.sharding.store import Shard, ShardStore

__all__ = ["ShardedIndex"]


class ShardedIndex:
    """Query engine over mmap-ed node-range shards of ``Z`` and ``U``.

    Implements the backend surface :class:`~repro.serving.
    CoSimRankService` needs (``prepare()``, ``num_nodes``, ``dtype``,
    ``config``, ``query_columns``), so the serving layer's cache,
    deadlines, retries, load shedding, fault seams, and metrics all
    work unchanged over a sharded store.

    Parameters
    ----------
    store:
        A :class:`~repro.sharding.store.ShardStore` or the path of a
        store directory.
    query_mode:
        Default evaluation mode (``"exact"``/``"batched"``); ``None``
        uses ``"exact"``, mirroring :class:`~repro.core.config.
        CSRPlusConfig`.
    max_workers:
        Thread count for the per-shard fan-out.  ``None`` (default)
        uses ``min(num_shards, os.cpu_count())``; ``1`` computes every
        shard serially on the calling thread (no executor is created).
    mmap:
        Memory-map shard files (default) so only the pages a query
        touches become resident; ``False`` reads shards fully.
    validate_reads:
        Re-hash every shard against its manifest digest on load
        (opt-in, like the column cache's checksum validation): detects
        in-flight corruption at the cost of touching every page.
    read_retries:
        How many times a failed shard load is retried before the typed
        :class:`~repro.errors.ShardCorrupted` is raised.

    Examples
    --------
    >>> import numpy as np, tempfile
    >>> from repro.core.index import CSRPlusIndex
    >>> from repro.graphs import ring
    >>> from repro.sharding import ShardedIndex, shard_index
    >>> index = CSRPlusIndex(ring(9), rank=3).prepare()
    >>> store = shard_index(index, tempfile.mkdtemp(), num_shards=4)
    >>> sharded = ShardedIndex(store, max_workers=1)
    >>> np.array_equal(sharded.query_columns([0, 5]), index.query_columns([0, 5]))
    True
    """

    def __init__(
        self,
        store: Union[ShardStore, str, "os.PathLike[str]"],
        *,
        query_mode: Optional[str] = None,
        max_workers: Optional[int] = None,
        mmap: bool = True,
        validate_reads: bool = False,
        read_retries: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if query_mode is not None and query_mode not in QUERY_MODES:
            raise InvalidParameterError(
                f"query_mode must be one of {QUERY_MODES} (or None), "
                f"got {query_mode!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1 (or None for auto), got {max_workers}"
            )
        if read_retries < 0:
            raise InvalidParameterError(
                f"read_retries must be >= 0, got {read_retries}"
            )
        if not isinstance(store, ShardStore):
            store = ShardStore(store)
        self._store = store
        self._router = ShardRouter(store.boundaries)
        manifest = store.manifest
        self.config = CSRPlusConfig(
            damping=manifest.damping,
            rank=manifest.rank,
            epsilon=manifest.epsilon,
            dtype=manifest.dtype,
            query_mode=query_mode or "exact",
        )
        self.max_workers = int(
            max_workers
            if max_workers is not None
            else min(store.num_shards, os.cpu_count() or 1)
        )
        self._mmap = bool(mmap)
        self._validate_reads = bool(validate_reads)
        self._read_retries = int(read_retries)
        self._shards: Dict[int, Shard] = {}
        self._cache_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False

        self._tracer = tracer if tracer is not None else obs.get_tracer()
        reg = metrics if metrics is not None else obs.get_registry()
        self._m_queries = reg.counter(
            "csrplus_shard_queries_total",
            "query_columns calls answered by sharded indexes",
        )
        self._m_columns = reg.counter(
            "csrplus_shard_columns_total",
            "Similarity columns served from sharded stores",
        )
        self._m_tasks = reg.counter(
            "csrplus_shard_tasks_total",
            "Per-shard row-block compute tasks executed",
        )
        self._m_loads = reg.counter(
            "csrplus_shard_loads_total", "Shard loads from disk"
        )
        self._m_read_retries = reg.counter(
            "csrplus_shard_read_retries_total",
            "Shard loads retried after a read failure",
        )
        self._m_read_failures = reg.counter(
            "csrplus_shard_read_failures_total",
            "Shard loads that stayed failed after the retry budget",
        )
        self._m_shard_count = reg.gauge(
            "csrplus_shard_count", "Shards in the store being served"
        )
        self._m_shard_count.set(store.num_shards)
        self._m_resident = reg.gauge(
            "csrplus_shard_resident", "Shards currently opened/cached"
        )

    # ------------------------------------------------------------------
    # backend surface (what CoSimRankService relies on)
    # ------------------------------------------------------------------
    def prepare(self) -> "ShardedIndex":
        """No-op (the offline phase already ran at build time)."""
        return self

    @property
    def num_nodes(self) -> int:
        return self._store.num_nodes

    @property
    def num_shards(self) -> int:
        return self._store.num_shards

    @property
    def dtype(self) -> np.dtype:
        return self._store.dtype

    @property
    def damping(self) -> float:
        return self.config.damping

    @property
    def rank(self) -> int:
        return self.config.rank

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def store(self) -> ShardStore:
        return self._store

    def resident_shards(self) -> int:
        """How many shards are currently loaded/cached."""
        with self._cache_lock:
            return len(self._shards)

    # ------------------------------------------------------------------
    # shard access with retry
    # ------------------------------------------------------------------
    def _get_shard(self, index: int) -> Shard:
        with self._cache_lock:
            shard = self._shards.get(index)
        if shard is not None:
            return shard
        shard = self._load_with_retry(index)
        with self._cache_lock:
            self._shards.setdefault(index, shard)
            self._m_resident.set(len(self._shards))
        return shard

    def _load_with_retry(self, index: int) -> Shard:
        last: Optional[BaseException] = None
        for attempt in range(self._read_retries + 1):
            try:
                with self._tracer.span(
                    "shard.load", shard=index, attempt=attempt
                ):
                    shard = self._store.load_shard(
                        index, mmap=self._mmap, validate=self._validate_reads
                    )
                self._m_loads.inc()
                return shard
            except (OSError, ShardCorrupted) as exc:
                last = exc
                if attempt < self._read_retries:
                    self._m_read_retries.inc()
        self._m_read_failures.inc()
        if isinstance(last, ShardCorrupted):
            raise last
        raise ShardCorrupted(
            self._store.path,
            index,
            f"unreadable after {self._read_retries + 1} attempt(s): {last}",
        ) from last

    def drop_shard_cache(self) -> None:
        """Forget loaded shards (the next query re-reads from disk)."""
        with self._cache_lock:
            self._shards.clear()
            self._m_resident.set(0)

    # ------------------------------------------------------------------
    # blockwise top-k surface (consumed by repro.core.topk)
    # ------------------------------------------------------------------
    def topk_block_plan(self):
        """Shards as candidate blocks: ``(shard_id, start, stop, bound)``.

        A shard is the natural row-block of the blockwise top-k kernel
        (:func:`~repro.core.topk.top_k_blockwise`): ``bound`` is the
        manifest's precomputed ``z_norm_max``, so the kernel can order
        blocks and skip cold shards *without reading them*.  ``None``
        stands in for manifests written before the field existed (bound
        unknown: the kernel must load and scan those shards).
        """
        plan = []
        for meta in self._store.manifest.shards:
            bound = meta.z_norm_max if meta.z_norm_max >= 0.0 else None
            plan.append((meta.index, meta.start, meta.stop, bound))
        return plan

    def load_topk_block(self, shard_id: int) -> np.ndarray:
        """The ``Z`` rows of one block, via the retrying shard loader.

        Shares :meth:`_get_shard`'s cache, retry budget, and typed
        :class:`~repro.errors.ShardCorrupted` error path, so a poisoned
        shard surfaces to the top-k caller exactly as it does to
        :meth:`query_columns` — never as silently wrong rankings.
        """
        return self._get_shard(int(shard_id)).z

    def gather_u_rows(self, seeds) -> np.ndarray:
        """``U[seeds, :]`` gathered from owner shards only (seed order)."""
        return self._gather_rows(seeds, "u")

    def gather_z_rows(self, seeds) -> np.ndarray:
        """``Z[seeds, :]`` gathered from owner shards only (seed order)."""
        return self._gather_rows(seeds, "z")

    def _gather_rows(self, seeds, which: str) -> np.ndarray:
        routed = self._router.plan(seeds)
        rows = np.empty((int(routed.seed_ids.size), self.rank), dtype=self.dtype)
        for s in routed.gather_shards:
            shard = self._get_shard(s)
            mask = routed.owners == s
            block = shard.u if which == "u" else shard.z
            rows[mask] = block[routed.local_rows[mask], :]
        return rows

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_columns(self, seeds, mode: Optional[str] = None) -> np.ndarray:
        """Similarity columns ``[S]_{*, seeds[j]}``, assembled shard-wise.

        Same contract as :meth:`~repro.core.index.CSRPlusIndex.
        query_columns`: ``"exact"`` mode reproduces the monolithic
        bytes (``np.array_equal``), ``"batched"`` mode is within
        :func:`~repro.core.index.batched_query_atol` of exact.
        """
        if mode is None:
            mode = self.config.query_mode
        if mode not in QUERY_MODES:
            raise InvalidParameterError(
                f"query mode must be one of {QUERY_MODES}, got {mode!r}"
            )
        routed = self._router.plan(seeds)
        seed_ids = routed.seed_ids
        n, k = self.num_nodes, int(seed_ids.size)
        out = np.empty((n, k), dtype=self.dtype, order="F")
        self._m_queries.inc()
        if k == 0:
            return out
        with self._tracer.span(
            "shard.query",
            seeds=k,
            shards=self.num_shards,
            query_mode=mode,
        ) as query_span:
            # gather: the batch's query vectors, from owner shards only
            u_rows = np.empty((k, self.rank), dtype=self.dtype)
            for s in routed.gather_shards:
                shard = self._get_shard(s)
                mask = routed.owners == s
                u_rows[mask] = shard.u[routed.local_rows[mask], :]

            damping = self.damping

            def run_block(shard_id: int) -> None:
                shard = self._get_shard(shard_id)
                # Explicit parent: worker threads have no open span, so
                # the block spans nest under this query instead of
                # becoming disconnected roots (service.py pattern).
                with self._tracer.span(
                    "shard.query.block",
                    parent=query_span,
                    shard=shard_id,
                    rows=shard.num_rows,
                ):
                    block = out[shard.start : shard.stop, :]
                    if mode == "batched":
                        partial = shard.z @ u_rows.T
                        partial *= damping
                        block[:] = partial
                    else:
                        for j in range(k):
                            block[:, j] = damping * exact_column_product(
                                shard.z, u_rows[j]
                            )
                self._m_tasks.inc()

            # fan out: disjoint output row ranges, safe to fill in
            # parallel from many threads
            if self.max_workers == 1 or self.num_shards == 1:
                for shard_id in range(self.num_shards):
                    run_block(shard_id)
            else:
                futures = [
                    self._get_executor().submit(run_block, shard_id)
                    for shard_id in range(self.num_shards)
                ]
                for future in futures:
                    future.result()

            # identity term, after assembly — elementwise identical to
            # the monolithic path's per-column `column[seed] += 1.0`
            out[seed_ids, np.arange(k)] += 1.0
        self._m_columns.inc(k)
        return out

    def query(self, queries) -> np.ndarray:
        """``n x |Q|`` similarity block; mirrors ``CSRPlusIndex.query``."""
        from repro.core.base import normalize_queries

        query_ids = normalize_queries(queries, self.num_nodes)
        unique_ids, inverse = np.unique(query_ids, return_inverse=True)
        result = self.query_columns(unique_ids)
        if unique_ids.size != query_ids.size or not np.array_equal(
            unique_ids, query_ids
        ):
            result = result[:, inverse]
        return result

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _get_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise InvalidParameterError("sharded index is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="cosimrank-shard",
                )
            return self._executor

    def close(self) -> None:
        """Shut down the fan-out pool and drop cached shards (idempotent)."""
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self.drop_shard_cache()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedIndex(path={self._store.path!r}, n={self.num_nodes}, "
            f"shards={self.num_shards}, rank={self.rank}, "
            f"max_workers={self.max_workers})"
        )
