"""Sparse-matrix helpers shared by the iterative engines.

The all-pairs baselines (CSR-IT, CoSimMate) keep the similarity matrix
sparse and its fill-in grows with every iteration.  To reproduce the
paper's "memory crash" behaviour *safely*, an engine must know whether
the next sparse product could exceed its budget **before** scipy
allocates it; :func:`spmm_nnz_upper_bound` supplies the standard cheap
upper bound used for that pre-flight check.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["spmm_nnz_upper_bound", "sparse_bytes_for_nnz", "densify_small"]


def spmm_nnz_upper_bound(a: sparse.spmatrix, b: sparse.spmatrix) -> int:
    """Upper bound on ``nnz(A @ B)`` without computing the product.

    For CSR operands, ``nnz(A @ B) <= sum_j colnnz_A[j] * rownnz_B[j]``:
    each nonzero ``A[i, j]`` can contribute at most ``rownnz_B[j]``
    output entries.  ``O(nnz)`` time.
    """
    a = a.tocsc() if not sparse.issparse(a) else a
    col_counts = np.diff(a.tocsc().indptr).astype(np.int64)
    row_counts = np.diff(b.tocsr().indptr).astype(np.int64)
    return int(np.dot(col_counts, row_counts))


def sparse_bytes_for_nnz(nnz: int, index_bytes: int = 4, value_bytes: int = 8) -> int:
    """Approximate CSR storage for ``nnz`` entries (data + indices)."""
    return int(nnz) * (index_bytes + value_bytes)


def densify_small(matrix: sparse.spmatrix, max_elements: int = 10_000_000):
    """Convert to dense when small enough, else return the input.

    Several metrics helpers accept either representation; this keeps
    tiny matrices in the cheaper dense form.
    """
    rows, cols = matrix.shape
    if rows * cols <= max_elements:
        return matrix.toarray()
    return matrix
