"""vec / Kronecker-product toolkit.

These operators are Definitions 2.1–2.2 of the paper.  They exist in
this package for two reasons:

1. the CSR-NI baseline (Li et al. 2010) literally materialises the
   Kronecker products of Eqs. (6a)/(6b), and
2. the unit tests verify Theorems 3.1–3.5 by comparing CSR+'s
   tensor-free expressions against these literal ones.

Note on ``vec`` orientation: this module uses the standard
*column-stacking* convention, ``vec(X)[i + j*p] = X[i, j]``, for which
the identity ``vec(A X B) = (B^T kron A) vec(X)`` holds.  All of the
paper's derivations (Thms 3.1–3.5) are convention-independent as long as
one convention is used consistently, which the tests confirm.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import sparse

from repro.errors import InvalidParameterError

__all__ = ["vec", "unvec", "kron", "vec_identity", "mixed_product"]

Matrix = Union[np.ndarray, sparse.spmatrix]


def vec(matrix: Matrix) -> np.ndarray:
    """Column-stacking vectorisation (Definition 2.1).

    Returns a 1-D array of length ``p*q`` for a ``p x q`` input, with
    column ``j`` of the matrix occupying positions ``j*p .. (j+1)*p - 1``.
    """
    if sparse.issparse(matrix):
        matrix = matrix.toarray()
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise InvalidParameterError(f"vec expects a 2-D matrix, got ndim={arr.ndim}")
    return arr.reshape(-1, order="F").copy()


def unvec(vector: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`vec`: reshape a length ``rows*cols`` vector."""
    vector = np.asarray(vector).ravel()
    if vector.size != rows * cols:
        raise InvalidParameterError(
            f"cannot unvec length-{vector.size} vector into {rows}x{cols}"
        )
    return vector.reshape(rows, cols, order="F").copy()


def kron(a: Matrix, b: Matrix) -> np.ndarray:
    """Dense Kronecker (tensor) product (Definition 2.2).

    Deliberately dense: the CSR-NI baseline's whole point is that these
    products are huge, and our memory accounting charges for them.
    """
    a_arr = a.toarray() if sparse.issparse(a) else np.asarray(a)
    b_arr = b.toarray() if sparse.issparse(b) else np.asarray(b)
    if a_arr.ndim != 2 or b_arr.ndim != 2:
        raise InvalidParameterError("kron expects two 2-D matrices")
    return np.kron(a_arr, b_arr)


def vec_identity(n: int) -> np.ndarray:
    """``vec(I_n)``: length ``n*n`` vector with 1s at positions ``i*(n+1)``."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    out = np.zeros(n * n, dtype=np.float64)
    if n:
        out[:: n + 1] = 1.0
    return out


def mixed_product(a: Matrix, b: Matrix, c: Matrix, d: Matrix) -> np.ndarray:
    """``(A kron B)(C kron D)`` computed as ``(AC) kron (BD)``.

    The mixed-product property used throughout §3.2 (proof of Thm 3.1).
    Shapes must be conformable: ``A @ C`` and ``B @ D`` must exist.
    """
    ac = (a @ c) if not sparse.issparse(a) or not sparse.issparse(c) else (a @ c)
    bd = b @ d
    ac_arr = ac.toarray() if sparse.issparse(ac) else np.asarray(ac)
    bd_arr = bd.toarray() if sparse.issparse(bd) else np.asarray(bd)
    return np.kron(ac_arr, bd_arr)
