"""Linear-algebra substrate: truncated SVD, Kronecker toolkit, Stein solvers."""

from repro.linalg.kronecker import kron, mixed_product, unvec, vec, vec_identity
from repro.linalg.stein import (
    fixed_point_iteration_count,
    solve_stein_direct,
    solve_stein_fixed_point,
    solve_stein_squaring,
    squaring_iteration_count,
)
from repro.linalg.svd import TruncatedSVD, truncated_svd

__all__ = [
    "TruncatedSVD",
    "truncated_svd",
    "vec",
    "unvec",
    "kron",
    "vec_identity",
    "mixed_product",
    "solve_stein_fixed_point",
    "solve_stein_squaring",
    "solve_stein_direct",
    "squaring_iteration_count",
    "fixed_point_iteration_count",
]
