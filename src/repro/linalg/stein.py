"""Solvers for the discrete Stein equation ``P = c H P H^T + I``.

Theorem 3.4 reduces the heart of CSR+ to this ``r x r`` fixed-point
problem.  Three interchangeable solvers are provided:

* :func:`solve_stein_fixed_point` — the plain iteration
  ``P_{k+1} = c H P_k H^T + I``; needs ``O(log_c eps)`` iterations.
* :func:`solve_stein_squaring` — the repeated-squaring scheme of
  Algorithm 1 lines 4–5 (from the authors' prior partial-pairs work),
  which needs only ``O(log2 log_c eps)`` iterations.
* :func:`solve_stein_direct` — the closed-form
  ``vec(P) = (I - c H kron H)^{-1} vec(I)``; exact, ``O(r^6)``, used as
  ground truth in tests and in the squaring-vs-fixed-point ablation.

All three converge when ``sqrt(c) * ||H||_2 < 1``, which holds for
CoSimRank because ``H = V^T U Sigma`` has spectral norm at most
``sigma_1(Q) <= 1`` for a column-substochastic ``Q`` and ``c < 1``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

import repro.obs as obs
from repro.errors import ConvergenceError, InvalidParameterError

__all__ = [
    "squaring_iteration_count",
    "fixed_point_iteration_count",
    "solve_stein_fixed_point",
    "solve_stein_squaring",
    "solve_stein_direct",
]


def _check_inputs(h: np.ndarray, c: float) -> np.ndarray:
    h = np.asarray(h, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise InvalidParameterError(f"H must be square, got shape {h.shape}")
    if not (0.0 < c < 1.0):
        raise InvalidParameterError(f"damping factor c must be in (0, 1), got {c}")
    return h


def squaring_iteration_count(c: float, epsilon: float) -> int:
    """Iteration bound for repeated squaring: ``max(0, floor(log2 log_c eps) + 1)``.

    After ``k`` squaring steps the partial sum covers ``2^k`` power terms,
    so the truncation error is below ``c^(2^k) / (1 - c)``; the paper's
    bound picks the smallest ``k`` with ``c^(2^k) < eps``.
    """
    if not (0.0 < c < 1.0):
        raise InvalidParameterError(f"damping factor c must be in (0, 1), got {c}")
    if not (0.0 < epsilon < 1.0):
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    log_c_eps = math.log(epsilon) / math.log(c)  # > 0
    if log_c_eps <= 1.0:
        return 0
    return max(0, int(math.floor(math.log2(log_c_eps))) + 1)


def fixed_point_iteration_count(c: float, epsilon: float) -> int:
    """Iteration bound for the plain iteration: smallest K with ``c^K < eps``."""
    if not (0.0 < c < 1.0):
        raise InvalidParameterError(f"damping factor c must be in (0, 1), got {c}")
    if not (0.0 < epsilon < 1.0):
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(1, int(math.ceil(math.log(epsilon) / math.log(c))))


def solve_stein_fixed_point(
    h: np.ndarray,
    c: float,
    epsilon: float = 1e-5,
    max_iterations: int = 10_000,
) -> Tuple[np.ndarray, int]:
    """Plain fixed-point solve of ``P = c H P H^T + I``.

    Returns ``(P, iterations_used)``.  Raises :class:`ConvergenceError`
    if the max-norm update does not fall below ``epsilon`` within
    ``max_iterations`` (which signals ``sqrt(c) ||H|| >= 1``, i.e. a
    malformed input).
    """
    h = _check_inputs(h, c)
    r = h.shape[0]
    identity = np.eye(r)
    p = identity.copy()
    for iteration in range(1, max_iterations + 1):
        with obs.span("stein.iteration", solver="fixed_point", k=iteration) as sp:
            nxt = c * (h @ p @ h.T) + identity
            delta = np.max(np.abs(nxt - p)) if r else 0.0
            sp.set_attribute("delta", float(delta))
        p = nxt
        if delta < epsilon:
            return p, iteration
    raise ConvergenceError(
        f"Stein fixed point did not reach epsilon={epsilon} in "
        f"{max_iterations} iterations (is sqrt(c)*||H|| < 1?)"
    )


def solve_stein_squaring(
    h: np.ndarray,
    c: float,
    epsilon: float = 1e-5,
) -> Tuple[np.ndarray, int]:
    """Repeated-squaring solve (Algorithm 1, lines 3–5).

    Maintains the invariant
    ``P_k = sum_{j=0}^{2^k - 1} c^j H^j (H^T)^j`` via

        P_{k+1} = P_k + c^(2^k) H_k P_k H_k^T,   H_{k+1} = H_k^2,

    terminating after ``max(0, floor(log2 log_c eps) + 1)`` steps so
    that ``||P_k - P||_max < eps``.  Returns ``(P, squaring_steps)``.
    """
    h = _check_inputs(h, c)
    r = h.shape[0]
    steps = squaring_iteration_count(c, epsilon)
    p = np.eye(r)
    h_k = h.copy()
    c_pow = c  # c^(2^k) for the current k
    for k in range(steps + 1):
        # The loop in Algorithm 1 runs while k <= bound, i.e. bound+1 times.
        with obs.span("stein.iteration", solver="squaring", k=k):
            p = p + c_pow * (h_k @ p @ h_k.T)
            if k < steps:
                # the final H_k / c_pow are never read again; skip the
                # trailing O(r^3) squaring GEMM
                h_k = h_k @ h_k
                c_pow = c_pow * c_pow
    return p, steps + 1


def solve_stein_direct(h: np.ndarray, c: float) -> np.ndarray:
    """Exact solve via ``vec(P) = (I_{r^2} - c (H kron H))^{-1} vec(I_r)``.

    ``O(r^6)`` time and ``O(r^4)`` memory — fine for the small ranks the
    paper uses, and the reference the iterative solvers are tested
    against.
    """
    h = _check_inputs(h, c)
    r = h.shape[0]
    if r == 0:
        return np.zeros((0, 0))
    if r > 64:
        # The r^2 x r^2 dense system needs 8 r^4 bytes (r = 200 would be
        # ~13 GB); beyond r = 64 use the iterative solvers instead.
        raise InvalidParameterError(
            f"direct Stein solve materialises an r^2 x r^2 system; "
            f"refusing r={r} > 64 (use the squaring/fixed-point solver)"
        )
    system = np.eye(r * r) - c * np.kron(h, h)
    rhs = np.eye(r).reshape(-1, order="F")
    try:
        solution = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise ConvergenceError(f"direct Stein solve failed: {exc}") from exc
    return solution.reshape(r, r, order="F")
