"""Deterministic truncated SVD.

CSR+ (Algorithm 1, line 2) decomposes the sparse transition matrix as
``Q ~= U diag(sigma) V^T`` with a low target rank ``r``.  The paper uses
MATLAB's sparse SVD; here :func:`truncated_svd` wraps ARPACK
(``scipy.sparse.linalg.svds``) with

* a deterministic start vector, so repeated runs agree bit-for-bit;
* a dense-LAPACK fallback for the small matrices where ARPACK cannot be
  used (``r >= min(shape) - 1``);
* sign canonicalisation (largest-|entry| component of each left singular
  vector made positive), removing the per-column sign ambiguity so that
  CSR+ and the CSR-NI baseline see identical factors.

Singular values are returned in non-increasing order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from repro.errors import DecompositionError, InvalidParameterError

__all__ = ["TruncatedSVD", "truncated_svd", "uses_dense_fallback"]

Matrix = Union[np.ndarray, sparse.spmatrix]


@dataclass(frozen=True)
class TruncatedSVD:
    """Rank-``r`` factors ``U (n x r)``, ``sigma (r,)``, ``V (n x r)``."""

    u: np.ndarray
    sigma: np.ndarray
    v: np.ndarray

    @property
    def rank(self) -> int:
        return int(self.sigma.size)

    def reconstruct(self) -> np.ndarray:
        """Dense rank-``r`` approximation ``U diag(sigma) V^T``."""
        return (self.u * self.sigma) @ self.v.T

    def nbytes(self) -> int:
        """Bytes held by the three factors."""
        return int(self.u.nbytes + self.sigma.nbytes + self.v.nbytes)


def _canonicalize_signs(u: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Flip column pairs so each U column's largest-|entry| is positive."""
    if u.size == 0:
        return u, v
    pivot = np.abs(u).argmax(axis=0)
    signs = np.sign(u[pivot, np.arange(u.shape[1])])
    signs[signs == 0] = 1.0
    return u * signs, v * signs


def uses_dense_fallback(shape: Tuple[int, int], rank: int) -> bool:
    """Whether :func:`truncated_svd` would take the dense-LAPACK path.

    Exposed so callers that must *mirror* this function's branch — the
    out-of-core shard builder re-derives the same factors with
    ``return_singular_vectors="vh"`` to avoid materialising ``U`` — can
    stay in lockstep with it instead of duplicating the condition.
    """
    min_dim = min(shape)
    return (rank >= min_dim - 1) or (min_dim <= 64)


def truncated_svd(matrix: Matrix, rank: int, seed: int = 0) -> TruncatedSVD:
    """Rank-``rank`` truncated SVD of a (sparse or dense) square matrix.

    Parameters
    ----------
    matrix:
        The matrix to decompose (any scipy-sparse format or ndarray).
    rank:
        Target rank ``r``; must satisfy ``1 <= r <= min(matrix.shape)``.
        When ARPACK's constraint ``r < min(shape)`` is not met, or the
        matrix is small, a dense LAPACK SVD is used and truncated.
    seed:
        Seed for the deterministic ARPACK start vector.

    Raises
    ------
    InvalidParameterError
        If ``rank`` is out of range.
    DecompositionError
        If the underlying solver fails to converge.
    """
    if sparse.issparse(matrix):
        shape = matrix.shape
    else:
        matrix = np.asarray(matrix, dtype=np.float64)
        shape = matrix.shape
    if len(shape) != 2:
        raise InvalidParameterError(f"matrix must be 2-D, got shape {shape}")
    min_dim = min(shape)
    if not (1 <= rank <= min_dim):
        raise InvalidParameterError(
            f"rank must be in [1, {min_dim}] for shape {shape}, got {rank}"
        )

    use_dense = uses_dense_fallback(shape, rank)
    if use_dense:
        dense = matrix.toarray() if sparse.issparse(matrix) else matrix
        try:
            u_full, s_full, vt_full = np.linalg.svd(dense, full_matrices=False)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - LAPACK rarely fails
            raise DecompositionError(f"dense SVD failed: {exc}") from exc
        u = np.ascontiguousarray(u_full[:, :rank])
        s = np.ascontiguousarray(s_full[:rank])
        v = np.ascontiguousarray(vt_full[:rank].T)
    else:
        rng = np.random.default_rng(seed)
        v0 = rng.standard_normal(shape[0])
        try:
            u, s, vt = svds(matrix.astype(np.float64), k=rank, v0=v0)
        except Exception as exc:
            raise DecompositionError(f"sparse SVD (ARPACK) failed: {exc}") from exc
        # svds returns ascending singular values; flip to non-increasing.
        order = np.argsort(s)[::-1]
        u = np.ascontiguousarray(u[:, order])
        s = np.ascontiguousarray(s[order])
        v = np.ascontiguousarray(vt[order].T)

    u, v = _canonicalize_signs(u, v)
    return TruncatedSVD(u=u, sigma=s, v=v)
