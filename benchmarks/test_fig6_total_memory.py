"""Figure 6 — peak memory of multi-source CoSimRank per dataset.

Paper's shape: CSR+'s memory is 1-4 orders of magnitude below every
rival (10,312x less than CSR-NI on P2P at paper scale); rivals blow the
budget on medium/large graphs while CSR+ grows linearly.
"""

from repro.experiments.figures import fig6


def test_fig6_total_memory(benchmark, tier, record):
    result = benchmark.pedantic(
        lambda: fig6(tier=tier), rounds=1, iterations=1
    )
    record(result)

    # CSR+ completes everywhere with bounded memory.
    mine = result.column("CSR+_bytes")
    assert all(v is not None for v in mine)

    for row in result.rows:
        # wherever a rival completed, CSR+ used no more memory
        for rival in ("CSR-RLS", "CSR-IT", "CSR-NI"):
            other = row.get(f"{rival}_bytes")
            if other is not None:
                assert row["CSR+_bytes"] <= other * 1.1, (row["dataset"], rival)

    # CSR-NI's completed runs are >= 2 orders of magnitude above CSR+.
    for row in result.rows:
        ni = row.get("CSR-NI_bytes")
        if ni is not None:
            assert ni > 50 * row["CSR+_bytes"], row["dataset"]

    # CSR+ memory grows sub-quadratically across the dataset sweep:
    # WB has ~200x FB's nodes but CSR+ memory grows far less than 200^2.
    assert mine[-1] < mine[0] * 1000
