"""Ablation — sparse ARPACK SVD vs dense LAPACK SVD.

The offline phase is dominated by the truncated SVD; on sparse graphs
ARPACK's O(mr)-per-iteration Lanczos beats the dense O(n^3) LAPACK
factorisation by a growing margin.  This bench quantifies the gap at a
size where both are feasible.
"""

import time

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.graphs.generators import chung_lu
from repro.graphs.transition import transition_matrix
from repro.linalg.svd import truncated_svd


def test_ablation_svd_backend(benchmark, record):
    graph = chung_lu(3000, 16000, seed=9)
    q_sparse = transition_matrix(graph)
    q_dense = q_sparse.toarray()
    rank = 8

    def run_sparse():
        return truncated_svd(q_sparse, rank)

    sparse_svd = benchmark.pedantic(run_sparse, rounds=3, iterations=1)

    start = time.perf_counter()
    dense_svd = truncated_svd(q_dense, rank)
    dense_seconds = time.perf_counter() - start

    # Identical subspace either way.
    np.testing.assert_allclose(sparse_svd.sigma, dense_svd.sigma, rtol=1e-6)

    start = time.perf_counter()
    run_sparse()
    sparse_seconds = time.perf_counter() - start

    record(
        ExperimentResult(
            exp_id="ablation-svd",
            title="Truncated SVD backend: sparse ARPACK vs dense LAPACK",
            columns=["backend", "seconds"],
            rows=[
                {"backend": "ARPACK svds (sparse Q)", "seconds": f"{sparse_seconds:.3f}"},
                {"backend": "LAPACK gesdd (dense Q)", "seconds": f"{dense_seconds:.3f}"},
            ],
            parameters={"n": 3000, "m": 16000, "r": rank},
            notes=["Sparse Lanczos wins on sparse graphs; gap widens with n."],
        )
    )
    assert sparse_seconds < dense_seconds
