"""Table 1 — complexity comparison, validated by empirical scaling fits.

The published complexities (time, multi-source search):

    CSR+     O(r(m + n(r + |Q|)))      -> ~linear in n, mild in r
    CSR-NI   O(r^4 n^2 + r^4 n |Q|)    -> ~quadratic in n, quartic in r
    CSR-IT   O(n^2 log(1/eps)|Q|)      -> superlinear in n
    CSR-RLS  O(K m |Q|)                -> ~linear in n (m = Theta(n))

The bench fits log-log slopes of measured total time over an n-grid and
an r-grid and checks the *orderings* those exponents imply.
"""

from repro.experiments.tables import tab1


def test_tab1_scaling(benchmark, record):
    result = benchmark.pedantic(
        lambda: tab1(n_grid=(400, 800, 1600), r_grid=(4, 8, 16), repeats=3),
        rounds=1,
        iterations=1,
    )
    record(result)
    by_name = {row["algorithm"]: row for row in result.rows}

    # CSR-NI's r-exponent must sit far above everyone else's (r^4 term).
    ni_r = by_name["CSR-NI"]["r_exponent_value"]
    assert ni_r > 2.0
    for other in ("CSR+", "CSR-IT", "CSR-RLS"):
        assert ni_r > by_name[other]["r_exponent_value"] + 0.8

    # CSR-NI's n-exponent is clearly superlinear; CSR+'s stays small.
    assert by_name["CSR-NI"]["n_exponent_value"] > 1.3
    assert by_name["CSR+"]["n_exponent_value"] < 1.6

    # CSR+ scales no worse in n than the quadratic-memory CSR-NI.
    assert (
        by_name["CSR+"]["n_exponent_value"]
        < by_name["CSR-NI"]["n_exponent_value"]
    )
