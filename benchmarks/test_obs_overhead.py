"""Observability overhead: instrumentation must be (near) free.

Not a paper artefact — this guards the cross-cutting observability
layer (docs/observability.md).  The same serving workload is run with
instrumentation enabled (spans, histograms, slow-query checks armed)
and disabled (:func:`repro.obs.disable` — no-op spans, counters only),
interleaved to cancel thermal/allocator drift, and the best-of-trials
throughput with metrics enabled must stay within 10% of the disabled
path.  The cache is off so every pass performs identical compute work.
"""

import time

import numpy as np
import pytest

import repro.obs as obs
from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu
from repro.serving import CoSimRankService

N_NODES = 12_000
N_EDGES = 60_000
RANK = 48
NUM_REQUESTS = 16
SEEDS_PER_REQUEST = 16
TRIALS = 7
MAX_OVERHEAD = 0.10


@pytest.fixture(scope="module")
def index() -> CSRPlusIndex:
    graph = chung_lu(N_NODES, N_EDGES, seed=11)
    return CSRPlusIndex(graph, rank=RANK).prepare()


@pytest.fixture(scope="module")
def requests():
    rng = np.random.default_rng(13)
    return [
        rng.integers(0, N_NODES, size=SEEDS_PER_REQUEST).tolist()
        for _ in range(NUM_REQUESTS)
    ]


def _run_pass(service, requests) -> float:
    started = time.perf_counter()
    service.serve_batch(requests)
    return time.perf_counter() - started


def test_enabled_within_10pct_of_disabled(index, requests):
    previous = obs.enabled()
    enabled_seconds, disabled_seconds = [], []
    try:
        with CoSimRankService(
            index,
            cache_columns=0,  # every pass does the full compute work
            max_workers=1,
            slow_query_seconds=3600.0,  # armed but never firing
        ) as service:
            # warm-up (BLAS thread pools, allocator)
            obs.enable()
            _run_pass(service, requests)
            obs.disable()
            _run_pass(service, requests)
            # interleaved A/B trials; best-of cancels one-off jitter
            for _ in range(TRIALS):
                obs.enable()
                enabled_seconds.append(_run_pass(service, requests))
                obs.disable()
                disabled_seconds.append(_run_pass(service, requests))
    finally:
        obs.set_enabled(previous)

    best_enabled = min(enabled_seconds)
    best_disabled = min(disabled_seconds)
    overhead = best_enabled / best_disabled - 1.0
    columns = NUM_REQUESTS * SEEDS_PER_REQUEST
    print(
        f"\nobs overhead (n={N_NODES}, r={RANK}, {columns} columns/pass): "
        f"enabled {columns / best_enabled:,.0f} cols/s, "
        f"disabled {columns / best_disabled:,.0f} cols/s, "
        f"overhead {overhead:+.2%}"
    )
    assert best_enabled <= best_disabled * (1.0 + MAX_OVERHEAD), (
        f"instrumentation overhead {overhead:+.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} (enabled {best_enabled:.4f}s vs disabled "
        f"{best_disabled:.4f}s)"
    )
