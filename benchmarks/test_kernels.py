"""Micro-benchmarks of CSR+'s individual kernels.

Proper pytest-benchmark timings (multiple rounds) for the pieces
Theorem 3.7's complexity table accounts line by line: the sparse SVD,
the subspace Stein solve, the Z build, and the online query.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.graphs.generators import chung_lu
from repro.graphs.transition import transition_matrix
from repro.linalg.stein import solve_stein_squaring
from repro.linalg.svd import truncated_svd


@pytest.fixture(scope="module")
def kernel_graph():
    return chung_lu(20_000, 106_000, seed=11)


@pytest.fixture(scope="module")
def kernel_q(kernel_graph):
    return transition_matrix(kernel_graph)


@pytest.fixture(scope="module")
def kernel_svd(kernel_q):
    return truncated_svd(kernel_q, 5)


def test_kernel_transition_build(benchmark, kernel_graph):
    benchmark(transition_matrix, kernel_graph)


def test_kernel_truncated_svd(benchmark, kernel_q):
    benchmark.pedantic(truncated_svd, args=(kernel_q, 5), rounds=3, iterations=1)


def test_kernel_stein_solve(benchmark, kernel_svd):
    h = (kernel_svd.u.T @ kernel_svd.v) * kernel_svd.sigma[np.newaxis, :]
    benchmark(solve_stein_squaring, h, 0.6, 1e-5)


def test_kernel_z_build(benchmark, kernel_svd):
    h = (kernel_svd.u.T @ kernel_svd.v) * kernel_svd.sigma[np.newaxis, :]
    p, _ = solve_stein_squaring(h, 0.6, 1e-5)

    def build_z():
        sps = (kernel_svd.sigma[:, np.newaxis] * p) * kernel_svd.sigma[np.newaxis, :]
        return kernel_svd.v @ sps

    benchmark(build_z)


def test_kernel_online_query(benchmark, kernel_graph):
    index = CSRPlusIndex(kernel_graph, rank=5).prepare()
    queries = sample_queries(kernel_graph, 100, seed=7)
    benchmark(index.query, queries)


def test_kernel_top_k(benchmark, kernel_graph):
    index = CSRPlusIndex(kernel_graph, rank=5).prepare()
    benchmark(index.top_k, 17, 10)


def test_kernel_batched_query(benchmark, kernel_graph):
    index = CSRPlusIndex(kernel_graph, rank=64).prepare()
    seeds = np.asarray(sample_queries(kernel_graph, 256, seed=13))
    benchmark(index.query_columns, seeds, mode="batched")


def test_batched_mode_beats_per_seed_gemv(kernel_graph):
    """The fast path's raison d'être: one ``Z @ (U[Q,:])^T`` GEMM must
    deliver >= 2x the column throughput of the per-seed GEMV loop once
    the batch is wide enough to amortise the kernel's blocking
    (|Q| >= 64; see ``GEMM_MIN_CHUNK``) — while staying within the
    documented tolerance of the exact path."""
    import time

    from repro.core.index import batched_query_atol

    rank, num_seeds = 64, 256
    index = CSRPlusIndex(kernel_graph, rank=rank).prepare()
    seeds = np.asarray(sample_queries(kernel_graph, num_seeds, seed=13))
    assert seeds.size >= 64

    def best_of(fn, repeats=5):
        elapsed = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            elapsed.append(time.perf_counter() - start)
        return min(elapsed)

    exact = index.query_columns(seeds, mode="exact")
    batched = index.query_columns(seeds, mode="batched")
    np.testing.assert_allclose(
        batched, exact, rtol=0.0, atol=batched_query_atol(rank, exact.dtype)
    )

    t_exact = best_of(lambda: index.query_columns(seeds, mode="exact"))
    t_batched = best_of(lambda: index.query_columns(seeds, mode="batched"))
    speedup = t_exact / t_batched
    assert speedup >= 2.0, (
        f"batched GEMM {speedup:.2f}x vs per-seed GEMV at "
        f"|Q|={num_seeds}, rank={rank} (expected >= 2x)"
    )
