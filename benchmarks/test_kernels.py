"""Micro-benchmarks of CSR+'s individual kernels.

Proper pytest-benchmark timings (multiple rounds) for the pieces
Theorem 3.7's complexity table accounts line by line: the sparse SVD,
the subspace Stein solve, the Z build, and the online query.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.graphs.generators import chung_lu
from repro.graphs.transition import transition_matrix
from repro.linalg.stein import solve_stein_squaring
from repro.linalg.svd import truncated_svd


@pytest.fixture(scope="module")
def kernel_graph():
    return chung_lu(20_000, 106_000, seed=11)


@pytest.fixture(scope="module")
def kernel_q(kernel_graph):
    return transition_matrix(kernel_graph)


@pytest.fixture(scope="module")
def kernel_svd(kernel_q):
    return truncated_svd(kernel_q, 5)


def test_kernel_transition_build(benchmark, kernel_graph):
    benchmark(transition_matrix, kernel_graph)


def test_kernel_truncated_svd(benchmark, kernel_q):
    benchmark.pedantic(truncated_svd, args=(kernel_q, 5), rounds=3, iterations=1)


def test_kernel_stein_solve(benchmark, kernel_svd):
    h = (kernel_svd.u.T @ kernel_svd.v) * kernel_svd.sigma[np.newaxis, :]
    benchmark(solve_stein_squaring, h, 0.6, 1e-5)


def test_kernel_z_build(benchmark, kernel_svd):
    h = (kernel_svd.u.T @ kernel_svd.v) * kernel_svd.sigma[np.newaxis, :]
    p, _ = solve_stein_squaring(h, 0.6, 1e-5)

    def build_z():
        sps = (kernel_svd.sigma[:, np.newaxis] * p) * kernel_svd.sigma[np.newaxis, :]
        return kernel_svd.v @ sps

    benchmark(build_z)


def test_kernel_online_query(benchmark, kernel_graph):
    index = CSRPlusIndex(kernel_graph, rank=5).prepare()
    queries = sample_queries(kernel_graph, 100, seed=7)
    benchmark(index.query, queries)


def test_kernel_top_k(benchmark, kernel_graph):
    index = CSRPlusIndex(kernel_graph, rank=5).prepare()
    benchmark(index.top_k, 17, 10)
