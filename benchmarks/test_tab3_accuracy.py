"""Table 3 — AvgDiff of CSR+ (and CSR-NI) vs exact CoSimRank.

Paper's shape: AvgDiff decreases mildly as r grows from 25 to 200, and
CSR+'s error is *identical* to CSR-NI's wherever CSR-NI survives
(losslessness of Theorems 3.1-3.5).  CSR-NI survives far less often at
laptop scale than on the paper's 256 GB server — those cells read OOM,
which is itself the paper's scalability point.
"""

from repro.experiments.tables import tab3


def test_tab3_accuracy(benchmark, record):
    result = benchmark.pedantic(
        lambda: tab3(
            datasets=(("FB", "small"), ("P2P", "small")),
            ranks=(25, 50, 100, 200),
        ),
        rounds=1,
        iterations=1,
    )
    record(result)

    for key in ("FB", "P2P"):
        values = [
            row["avg_diff_value"] for row in result.rows if row["dataset"] == key
        ]
        assert len(values) == 4
        # mild decrease across the rank grid (paper Table 3's trend).
        # CSR+ plugs a truncated SVD into the series rather than
        # computing the best rank-r approximation of S itself, so the
        # per-rank error is not strictly monotone — allow mild slack.
        assert values[-1] <= values[0] * 1.3
        # absolute errors stay small
        assert values[0] < 0.05

    # losslessness wherever CSR-NI fits
    assert all(
        row["lossless"] == "yes"
        for row in result.rows
        if row["lossless"] != "n/a"
    )


def test_tab3_losslessness_at_tiny_scale(benchmark, record):
    """Dedicated equality check where CSR-NI definitely fits."""
    result = benchmark.pedantic(
        lambda: tab3(
            datasets=(("FB", "tiny"), ("P2P", "tiny")), ranks=(10, 25), q_size=50
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    checked = [row for row in result.rows if row["lossless"] != "n/a"]
    assert len(checked) >= 2
    assert all(row["lossless"] == "yes" for row in checked)
