"""Serving throughput: cold cache vs warm cache vs parallel chunks.

Not a paper artefact — this benchmarks the serving layer added on top
of the reproduction (docs/serving.md).  A repeated query batch served
from the per-seed column cache skips every ``Z @ U[s]`` product and
degenerates to column copies, so the warm pass must beat the cold pass
by a wide margin (asserted at >= 5x).  The parallel variant must be
bit-identical to the serial one (thread count is a scheduling detail,
never a numerical one).
"""

import time

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu
from repro.serving import CoSimRankService

N_NODES = 20_000
N_EDGES = 90_000
RANK = 64
NUM_REQUESTS = 24
SEEDS_PER_REQUEST = 16
TRIALS = 3


@pytest.fixture(scope="module")
def index() -> CSRPlusIndex:
    graph = chung_lu(N_NODES, N_EDGES, seed=5)
    return CSRPlusIndex(graph, rank=RANK).prepare()


@pytest.fixture(scope="module")
def requests():
    rng = np.random.default_rng(7)
    return [
        rng.integers(0, N_NODES, size=SEEDS_PER_REQUEST).tolist()
        for _ in range(NUM_REQUESTS)
    ]


def _timed_batch(service, requests):
    started = time.perf_counter()
    results = service.serve_batch(requests)
    return time.perf_counter() - started, results


def test_warm_cache_is_5x_faster_than_cold(index, requests):
    cold_seconds, warm_seconds = [], []
    cold_results = warm_results = None
    for _ in range(TRIALS):
        with CoSimRankService(
            index, cache_columns=4096, max_workers=1
        ) as service:
            cold, cold_results = _timed_batch(service, requests)
            warm, warm_results = _timed_batch(service, requests)
            # a second warm pass; keep the best of both
            warm_again, _ = _timed_batch(service, requests)
            cold_seconds.append(cold)
            warm_seconds.append(min(warm, warm_again))
            stats = service.stats()

    # per service (one per trial): cold pass misses every distinct seed
    # once, then both warm passes run without a single recomputation
    unique = len({seed for request in requests for seed in request})
    assert stats.misses == unique
    assert stats.hits == 2 * unique

    # cache exactness: warm blocks are bit-identical to cold ones
    for cold_block, warm_block in zip(cold_results, warm_results):
        assert np.array_equal(cold_block, warm_block)
    # and to the index's own answer for a spot-checked request
    assert np.array_equal(cold_results[0], index.query(requests[0]))

    best_cold, best_warm = min(cold_seconds), min(warm_seconds)
    columns = NUM_REQUESTS * SEEDS_PER_REQUEST
    print(
        f"\nserving throughput (n={N_NODES}, r={RANK}, "
        f"{NUM_REQUESTS} requests x {SEEDS_PER_REQUEST} seeds):\n"
        f"  cold: {best_cold:.4f}s  ({columns / best_cold:,.0f} columns/s)\n"
        f"  warm: {best_warm:.4f}s  ({columns / best_warm:,.0f} columns/s)\n"
        f"  speedup: {best_cold / best_warm:.1f}x"
    )
    assert best_cold >= 5.0 * best_warm, (
        f"warm cache speedup only {best_cold / best_warm:.2f}x "
        f"(cold {best_cold:.4f}s, warm {best_warm:.4f}s)"
    )


def test_parallel_chunks_match_serial_bitwise(index, requests):
    with CoSimRankService(
        index, cache_columns=0, max_workers=1, chunk_size=32
    ) as serial:
        serial_seconds, serial_results = _timed_batch(serial, requests)
    with CoSimRankService(
        index, cache_columns=0, max_workers=4, chunk_size=32
    ) as parallel:
        parallel_seconds, parallel_results = _timed_batch(parallel, requests)

    for serial_block, parallel_block in zip(serial_results, parallel_results):
        assert np.array_equal(serial_block, parallel_block)
    print(
        f"\ncold batch, cache disabled: serial {serial_seconds:.4f}s, "
        f"4 workers {parallel_seconds:.4f}s (single-CPU hosts overlap "
        f"only BLAS sections; values are bit-identical either way)"
    )
