"""Multi-process frontend vs in-process thread pool: column throughput.

Not a paper artefact — this pins the acceptance bar of the frontend
subsystem (docs/frontend.md): on the per-seed GEMV path (``query_mode
= "exact"``, caches disabled, so every request pays ``r`` GEMVs of
``Z @ U[s]`` in Python-driven loops), four worker *processes* must beat
the in-process four-*thread* service by >= 2x, because the thread pool
serialises the Python bookkeeping between BLAS sections on the GIL
while processes do not.  The frontend side is driven end to end by
``csrplus loadgen --url`` — the same open-loop Zipf workload, across
the HTTP boundary.

The 2x assertion only means anything when the host can actually run
four workers at once, so it is gated on ``os.cpu_count() >= 4``; the
measurement itself runs (and prints) everywhere.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.generators import chung_lu
from repro.obs.metrics import MetricsRegistry
from repro.serving import CoSimRankService, LoadProfile, build_schedule, run_load
from repro.serving.frontend import BackgroundFrontend, FrontendConfig
from repro.sharding import ShardedIndex, build_sharded_store

N_NODES = 20_000
N_EDGES = 90_000
RANK = 64
WORKERS = 4
CHUNK_SIZE = 4  # 16 seeds/request -> 4 chunks fanned across 4 workers

PROFILE = dict(
    requests=30,
    qps=1e6,  # never sleep: the open loop measures capacity, not pacing
    seeds_per_request=16,
    zipf_s=1.1,
    seed=7,
)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    graph = chung_lu(N_NODES, N_EDGES, seed=5)
    store = build_sharded_store(
        graph,
        tmp_path_factory.mktemp("frontend-bench") / "bench.shards",
        num_shards=8,
        config=None,
        rank=RANK,
    )
    return store.path


def _columns_per_second(report_dict) -> float:
    return report_dict["qps_achieved"] * PROFILE["seeds_per_request"]


def test_four_processes_beat_four_threads_on_gemv_path(
    store_path, capsys
):
    # ---- in-process baseline: 4 threads, per-seed GEMV, no caches ----
    index = ShardedIndex(store_path, max_workers=1, query_mode="exact")
    schedule = build_schedule(LoadProfile(**PROFILE), N_NODES)
    with CoSimRankService(
        index,
        max_workers=WORKERS,
        chunk_size=CHUNK_SIZE,
        cache_columns=0,
        topk_cache_entries=0,
    ) as service:
        service.serve_batch([[0]])  # page the shards in before timing
        baseline = run_load(service, schedule, registry=MetricsRegistry())
    index.close()
    baseline_cps = _columns_per_second(baseline.as_dict())

    # ---- frontend: 4 worker processes, driven by `loadgen --url` ----
    frontend = BackgroundFrontend(
        store_path,
        config=FrontendConfig(
            workers=WORKERS,
            chunk_size=CHUNK_SIZE,
            query_mode="exact",
            cache_columns=0,
            topk_cache_entries=0,
            coalesce_window_s=0.0,
        ),
    )
    with frontend:
        warm_code = main([
            "loadgen", "--url", frontend.url,
            "--requests", "4", "--qps", "1000000",
            "--seeds-per-request", "16", "--seed", "3", "--json",
        ])
        assert warm_code == 0
        capsys.readouterr()  # drop the warm-up payload
        code = main([
            "loadgen", "--url", frontend.url,
            "--requests", str(PROFILE["requests"]),
            "--qps", str(int(PROFILE["qps"])),
            "--seeds-per-request", str(PROFILE["seeds_per_request"]),
            "--zipf", str(PROFILE["zipf_s"]),
            "--seed", str(PROFILE["seed"]),
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
    assert payload["outcomes"].get("ok") == PROFILE["requests"]
    frontend_cps = _columns_per_second(payload)

    speedup = frontend_cps / max(baseline_cps, 1e-12)
    print(
        f"\nfrontend throughput (n={N_NODES}, r={RANK}, exact GEMV path, "
        f"{WORKERS} workers, {os.cpu_count()} cpus):\n"
        f"  in-process threads: {baseline_cps:,.0f} columns/s\n"
        f"  frontend processes: {frontend_cps:,.0f} columns/s\n"
        f"  speedup: {speedup:.2f}x"
    )

    if (os.cpu_count() or 1) < WORKERS:
        pytest.skip(
            f"host has {os.cpu_count()} cpus; the {WORKERS}-worker >=2x "
            "assertion needs real parallelism"
        )
    assert frontend_cps >= 2.0 * baseline_cps, (
        f"multi-process frontend only {speedup:.2f}x over the "
        f"in-process thread pool (wanted >= 2x at {WORKERS} workers)"
    )


def test_frontend_answers_match_thread_pool_bitwise(store_path):
    """Speed may vary by host; bytes must not."""
    from repro.serving.frontend import FrontendClient

    requests = [[1, 2, 3], [4000, 9999], [12345]]
    index = ShardedIndex(store_path, max_workers=1, query_mode="exact")
    with CoSimRankService(index, max_workers=WORKERS) as service:
        want = service.serve_batch(requests)
    index.close()
    frontend = BackgroundFrontend(
        store_path,
        config=FrontendConfig(workers=2, coalesce_window_s=0.0),
    )
    with frontend, FrontendClient(frontend.url) as client:
        got = client.serve_batch(requests)
    for got_block, want_block in zip(got, want):
        assert np.array_equal(got_block, want_block)
