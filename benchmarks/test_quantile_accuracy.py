"""Histogram quantile accuracy: interpolation error vs exact percentiles.

Not a paper artefact — this guards the SLO arithmetic
(docs/observability.md).  ``Histogram.quantile`` reconstructs
percentiles from cumulative bucket counts with linear interpolation,
which is what the serving SLOs and the loadgen report are evaluated
from.  Its worst-case error is one bucket width (the true sample could
sit anywhere inside the bucket the quantile lands in), so at bench
scale the estimate must stay within the width of the bucket containing
the exact :func:`numpy.percentile` answer — for every tested quantile,
across several realistic latency-shaped distributions.
"""

import numpy as np
import pytest

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram

N_SAMPLES = 200_000
QUANTILES = (0.50, 0.90, 0.95, 0.99, 0.999)

# latency-shaped workloads: right-skewed bulk, heavy tail, bimodal
# (cache hit vs miss), and near-constant service time
DISTRIBUTIONS = {
    "gamma": lambda rng: rng.gamma(shape=2.0, scale=0.05, size=N_SAMPLES),
    "lognormal": lambda rng: rng.lognormal(
        mean=-3.0, sigma=1.0, size=N_SAMPLES
    ),
    "bimodal": lambda rng: np.where(
        rng.random(N_SAMPLES) < 0.8,
        rng.gamma(shape=2.0, scale=0.002, size=N_SAMPLES),
        rng.gamma(shape=4.0, scale=0.1, size=N_SAMPLES),
    ),
    "constant": lambda rng: np.full(N_SAMPLES, 0.042)
    + rng.normal(0.0, 1e-4, size=N_SAMPLES),
}


def _bucket_width_at(value: float, bounds) -> float:
    """Width of the finite bucket containing ``value``.

    Values beyond the highest finite bound have no finite bucket; the
    quantile clamps there, so use the last finite width as the bar.
    """
    lower = 0.0
    for upper in bounds:
        if value <= upper:
            return upper - lower
        lower = upper
    return bounds[-1] - (bounds[-2] if len(bounds) > 1 else 0.0)


@pytest.mark.parametrize("shape", sorted(DISTRIBUTIONS))
def test_quantile_within_one_bucket_width(shape):
    rng = np.random.default_rng(29)
    samples = np.clip(DISTRIBUTIONS[shape](rng), 0.0, None)
    histogram = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
    for value in samples:
        histogram.observe(float(value))

    bounds = [b for b in histogram.bucket_bounds if np.isfinite(b)]
    worst = 0.0
    for q in QUANTILES:
        exact = float(np.percentile(samples, q * 100.0))
        estimate = histogram.quantile(q)
        width = _bucket_width_at(exact, bounds)
        error = abs(estimate - exact)
        worst = max(worst, error / width)
        assert error <= width, (
            f"{shape} q={q}: estimate {estimate:.6f}s vs exact "
            f"{exact:.6f}s — error {error:.6f}s exceeds the "
            f"{width:.6f}s bucket width"
        )
    print(
        f"\nquantile accuracy ({shape}, n={N_SAMPLES:,}): "
        f"worst error {worst:.2f} bucket widths"
    )
