"""Shared infrastructure for the benchmark suite.

Every ``test_figN_*.py`` / ``test_tabN_*.py`` file reproduces one
figure/table of the paper.  Reproduced tables are collected here and
printed in the terminal summary, so ``pytest benchmarks/
--benchmark-only`` ends with the full set of reproduced artefacts.

The dataset size tier defaults to the full "bench" scale (DESIGN.md §5)
and can be lowered for quick runs::

    REPRO_BENCH_TIER=tiny pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.experiments.report import ExperimentResult

_RESULTS: List[ExperimentResult] = []


def bench_tier() -> str:
    """Dataset tier for the comparison benchmarks (env-overridable)."""
    return os.environ.get("REPRO_BENCH_TIER", "bench")


def record_result(result: ExperimentResult) -> ExperimentResult:
    """Stash a reproduced figure/table for the end-of-run summary."""
    _RESULTS.append(result)
    return result


@pytest.fixture(scope="session")
def tier() -> str:
    """Dataset tier for the comparison benchmarks."""
    return bench_tier()


@pytest.fixture
def record():
    """Callable stashing a reproduced artefact for the final summary."""
    return record_result


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artefacts")
    for result in _RESULTS:
        terminalreporter.write_line("")
        for line in result.render().splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
