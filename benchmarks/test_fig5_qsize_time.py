"""Figure 5 — effect of the query-set size |Q| on CPU time.

Paper's shape: CSR+ and CSR-IT are insensitive to |Q| (preprocessing
dominates / all-pairs respectively); CSR-RLS and CSR-NI grow with |Q|;
CSR-IT and CSR-NI crash on the medium WT graph.
"""

from repro.experiments.figures import fig5


def test_fig5_qsize_time(benchmark, record):
    result = benchmark.pedantic(lambda: fig5(), rounds=1, iterations=1)
    record(result)

    wt_rows = [r for r in result.rows if r["dataset"] == "WT"]
    fb_rows = [r for r in result.rows if r["dataset"] == "FB"]

    # Paper: "On medium WT, CSR-IT and CSR-NI fail due to memory crash".
    assert all(r["CSR-NI"] == "OOM" for r in wt_rows)
    assert all(r["CSR-IT"] == "OOM" for r in wt_rows)

    # CSR+ survives the whole grid everywhere.
    assert all(r["CSR+_seconds"] is not None for r in result.rows)

    # CSR-RLS total time grows with |Q| markedly faster than CSR+'s.
    for rows in (fb_rows, wt_rows):
        rls = [r["CSR-RLS_seconds"] for r in rows if r["CSR-RLS_seconds"]]
        mine = [r["CSR+_seconds"] for r in rows if r["CSR-RLS_seconds"]]
        if len(rls) >= 2:
            assert rls[-1] / rls[0] > (mine[-1] / mine[0]) * 0.9

    # And at the largest |Q|, CSR-RLS is clearly slower than CSR+.
    last_wt = wt_rows[-1]
    if last_wt["CSR-RLS_seconds"] is not None:
        assert last_wt["CSR-RLS_seconds"] > last_wt["CSR+_seconds"]
