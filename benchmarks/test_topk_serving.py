"""Top-k serving: the blockwise pruned kernel vs full-column top-k.

Not a paper artefact — this benchmarks the top-k-native serving path
(docs/topk.md).  Three claims are asserted, not just reported:

1. **Throughput** — on a hub-skewed graph at n ≈ 50k, the blockwise
   kernel answers a seed batch at least 2x faster than computing each
   seed's full column and sorting it (``index.top_k``).
2. **Work** — the norm-bound prune holds: every seed scores fewer than
   ``0.5 * n`` candidates (in practice far fewer on PA graphs).
3. **Memory** — the kernel's transient block buffers, charged to a
   :class:`~repro.core.memory.MemoryMeter`, peak at ``O(block_rows *
   |Q|)`` — a dense ``n x |Q|`` intermediate is never materialised.

All while returning bit-identical rankings (nodes, scores, tie order).
"""

import time

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.core.memory import MemoryMeter
from repro.core.topk import top_k_blockwise
from repro.graphs.generators import preferential_attachment
from repro.serving import CoSimRankService

N_NODES = 50_000
RANK = 16
K = 10
BLOCK_ROWS = 1024
TRIALS = 5

SEEDS = [777, 25_000, 3, 49_999, 12_345, 100, 42_000, 9]


@pytest.fixture(scope="module")
def index() -> CSRPlusIndex:
    graph = preferential_attachment(N_NODES, 4, seed=7)
    return CSRPlusIndex(graph, rank=RANK).prepare()


def _best_of(fn, trials=TRIALS):
    best = float("inf")
    result = None
    for _ in range(trials):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_blockwise_2x_faster_than_full_column_topk(index):
    index.z_row_norms()  # norms are index state, not per-query work

    blockwise_seconds, results = _best_of(
        lambda: top_k_blockwise(index, SEEDS, K, block_rows=BLOCK_ROWS)
    )
    full_seconds, full = _best_of(
        lambda: [index.top_k(seed, K) for seed in SEEDS]
    )

    # identical rankings first — speed without correctness is nothing
    for result, nodes in zip(results, full):
        np.testing.assert_array_equal(result.nodes, nodes)

    speedup = full_seconds / blockwise_seconds
    assert speedup >= 2.0, (
        f"blockwise {blockwise_seconds:.4f}s vs full {full_seconds:.4f}s "
        f"= {speedup:.2f}x, expected >= 2x"
    )


def test_pruning_scores_under_half_the_graph(index):
    results = top_k_blockwise(index, SEEDS, K, block_rows=BLOCK_ROWS)
    for seed, result in zip(SEEDS, results):
        fraction = result.candidates_scored / N_NODES
        assert result.candidates_scored < 0.5 * N_NODES, (
            f"seed {seed} scored {result.candidates_scored} candidates "
            f"({fraction:.1%} of n), expected < 50%"
        )
        assert result.blocks_skipped > 0, (
            f"seed {seed} skipped no blocks on a hub-skewed graph"
        )


def test_peak_memory_is_block_sized_not_graph_sized(index):
    meter = MemoryMeter()
    top_k_blockwise(index, SEEDS, K, block_rows=BLOCK_ROWS, memory=meter)
    itemsize = np.dtype(index.dtype).itemsize
    block_buffer = BLOCK_ROWS * len(SEEDS) * itemsize
    dense_intermediate = N_NODES * len(SEEDS) * itemsize
    assert meter.peak_bytes <= block_buffer
    # the O(n * |Q|) dense path would cost ~50x more
    assert meter.peak_bytes < 0.1 * dense_intermediate


def test_served_topk_warm_cache_skips_the_index(index):
    with CoSimRankService(index, max_workers=1) as service:
        cold_seconds, cold = _best_of(
            lambda: service.serve_topk(SEEDS, K), trials=1
        )
        warm_seconds, warm = _best_of(lambda: service.serve_topk(SEEDS, K))
        for a, b in zip(cold, warm):
            np.testing.assert_array_equal(a.nodes, b.nodes)
        stats = service.topk_stats()
        assert stats["misses"] == len(set(SEEDS))
        assert stats["hits"] >= len(SEEDS) * TRIALS
        # a warm hit is a cache slice; it must crush the cold scan
        assert warm_seconds < cold_seconds
