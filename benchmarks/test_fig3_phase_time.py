"""Figure 3 — CSR+ preprocessing vs query time as |Q| grows.

Paper's shape: preprocessing time is flat in |Q| (one black bar per
dataset); query time grows linearly with |Q| and, on large graphs, is a
small fraction of preprocessing.
"""

from repro.experiments.figures import fig3


def test_fig3_phase_time(benchmark, tier, record):
    result = benchmark.pedantic(
        lambda: fig3(tier=tier), rounds=1, iterations=1
    )
    record(result)

    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)

    for dataset, rows in by_dataset.items():
        # preprocessing measured once per dataset -> identical entries
        assert len({r["preprocess_seconds"] for r in rows}) == 1

        # query cost trends upward with |Q| (wall-clock noise tolerated)
        times = [r["query_seconds"] for r in rows]
        assert times[-1] >= times[0] * 0.5, dataset

    # On the biggest graph, online queries are much cheaper than the
    # offline phase — the amortisation argument of the paper.
    tw_rows = by_dataset["TW"]
    assert all(
        r["query_seconds"] < r["preprocess_seconds"] for r in tw_rows
    )
