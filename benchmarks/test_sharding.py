"""Sharding benchmark — the out-of-core builder's memory contract.

The subsystem exists so the offline phase never needs both full
``n x r`` factors resident (ROADMAP: serve graphs whose factors beat
RAM).  This benchmark pins the claim with the ledger from
``core/memory.py``: for a 4-shard layout at n=4096, r=32 the
out-of-core build's peak resident bytes must be at most **half** the
monolithic ``prepare()`` peak on the same graph and config.

Measured headroom at this scale: the ratio sits around 0.41 — the
retained ``U`` factor plus the sparse transition matrix dominate the
out-of-core peak, while the monolithic path additionally holds the
left SVD factor and the full ``Z``.
"""

import numpy as np

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.core.memory import MemoryMeter
from repro.graphs.generators import chung_lu
from repro.sharding import ShardedIndex, build_sharded_store

N, RANK, SHARDS = 4096, 32, 4


def _graph():
    return chung_lu(N, 16384, seed=97)


def test_ooc_build_peak_at_most_half_of_monolithic(benchmark, tmp_path):
    graph = _graph()
    config = CSRPlusConfig(rank=RANK)

    mono = CSRPlusIndex(graph, config).prepare()
    mono_peak = mono.memory.peak_bytes
    assert mono_peak > 0

    meter = MemoryMeter()
    store = benchmark.pedantic(
        lambda: build_sharded_store(
            graph,
            tmp_path / "store",
            num_shards=SHARDS,
            config=config,
            memory=meter,
            overwrite=True,
        ),
        rounds=1,
        iterations=1,
    )
    ooc_peak = meter.peak_bytes

    # The headline contract of the subsystem.
    assert ooc_peak <= 0.5 * mono_peak, (
        f"out-of-core peak {ooc_peak:,} bytes exceeds half the "
        f"monolithic prepare peak {mono_peak:,}"
    )

    # The cheaper build must still answer queries within the documented
    # tolerance of the monolithic index — the saving is not a trade
    # against correctness.
    seeds = [0, N // 2, N - 1]
    with ShardedIndex(store, max_workers=1) as sharded:
        got = sharded.query_columns(seeds)
    want = mono.query_columns(seeds)
    atol = batched_query_atol(RANK, np.float64)
    np.testing.assert_allclose(got, want, rtol=0.0, atol=atol)

    # And the ledger settles: nothing stays charged after the build.
    assert meter.current_bytes == 0


def test_ooc_peak_tracks_shard_size_not_n(benchmark, tmp_path):
    """More shards => smaller transient Z blocks => lower peak.

    The retained ``U`` and the sparse ``Q`` are layout-independent, so
    the delta between layouts isolates the per-shard transient buffer.
    """
    graph = _graph()
    config = CSRPlusConfig(rank=RANK)

    def peak_for(num_shards: int) -> int:
        meter = MemoryMeter()
        build_sharded_store(
            graph,
            tmp_path / f"s{num_shards}",
            num_shards=num_shards,
            config=config,
            memory=meter,
        )
        return meter.peak_bytes

    coarse = benchmark.pedantic(
        lambda: peak_for(2), rounds=1, iterations=1
    )
    fine = peak_for(16)
    # 2-shard transient blocks hold 8x the rows of 16-shard ones, so
    # the coarse layout's write phase must dominate its peak; the fine
    # layout's peak bottoms out at the (layout-independent) streaming
    # SVD/H phase and cannot rise above the coarse one.
    assert fine < coarse
    write_phase_delta = (N // 2 - N // 16) * RANK * 8
    assert coarse - fine <= write_phase_delta
