"""Ablation — pruned top-k vs the full scan.

On hub-dominated graphs the ||Z[x]||-ordered threshold scan visits a
small fraction of the nodes while returning exactly the flat top-k's
scores.
"""

import time

import numpy as np

from repro.core.index import CSRPlusIndex
from repro.core.topk import top_k_pruned
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import preferential_attachment


def test_ablation_topk_pruning(benchmark, record):
    graph = preferential_attachment(50_000, 4, seed=13)
    index = CSRPlusIndex(graph, rank=8).prepare()
    query, k = 17, 10

    result = benchmark.pedantic(
        lambda: top_k_pruned(index, query, k), rounds=3, iterations=1
    )

    start = time.perf_counter()
    result = top_k_pruned(index, query, k)
    pruned_seconds = time.perf_counter() - start

    start = time.perf_counter()
    flat = index.top_k(query, k)
    flat_seconds = time.perf_counter() - start

    flat_scores = index.single_source(query)[flat]
    np.testing.assert_allclose(
        np.sort(result.scores), np.sort(flat_scores), atol=1e-10
    )

    fraction = result.candidates_scored / graph.num_nodes
    record(
        ExperimentResult(
            exp_id="ablation-topk",
            title="Top-k search: norm-bound pruning vs full scan",
            columns=["strategy", "seconds", "candidates scored"],
            rows=[
                {
                    "strategy": "pruned threshold scan",
                    "seconds": f"{pruned_seconds:.4f}",
                    "candidates scored": f"{result.candidates_scored} "
                    f"({100 * fraction:.1f}% of n)",
                },
                {
                    "strategy": "full scan + sort",
                    "seconds": f"{flat_seconds:.4f}",
                    "candidates scored": f"{graph.num_nodes} (100%)",
                },
            ],
            parameters={"n": graph.num_nodes, "r": 8, "k": k},
            notes=[
                "Pruning wins on work (candidates scored) but the "
                "vectorised full scan can still win wall-clock at these "
                "sizes: BLAS scores all n rows faster than Python visits "
                "2% of them. The scan order/bound is the algorithmic "
                "contribution; a compiled kernel would realise it.",
            ],
        )
    )
    # pruning must skip a substantial share of candidates on PA graphs
    assert fraction < 0.9
