"""Figure 2 — total CPU time of multi-source CoSimRank per dataset.

Paper's shape: CSR+ is 1-3 orders of magnitude faster than every rival
on every dataset; only CSR+ survives the two largest graphs at full
paper scale.  At our stand-in scale CSR-RLS may survive the large pair
too (scipy's spmv is efficient), but the ordering must hold.
"""

from repro.experiments.figures import fig2


def test_fig2_total_time(benchmark, tier, record):
    result = benchmark.pedantic(
        lambda: fig2(tier=tier), rounds=1, iterations=1
    )
    record(result)

    datasets = result.column("dataset")
    assert datasets == ["FB", "P2P", "YT", "WT", "TW", "WB"]

    # CSR+ completes everywhere.
    assert all(v is not None for v in result.column("CSR+_seconds"))

    # CSR+ is the fastest completer on each medium/large dataset.
    # CSR-RLS gets a wall-clock noise margin: at |Q|=100 on the very
    # sparse WB stand-in the two are close (CSR+'s one-off SVD vs
    # CSR-RLS's |Q|-linear spmv work), and Figure 5 is where their
    # divergence with |Q| is asserted.
    for row in result.rows:
        if row["dataset"] in ("FB", "P2P"):
            continue
        mine = row["CSR+_seconds"]
        for rival in ("CSR-RLS", "CSR-IT", "CSR-NI"):
            other = row.get(f"{rival}_seconds")
            if other is not None:
                margin = 1.6 if rival == "CSR-RLS" else 1.0
                assert mine <= other * margin, (row["dataset"], rival)

    # CSR-NI must fail (memory) beyond the small graphs, as in the paper.
    ni_status = [row["CSR-NI"] for row in result.rows]
    assert any(cell == "OOM" for cell in ni_status)
