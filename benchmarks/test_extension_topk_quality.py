"""Extension experiment — head-of-ranking quality vs rank.

Not a paper artefact: the paper reports accuracy only as AvgDiff
(Table 3), which averages away head errors.  This bench quantifies the
rank the *ranking* needs (precision@10 of CSR+'s top-k vs the exact
top-k) — the practical question for the applications in §1.
"""

from repro.experiments.topk_quality import topk_quality


def test_extension_topk_quality(benchmark, record):
    result = benchmark.pedantic(
        lambda: topk_quality(
            datasets=(("FB", "small"), ("YT", "tiny")),
            ranks=(5, 25, 100),
            k=10,
            num_queries=10,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)

    for key in ("FB", "YT"):
        values = [
            row["precision_value"] for row in result.rows if row["dataset"] == key
        ]
        # the head of the ranking sharpens substantially with rank
        assert values[-1] > values[0]
        assert values[-1] >= 0.5
        # and the paper-default r=5 is visibly coarse for rankings
        assert values[0] < 0.9
