"""Figure 9 — effect of the query-set size |Q| on memory.

Paper's shape: CSR+ and CSR-RLS memory grow with |Q| (they memoise the
n x |Q| result block); CSR-IT/CSR-NI are |Q|-independent when alive and
explode on the medium graph; CSR+ stays orders of magnitude below the
rivals throughout.
"""

from repro.experiments.figures import fig9


def test_fig9_qsize_memory(benchmark, record):
    result = benchmark.pedantic(lambda: fig9(), rounds=1, iterations=1)
    record(result)

    fb_rows = [r for r in result.rows if r["dataset"] == "FB"]
    wt_rows = [r for r in result.rows if r["dataset"] == "WT"]

    # CSR+ memory grows with |Q| but stays linear.
    mine = [r["CSR+_bytes"] for r in fb_rows]
    q_sizes = [r["|Q|"] for r in fb_rows]
    assert mine[-1] > mine[0]
    assert mine[-1] < mine[0] * (q_sizes[-1] / q_sizes[0]) * 3

    # On WT the quadratic baselines are gone (paper: memory explosion)...
    assert all(r["CSR-NI_bytes"] is None for r in wt_rows)
    assert all(r["CSR-IT_bytes"] is None for r in wt_rows)
    # ...while CSR+ scales through the whole grid.
    assert all(r["CSR+_bytes"] is not None for r in wt_rows)

    # Wherever CSR-NI survived (small FB), its footprint dwarfs CSR+'s.
    for row in fb_rows:
        if row["CSR-NI_bytes"] is not None:
            assert row["CSR-NI_bytes"] > 10 * row["CSR+_bytes"]
