"""Ablation — batched online query vs a per-query loop.

Theorem 3.5's query `[S]_{*,Q} = [I]_{*,Q} + c Z U[Q]^T` is one GEMM;
looping over queries issues |Q| GEMVs instead.  Both return the same
block; the GEMM is what makes the online phase's O(nr|Q|) constant tiny.
"""

import time

import numpy as np

from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.experiments.report import ExperimentResult
from repro.graphs.generators import chung_lu


def test_ablation_query_batching(benchmark, record):
    graph = chung_lu(30_000, 160_000, seed=10)
    index = CSRPlusIndex(graph, rank=5).prepare()
    queries = sample_queries(graph, 500, seed=7)

    batched = benchmark.pedantic(
        lambda: index.query(queries), rounds=3, iterations=1
    )
    start = time.perf_counter()
    batched = index.query(queries)
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    looped = np.column_stack([index.query(int(q))[:, 0] for q in queries])
    looped_seconds = time.perf_counter() - start

    np.testing.assert_allclose(batched, looped, atol=1e-12)
    record(
        ExperimentResult(
            exp_id="ablation-batching",
            title="Online query: one GEMM vs per-query GEMV loop",
            columns=["strategy", "seconds"],
            rows=[
                {"strategy": "batched GEMM (Thm 3.5)", "seconds": f"{batched_seconds:.4f}"},
                {"strategy": "per-query loop", "seconds": f"{looped_seconds:.4f}"},
            ],
            parameters={"n": graph.num_nodes, "|Q|": len(queries), "r": 5},
        )
    )
    assert batched_seconds < looped_seconds
