"""Ablation — the four optimisation stages of §3.2, cumulatively.

Times Li et al.'s literal pipeline and each theorem's rewrite on the
same graph; every stage must return identical similarities while the
time falls monotonically overall (stage 0 -> stage 4).
"""

from repro.experiments.stages import ablation_stages


def test_ablation_stages(benchmark, record):
    result = benchmark.pedantic(
        lambda: ablation_stages(dataset="FB", tier="small", rank=5, q_size=50),
        rounds=1,
        iterations=1,
    )
    record(result)

    seconds = [row["seconds"] for row in result.rows]
    drifts = [row["drift_value"] for row in result.rows]

    # losslessness: every rewrite returns the same block
    assert all(d < 1e-8 for d in drifts)

    # the full CSR+ (stage 4) beats the literal method (stage 0) clearly
    assert seconds[4] < seconds[0] / 2

    # and the trend over the stages is downward
    assert seconds[4] <= min(seconds[:4])
