"""Ablation — repeated squaring vs plain fixed point for the Stein solve.

Algorithm 1 lines 4-5 use repeated squaring, needing only
O(log2 log_c eps) iterations instead of O(log_c eps).  At the paper's
r values the subspace solve is cheap either way; the ablation shows the
iteration-count gap and that both reach the same P.
"""

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.linalg.stein import (
    fixed_point_iteration_count,
    solve_stein_direct,
    solve_stein_fixed_point,
    solve_stein_squaring,
    squaring_iteration_count,
)


def _h_matrix(r=60, seed=3):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((r, r))
    return h * (0.95 / np.linalg.norm(h, ord=2))


def test_ablation_squaring(benchmark, record):
    h = _h_matrix()
    c, eps = 0.6, 1e-10

    def run_both():
        p_sq, iters_sq = solve_stein_squaring(h, c, eps)
        p_fp, iters_fp = solve_stein_fixed_point(h, c, eps)
        return p_sq, iters_sq, p_fp, iters_fp

    p_sq, iters_sq, p_fp, iters_fp = benchmark.pedantic(
        run_both, rounds=3, iterations=1
    )

    exact = solve_stein_direct(h, c)
    assert np.max(np.abs(p_sq - exact)) < eps
    assert np.max(np.abs(p_fp - exact)) < eps * 10

    # exponential iteration gap, as the theory says (the fixed point may
    # stop early when ||H|| < 1 sharpens the contraction, but squaring
    # always needs far fewer steps)
    assert iters_sq <= squaring_iteration_count(c, eps) + 1
    assert iters_fp <= fixed_point_iteration_count(c, eps)
    assert iters_sq < iters_fp

    record(
        ExperimentResult(
            exp_id="ablation-squaring",
            title="Stein solve: repeated squaring vs plain fixed point",
            columns=["solver", "iterations", "max error vs direct"],
            rows=[
                {
                    "solver": "repeated squaring (Alg.1)",
                    "iterations": iters_sq,
                    "max error vs direct": f"{np.max(np.abs(p_sq - exact)):.1e}",
                },
                {
                    "solver": "plain fixed point",
                    "iterations": iters_fp,
                    "max error vs direct": f"{np.max(np.abs(p_fp - exact)):.1e}",
                },
            ],
            parameters={"r": h.shape[0], "c": c, "eps": eps},
        )
    )
