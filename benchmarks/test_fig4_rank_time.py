"""Figure 4 — effect of the low rank r on CPU time.

Paper's shape: CSR+/CSR-RLS/CSR-IT grow mildly with r while CSR-NI's
O(r^4 n^2) tensor products explode, overtaking CSR-IT mid-grid (and
eventually dying).  The sweep runs on the small graphs where CSR-NI can
at least start (DESIGN.md §5); the crossover lands at a smaller r than
the paper's because n is scaled down.
"""

from repro.experiments.figures import fig4


def test_fig4_rank_time(benchmark, record):
    result = benchmark.pedantic(lambda: fig4(), rounds=1, iterations=1)
    record(result)

    for dataset in {row["dataset"] for row in result.rows}:
        rows = [r for r in result.rows if r["dataset"] == dataset]

        # CSR+ completes at every rank.
        assert all(r["CSR+_seconds"] is not None for r in rows)

        # CSR-NI's time must grow far faster than CSR+'s over the grid
        # (quartic vs ~linear in r), wherever it survives.
        ni = [r["CSR-NI_seconds"] for r in rows if r["CSR-NI_seconds"]]
        mine = [r["CSR+_seconds"] for r in rows if r["CSR-NI_seconds"]]
        if len(ni) >= 2:
            ni_growth = ni[-1] / ni[0]
            my_growth = max(mine[-1] / mine[0], 1.0)
            assert ni_growth > 2 * my_growth, dataset

        # At the top of the grid CSR-NI is the slowest (or dead).
        last = rows[-1]
        if last["CSR-NI_seconds"] is not None:
            assert last["CSR-NI_seconds"] >= last["CSR+_seconds"]
