"""Figure 7 — CSR+ memory per phase as |Q| grows.

Paper's shape: per-phase memory rises mildly with graph size; the query
phase's n x |Q| result block grows linearly with |Q| and can exceed the
preprocessing footprint at large |Q|.
"""

from repro.experiments.figures import fig7


def test_fig7_phase_memory(benchmark, tier, record):
    result = benchmark.pedantic(
        lambda: fig7(tier=tier), rounds=1, iterations=1
    )
    record(result)

    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)

    for dataset, rows in by_dataset.items():
        # preprocessing memory is |Q|-independent
        assert len({r["preprocess_bytes"] for r in rows}) == 1, dataset

        # query memory is exactly linear in |Q| (n * |Q| * 8 bytes)
        ratios = [r["query_bytes"] / r["|Q|"] for r in rows]
        assert max(ratios) - min(ratios) < 1e-6, dataset

    # across datasets, preprocessing memory grows with n (mildly)
    prep = [rows[0]["preprocess_bytes"] for rows in by_dataset.values()]
    assert max(prep) > min(prep)
