"""Figure 8 — effect of the low rank r on memory.

Paper's shape: CSR+ memory grows gently (O(rn)); CSR-NI's O(r^2 n^2)
tensor products blow up rapidly and die mid-grid.
"""

from repro.experiments.figures import fig8


def test_fig8_rank_memory(benchmark, record):
    result = benchmark.pedantic(lambda: fig8(), rounds=1, iterations=1)
    record(result)

    for dataset in {row["dataset"] for row in result.rows}:
        rows = [r for r in result.rows if r["dataset"] == dataset]

        mine = [r["CSR+_bytes"] for r in rows]
        assert all(v is not None for v in mine)
        # gentle growth: O(rn) across the grid (ranks grid spans 5x)
        assert mine[-1] < mine[0] * 10, dataset

        # CSR-NI: r^2-factor growth wherever it survives
        ni = [(r["r"], r["CSR-NI_bytes"]) for r in rows if r["CSR-NI_bytes"]]
        if len(ni) >= 2:
            (r0, b0), (r1, b1) = ni[0], ni[-1]
            expected = (r1 / r0) ** 2
            assert b1 / b0 > expected * 0.5, dataset

        # and CSR-NI dwarfs CSR+ at equal rank
        for row in rows:
            if row["CSR-NI_bytes"] is not None:
                assert row["CSR-NI_bytes"] > 10 * row["CSR+_bytes"]
