"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.toy import figure1_graph
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu, erdos_renyi, preferential_attachment


@pytest.fixture
def toy_graph() -> DiGraph:
    """The paper's 6-node Figure-1 graph."""
    return figure1_graph()


@pytest.fixture
def small_er() -> DiGraph:
    """A deterministic 60-node Erdos-Renyi graph."""
    return erdos_renyi(60, 240, seed=17)


@pytest.fixture
def small_powerlaw() -> DiGraph:
    """A deterministic 120-node Chung-Lu graph."""
    return chung_lu(120, 600, seed=23)


@pytest.fixture
def medium_powerlaw() -> DiGraph:
    """A deterministic 400-node Chung-Lu graph (integration tests)."""
    return chung_lu(400, 2000, seed=29)


@pytest.fixture
def small_social() -> DiGraph:
    """A deterministic preferential-attachment graph."""
    return preferential_attachment(150, 4, seed=31)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
