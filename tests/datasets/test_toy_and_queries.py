"""Unit tests for the toy dataset module and query sampling."""

import numpy as np
import pytest

from repro.datasets.queries import sample_queries
from repro.datasets.toy import (
    example_3_6_expected,
    example_3_6_queries,
    figure1_graph,
    figure1_node_ids,
)
from repro.errors import InvalidParameterError
from repro.graphs.generators import ring


class TestToy:
    def test_node_ids_stable(self):
        ids = figure1_node_ids()
        assert ids == {"a": 0, "b": 1, "c": 2, "d": 3, "e": 4, "f": 5}

    def test_queries_are_b_and_d(self):
        np.testing.assert_array_equal(example_3_6_queries(), [1, 3])

    def test_expected_block_shape(self):
        block = example_3_6_expected()
        assert block.shape == (6, 2)
        assert block[1, 0] == pytest.approx(1.49)

    def test_graph_fresh_instances(self):
        assert figure1_graph() == figure1_graph()
        assert figure1_graph() is not figure1_graph()


class TestSampleQueries:
    def test_deterministic(self):
        graph = ring(50)
        np.testing.assert_array_equal(
            sample_queries(graph, 10, seed=3), sample_queries(graph, 10, seed=3)
        )

    def test_distinct_and_in_range(self):
        graph = ring(30)
        queries = sample_queries(graph, 20, seed=1)
        assert len(set(queries.tolist())) == 20
        assert queries.min() >= 0
        assert queries.max() < 30

    def test_sorted(self):
        queries = sample_queries(ring(40), 15, seed=2)
        assert np.all(np.diff(queries) > 0)

    def test_too_many(self):
        with pytest.raises(InvalidParameterError):
            sample_queries(ring(5), 6)

    def test_zero_rejected(self):
        with pytest.raises(InvalidParameterError):
            sample_queries(ring(5), 0)
