"""Unit tests for custom-size stand-in generation."""

import pytest

from repro.datasets.registry import PAPER_DATASETS, dataset_keys
from repro.datasets.synthetic import make_standin
from repro.errors import DatasetError, InvalidParameterError


class TestMakeStandin:
    @pytest.mark.parametrize("key", ["P2P", "YT", "WT"])
    def test_density_matches_paper(self, key):
        graph = make_standin(key, 2_000)
        paper_ratio = PAPER_DATASETS[key].paper_density
        assert graph.density == pytest.approx(paper_ratio, rel=0.2)

    def test_fb_is_dense_social(self):
        graph = make_standin("FB", 500)
        assert graph.density > 10  # FB's m/n is 21.9

    def test_rmat_keys_round_to_power_of_two(self):
        graph = make_standin("TW", 1_000)
        assert graph.num_nodes == 1_024

    @pytest.mark.parametrize("key", dataset_keys())
    def test_every_key_buildable(self, key):
        graph = make_standin(key, 300)
        assert graph.num_edges > 0

    def test_deterministic_default_seed(self):
        assert make_standin("YT", 400) == make_standin("YT", 400)

    def test_custom_seed_changes_graph(self):
        assert make_standin("YT", 400, seed=1) != make_standin("YT", 400, seed=2)

    def test_unknown_key(self):
        with pytest.raises(DatasetError):
            make_standin("??", 100)

    def test_too_small(self):
        with pytest.raises(InvalidParameterError):
            make_standin("FB", 1)

    def test_scales_beyond_bench_tier(self):
        """The knob genuinely goes bigger than the registry tier."""
        bench_nodes = PAPER_DATASETS["P2P"].standin_sizes["bench"][0]
        graph = make_standin("P2P", bench_nodes * 4)
        assert graph.num_nodes == bench_nodes * 4
