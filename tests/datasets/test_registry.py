"""Unit tests for the dataset registry and stand-ins."""

import pytest

from repro.datasets.registry import (
    PAPER_DATASETS,
    dataset_keys,
    load_dataset,
    paper_table,
)
from repro.errors import DatasetError


class TestCatalogue:
    def test_keys_in_paper_order(self):
        assert dataset_keys() == ["FB", "P2P", "YT", "WT", "TW", "WB"]

    def test_paper_statistics(self):
        """The §4.1 table, transcribed."""
        fb = PAPER_DATASETS["FB"]
        assert (fb.paper_nodes, fb.paper_edges) == (4_039, 88_234)
        tw = PAPER_DATASETS["TW"]
        assert (tw.paper_nodes, tw.paper_edges) == (41_625_230, 1_468_365_182)
        assert PAPER_DATASETS["WB"].paper_edges == 1_019_903_190

    def test_paper_density_ratios(self):
        assert PAPER_DATASETS["FB"].paper_density == pytest.approx(21.9, abs=0.1)
        assert PAPER_DATASETS["P2P"].paper_density == pytest.approx(2.4, abs=0.1)
        assert PAPER_DATASETS["TW"].paper_density == pytest.approx(35.3, abs=0.1)

    def test_paper_table_rows(self):
        rows = paper_table()
        assert len(rows) == 6
        assert rows[0]["Data"] == "FB"
        assert rows[-1]["Description"].startswith("A graph obtained")


class TestStandins:
    def test_tiny_tier_sizes(self):
        for key in dataset_keys():
            graph = load_dataset(key, "tiny")
            spec_nodes, _ = PAPER_DATASETS[key].standin_sizes["tiny"]
            assert graph.num_nodes >= spec_nodes * 0.9
            assert graph.num_edges > 0

    def test_density_tracks_paper_ratio(self):
        """Each stand-in keeps the paper's m/n within a factor ~2."""
        for key in dataset_keys():
            graph = load_dataset(key, "tiny")
            paper_ratio = PAPER_DATASETS[key].paper_density
            assert graph.density == pytest.approx(paper_ratio, rel=0.8), key

    def test_size_ordering_preserved(self):
        """Small -> large dataset ordering survives scaling (bench tier)."""
        sizes = [
            PAPER_DATASETS[key].standin_sizes["bench"][0] for key in dataset_keys()
        ]
        # FB and P2P are the small pair; TW/WB the large pair
        assert sizes[0] < sizes[2] < sizes[4]
        assert sizes[1] < sizes[3] < sizes[5]

    def test_deterministic_and_cached(self):
        a = load_dataset("FB", "tiny")
        b = load_dataset("FB", "tiny")
        assert a is b  # lru_cache

    def test_unknown_key(self):
        with pytest.raises(DatasetError):
            load_dataset("NOPE")

    def test_unknown_tier(self):
        with pytest.raises(DatasetError):
            load_dataset("FB", "huge")

    def test_heavy_tail_for_crawl_standins(self):
        """TW/WB stand-ins are skewed; P2P's ER stand-in is not."""
        tw = load_dataset("TW", "tiny")
        p2p = load_dataset("P2P", "tiny")
        tw_ratio = tw.in_degrees().max() / max(1.0, tw.in_degrees().mean())
        p2p_ratio = p2p.in_degrees().max() / max(1.0, p2p.in_degrees().mean())
        assert tw_ratio > 2 * p2p_ratio
