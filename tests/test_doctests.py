"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.applications.synonyms
import repro.core.csr_plus
import repro.core.index
import repro.serving.cache
import repro.serving.registry
import repro.serving.service

MODULES = [
    repro.core.index,
    repro.core.csr_plus,
    repro.applications.synonyms,
    repro.serving.cache,
    repro.serving.registry,
    repro.serving.service,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
