"""Integration tests for the csrplus CLI."""

import pytest

from repro.cli import build_parser, main


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "tab3" in out

    def test_run_ablation(self, capsys):
        assert main(["experiments", "run", "ablation-stages"]) == 0
        out = capsys.readouterr().out
        assert "stage4" in out

    def test_run_with_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(
            [
                "experiments", "run", "ablation-stages",
                "--tier", "tiny", "--output", str(target),
            ]
        )
        assert code == 0
        assert "stage4" in target.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "run", "fig42"]) == 1
        assert "error" in capsys.readouterr().err


class TestDatasetsCommand:
    def test_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "FB" in out
        assert "Webbase" in out


class TestQueryCommand:
    def test_builtin_dataset(self, capsys):
        code = main(
            [
                "query",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries", "1,2",
                "--rank", "4",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 most similar to node 1" in out

    def test_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        code = main(
            ["query", "--edge-list", str(path), "--queries", "0", "--rank", "2"]
        )
        assert code == 0
        assert "graph: n=3 m=3" in capsys.readouterr().out

    def test_bad_query_node(self, capsys):
        code = main(
            ["query", "--dataset", "P2P", "--tier", "tiny", "--queries", "99999"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_batched_query_mode(self, capsys):
        code = main(
            [
                "query",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries", "1,2",
                "--rank", "4",
                "--top", "3",
                "--query-mode", "batched",
            ]
        )
        assert code == 0
        assert "top-3 most similar to node 1" in capsys.readouterr().out


class TestServeBatchCommand:
    @staticmethod
    def _write_queries(tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("1,2,3\n4 5\n# a comment line\n1,2\n")
        return str(path)

    def test_human_output(self, tmp_path, capsys):
        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", self._write_queries(tmp_path),
                "--rank", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pass 1:" in out
        assert "cache:" in out
        assert "columns/s" in out

    def test_json_output_shape(self, tmp_path, capsys):
        import json

        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", self._write_queries(tmp_path),
                "--rank", "4",
                "--repeat", "2",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        for key in (
            "num_nodes", "num_edges", "rank", "damping",
            "requests", "passes", "stats",
        ):
            assert key in payload
        assert payload["requests"] == 3
        assert len(payload["passes"]) == 2
        for entry in payload["passes"]:
            assert entry["columns"] == 7
            assert entry["columns_per_second"] > 0
        stats = payload["stats"]
        for key in (
            "hits", "misses", "evictions", "bytes_cached",
            "hit_rate", "lookup_seconds", "compute_seconds",
            "assemble_seconds",
        ):
            assert key in stats
        # pass 1 misses seeds {1..5}; pass 2 is fully warm
        assert stats["misses"] == 5
        assert stats["hits"] == 5
        assert payload["query_mode"] == "exact"

    def test_batched_mode_reported_and_serves(self, tmp_path, capsys):
        import json

        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", self._write_queries(tmp_path),
                "--rank", "4",
                "--query-mode", "batched",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query_mode"] == "batched"
        assert payload["passes"][0]["columns"] == 7

    def test_human_output_prints_mode(self, tmp_path, capsys):
        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", self._write_queries(tmp_path),
                "--rank", "4",
                "--query-mode", "batched",
            ]
        )
        assert code == 0
        assert "mode=batched" in capsys.readouterr().out

    def test_registry_round_trip_answers_identically(self, tmp_path, capsys):
        """A registry-loaded index serves the same answers as in-memory."""
        import numpy as np

        from repro.core.config import CSRPlusConfig
        from repro.core.index import CSRPlusIndex
        from repro.datasets.registry import load_dataset
        from repro.serving import IndexRegistry

        queries = self._write_queries(tmp_path)
        index_dir = tmp_path / "registry"
        argv = [
            "serve-batch",
            "--dataset", "P2P",
            "--tier", "tiny",
            "--queries-file", queries,
            "--rank", "4",
            "--index-dir", str(index_dir),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        saved = list(index_dir.glob("*.npz"))
        assert len(saved) == 1
        # second invocation resolves the saved index instead of rebuilding
        assert main(argv) == 0
        capsys.readouterr()
        assert list(index_dir.glob("*.npz")) == saved

        graph = load_dataset("P2P", "tiny")
        in_memory = CSRPlusIndex(graph, CSRPlusConfig(rank=4)).prepare()
        loaded = IndexRegistry(index_dir).get(saved[0].stem, graph)
        request = [1, 2, 3, 4, 5]
        assert np.array_equal(loaded.query(request), in_memory.query(request))

    def test_missing_queries_file(self, tmp_path, capsys):
        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", str(tmp_path / "absent.txt"),
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_queries_file(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("1,two,3\n")
        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", str(path),
            ]
        )
        assert code == 1
        assert "integer node ids" in capsys.readouterr().err

    def test_out_of_range_seed(self, tmp_path, capsys):
        path = tmp_path / "oor.txt"
        path.write_text("999999\n")
        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", str(path),
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestQualityFlag:
    """--quality plumbs the serving tier through serve-batch/loadgen."""

    @staticmethod
    def _write_queries(tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("1,2,3\n4 5\n1,2\n")
        return str(path)

    def test_serve_batch_approx_reports_tiers(self, tmp_path, capsys):
        import json

        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", self._write_queries(tmp_path),
                "--rank", "4",
                "--quality", "approx",
                "--approx-projections", "64",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["quality"] == "approx"
        assert payload["approx"]["num_projections"] == 64
        assert payload["approx"]["atol"] > 0

    def test_serve_batch_human_output_prints_tiers_line(self, tmp_path, capsys):
        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", self._write_queries(tmp_path),
                "--rank", "4",
                "--quality", "auto",
                "--approx-projections", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tiers: exact=" in out
        assert "replica d=64" in out

    def test_shards_reject_quality(self, tmp_path, capsys):
        code = main(
            [
                "serve-batch",
                "--shards", str(tmp_path / "store"),
                "--queries-file", self._write_queries(tmp_path),
                "--quality", "auto",
            ]
        )
        assert code == 1
        assert "exact factors" in capsys.readouterr().err

    def test_loadgen_auto_serves_overload_as_approx(self, capsys):
        import json

        code = main(
            [
                "loadgen",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--rank", "4",
                "--requests", "10",
                "--qps", "500",
                "--seeds-per-request", "8",
                "--max-inflight-seeds", "4",
                "--cache-columns", "0",
                "--quality", "auto",
                "--approx-projections", "64",
                "--seed", "3",
                "--simulate",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcomes"]["shed"] == 0
        assert payload["outcomes"]["approx"] == 10


class TestPartialExitCode:
    """serve-batch --partial exits 3 when the batch came back incomplete,
    so scripted callers can detect truncation (deadline hit, shed, ...)."""

    @staticmethod
    def _argv(tmp_path, *extra):
        queries = tmp_path / "queries.txt"
        queries.write_text("1,2,3\n4 5\n")
        return [
            "serve-batch",
            "--dataset", "P2P",
            "--tier", "tiny",
            "--queries-file", str(queries),
            "--rank", "4",
            "--repeat", "1",
            *extra,
        ]

    def test_truncated_partial_batch_exits_3(self, tmp_path, capsys):
        import json

        code = main(
            self._argv(
                tmp_path, "--partial", "--deadline-ms", "1e-9", "--json"
            )
        )
        assert code == 3
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["passes"][0]["failed_requests"] > 0
        # the JSON payload stays clean; the warning goes to stderr only
        assert "warning" not in captured.out

    def test_truncated_partial_batch_warns_on_stderr(self, tmp_path, capsys):
        code = main(
            self._argv(tmp_path, "--partial", "--deadline-ms", "1e-9")
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "request(s) failed" in err

    def test_complete_partial_batch_exits_0(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--partial")) == 0

    def test_without_partial_deadline_is_a_typed_error(self, tmp_path, capsys):
        """No --partial: the deadline aborts with the usual exit 1."""
        code = main(self._argv(tmp_path, "--deadline-ms", "1e-9"))
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestShardCLI:
    """shard-build produces a store that query/serve-batch --shards can
    serve with answers equal to the monolithic paths."""

    @staticmethod
    def _build(tmp_path, *extra):
        out = tmp_path / "store.shards"
        code = main(
            [
                "shard-build",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--rank", "4",
                "--out", str(out),
                "--num-shards", "3",
                *extra,
            ]
        )
        assert code == 0
        return out

    def test_build_then_query_matches_monolithic(self, tmp_path, capsys):
        store = self._build(tmp_path, "--from-index")
        capsys.readouterr()
        argv = ["--queries", "1,2", "--rank", "4", "--top", "3"]
        assert main(["query", "--shards", str(store), *argv]) == 0
        sharded_out = capsys.readouterr().out
        assert main(["query", "--dataset", "P2P", "--tier", "tiny", *argv]) == 0
        mono_out = capsys.readouterr().out
        # identical ranking lines (headers differ: store vs graph)
        sharded_tail = sharded_out.split("top-3", 1)[1]
        mono_tail = mono_out.split("top-3", 1)[1]
        assert sharded_tail == mono_tail

    def test_build_json_reports_layout(self, tmp_path, capsys):
        import json

        out = tmp_path / "store.shards"
        code = main(
            [
                "shard-build",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--rank", "4",
                "--out", str(out),
                "--num-shards", "3",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["builder"] == "out-of-core"
        assert payload["num_shards"] == 3
        assert sum(payload["shard_rows"]) == payload["num_nodes"]
        assert payload["peak_resident_bytes"] > 0
        assert (out / "manifest.json").exists()

    def test_existing_store_needs_overwrite(self, tmp_path, capsys):
        store = self._build(tmp_path)
        code = main(
            [
                "shard-build",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--rank", "4",
                "--out", str(store),
                "--num-shards", "3",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_serve_batch_from_shards(self, tmp_path, capsys):
        import json

        store = self._build(tmp_path)
        capsys.readouterr()
        queries = tmp_path / "queries.txt"
        queries.write_text("1,2,3\n4 5\n")
        code = main(
            [
                "serve-batch",
                "--shards", str(store),
                "--queries-file", str(queries),
                "--repeat", "2",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_edges"] is None  # store carries no edge count
        assert payload["rank"] == 4  # from the manifest, not --rank
        assert payload["passes"][0]["columns"] == 5
        assert payload["stats"]["misses"] == 5
        assert payload["stats"]["hits"] == 5  # pass 2 fully warm

    def test_serve_batch_shards_rejects_index_dir(self, tmp_path, capsys):
        store = self._build(tmp_path)
        capsys.readouterr()
        queries = tmp_path / "queries.txt"
        queries.write_text("1\n")
        code = main(
            [
                "serve-batch",
                "--shards", str(store),
                "--queries-file", str(queries),
                "--index-dir", str(tmp_path / "registry"),
            ]
        )
        assert code == 1
        assert "--index-dir" in capsys.readouterr().err

    def test_shards_source_exclusive_with_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "FB", "--shards", "x", "--queries", "0"]
            )


class TestStatsCommand:
    def test_dataset_stats(self, capsys):
        assert main(["stats", "--dataset", "FB", "--tier", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "m/n" in out
        assert "weak components" in out

    def test_edge_list_stats(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        assert main(["stats", "--edge-list", str(path)]) == 0
        assert "n: 3" in capsys.readouterr().out


class TestTuneCommand:
    def test_tune_loose_target(self, capsys):
        code = main(
            [
                "tune",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--target-error", "1.0",
                "--candidates", "5,10",
            ]
        )
        assert code == 0
        assert "suggested rank: 5" in capsys.readouterr().out

    def test_tune_bad_target(self, capsys):
        code = main(
            [
                "tune",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--target-error", "-1",
            ]
        )
        assert code == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_source_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "FB", "--edge-list", "x", "--queries", "0"]
            )


class TestObservabilityCLI:
    """Acceptance criterion: serve-batch dumps a valid Prometheus file and
    a JSON trace whose spans cover the serve phases and prepare stages."""

    @pytest.fixture(autouse=True)
    def _clean_obs_state(self):
        import repro.obs as obs

        previous = obs.set_enabled(True)
        obs.get_tracer().reset()
        yield
        obs.set_enabled(previous)
        obs.get_tracer().reset()

    @staticmethod
    def _serve(tmp_path, capsys, *extra):
        queries = tmp_path / "queries.txt"
        queries.write_text("0,1,2\n3 4\n")
        code = main(
            [
                "serve-batch",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries-file", str(queries),
                "--rank", "4",
                *extra,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    @staticmethod
    def _span_names(trace):
        names = set()

        def visit(span):
            names.add(span["name"])
            for child in span["children"]:
                visit(child)

        for root in trace["spans"]:
            visit(root)
        return names

    def test_metrics_and_trace_dumps(self, tmp_path, capsys):
        import json

        from tests.obs.test_metrics import assert_valid_prometheus

        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.json"
        out = self._serve(
            tmp_path, capsys,
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        )
        assert "metrics written to" in out
        assert "trace written to" in out

        text = metrics_path.read_text()
        assert assert_valid_prometheus(text) > 0
        assert "csrplus_serve_requests_total" in text
        assert "csrplus_serve_batch_seconds_bucket" in text
        assert "csrplus_prepare_seconds" in text

        names = self._span_names(json.loads(trace_path.read_text()))
        assert {
            "serve.batch", "serve.coalesce", "serve.lookup",
            "serve.compute", "serve.assemble",
        } <= names
        assert {
            "prepare", "prepare.svd", "prepare.stein", "prepare.assemble",
        } <= names

    def test_metrics_out_json_variant(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        self._serve(tmp_path, capsys, "--metrics-out", str(metrics_path))
        dump = json.loads(metrics_path.read_text())
        names = {family["name"] for family in dump["metrics"]}
        assert "csrplus_serve_requests_total" in names
        assert "csrplus_serve_batch_seconds" in names

    def test_stats_pretty_prints_dumps(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.json"
        self._serve(
            tmp_path, capsys,
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        )
        assert main(["stats", "--metrics-file", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "csrplus_serve_requests_total" in out

        assert main(["stats", "--trace-file", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "serve.batch" in out
        assert "wall" in out

    def test_slow_query_ms_populates_log(self, tmp_path, capsys):
        out = self._serve(tmp_path, capsys, "--slow-query-ms", "0.000001")
        assert "slow batches:" in out

    def test_stats_without_any_source_fails(self, capsys):
        assert main(["stats"]) != 0
        err = capsys.readouterr().err
        assert "stats" in err or "source" in err.lower()


def _edge_list(tmp_path, nodes=32):
    """A ring edge list on disk — small, connected, deterministic."""
    path = tmp_path / "ring.txt"
    path.write_text(
        "\n".join(f"{i} {(i + 1) % nodes}" for i in range(nodes)) + "\n"
    )
    return str(path)


class TestLoadgenCommand:
    """Acceptance criterion: `csrplus loadgen` drives the service with a
    seeded Zipf workload and reports latency percentiles + SLO verdicts."""

    @staticmethod
    def _run(tmp_path, *extra):
        return main([
            "loadgen",
            "--edge-list", _edge_list(tmp_path),
            "--rank", "4",
            "--requests", "20",
            "--qps", "500",
            "--seed", "3",
            "--simulate",
            *extra,
        ])

    def test_renders_report_and_slo_table(self, tmp_path, capsys):
        assert self._run(tmp_path, "--slo-p99-ms", "250") == 0
        out = capsys.readouterr().out
        assert "loadgen:" in out
        assert "p99" in out
        assert "loadgen-p99" in out
        assert "PASS" in out

    def test_json_report_is_deterministic(self, tmp_path, capsys):
        import json

        assert self._run(tmp_path, "--json") == 0
        first = json.loads(capsys.readouterr().out)
        assert self._run(tmp_path, "--json") == 0
        second = json.loads(capsys.readouterr().out)
        assert first["requests"] == 20
        assert first["outcomes"]["ok"] == 20
        assert first["schedule_digest"] == second["schedule_digest"]
        assert first == second

    def test_fail_on_slo_exits_4(self, tmp_path, capsys):
        # an unmeetable p99 bound (far below the simulated clock tick
        # floor) must flip the verdict and the exit code
        code = self._run(
            tmp_path, "--fail-on-slo", "--slo-p99-ms", "0.0000001"
        )
        assert code == 4
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "exiting 4" in captured.err

    def test_metrics_out_covers_loadgen_families(self, tmp_path, capsys):
        from tests.obs.prom import assert_known_families

        metrics_path = tmp_path / "loadgen.prom"
        code = self._run(
            tmp_path, "--metrics-out", str(metrics_path),
            "--slo-p99-ms", "250",
        )
        assert code == 0
        text = metrics_path.read_text()
        assert_known_families(text)
        assert "csrplus_loadgen_requests_total 20" in text
        assert 'csrplus_loadgen_outcomes_total{outcome="ok"} 20' in text
        assert 'csrplus_slo_ok{slo="loadgen-p99"} 1' in text

    def test_topk_mode(self, tmp_path, capsys):
        assert self._run(tmp_path, "--topk", "5") == 0
        out = capsys.readouterr().out
        assert "top-5" in out or "topk" in out

    def test_parser_rejects_bad_profile(self, tmp_path, capsys):
        assert self._run(tmp_path, "--qps", "0") == 1
        assert "error:" in capsys.readouterr().err


class TestBenchCommand:
    """Acceptance criterion: `csrplus bench --compare prior.json` exits
    nonzero when a tracked metric regresses beyond tolerance."""

    @staticmethod
    def _bench(tmp_path, out_name, *extra):
        return main([
            "bench",
            "--edge-list", _edge_list(tmp_path),
            "--rank", "4",
            "--requests", "15",
            "--qps", "500",
            "--seed", "3",
            "--simulate",
            "--out", str(tmp_path / out_name),
            *extra,
        ])

    def test_writes_schema_versioned_snapshot(self, tmp_path, capsys):
        import json

        assert self._bench(tmp_path, "BENCH_a.json") == 0
        out = capsys.readouterr().out
        assert "bench snapshot written to" in out
        payload = json.loads((tmp_path / "BENCH_a.json").read_text())
        assert payload["schema"] == "csrplus-bench/v1"
        assert "loadgen_p99_seconds" in payload["metrics"]
        assert payload["slo"]["ok"] is True

    def test_compare_clean_against_self(self, tmp_path, capsys):
        assert self._bench(tmp_path, "BENCH_base.json") == 0
        capsys.readouterr()
        # identical simulated loadgen metrics; wall-clock metrics get
        # the 25% default tolerance but can still jitter on a tiny
        # graph, so gate only on the deterministic ones
        code = self._bench(
            tmp_path, "BENCH_next.json",
            "--compare", str(tmp_path / "BENCH_base.json"),
            "--tolerance", "1000",
        )
        assert code == 0
        assert "bench comparison" in capsys.readouterr().out

    def test_compare_exits_5_on_injected_p99_regression(
        self, tmp_path, capsys
    ):
        import json

        assert self._bench(tmp_path, "BENCH_base.json") == 0
        capsys.readouterr()
        # inject the regression by making the baseline 10x better than
        # the (deterministic) rerun can ever be — editing a copy, not
        # re-measuring, keeps the test immune to timing jitter
        baseline = json.loads((tmp_path / "BENCH_base.json").read_text())
        baseline["metrics"]["loadgen_p99_seconds"]["value"] /= 10.0
        for name in list(baseline["metrics"]):
            if not name.startswith("loadgen_"):
                del baseline["metrics"][name]  # mute wall-clock noise
        (tmp_path / "BENCH_prior.json").write_text(json.dumps(baseline))

        code = self._bench(
            tmp_path, "BENCH_next.json",
            "--compare", str(tmp_path / "BENCH_prior.json"),
        )
        assert code == 5
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "loadgen_p99_seconds" in captured.out
        assert "exiting 5" in captured.err

    def test_compare_missing_baseline_fails(self, tmp_path, capsys):
        code = self._bench(
            tmp_path, "BENCH_x.json",
            "--compare", str(tmp_path / "nope.json"),
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestLoadgenBenchParser:
    def test_loadgen_source_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--dataset", "FB", "--edge-list", "x"]
            )

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "--dataset", "FB"])
        assert args.command == "bench"
        assert args.out is None
        assert args.compare is None
        assert args.tolerance is None


class TestUpdateCommand:
    """`csrplus update`: edge batches repaired into a next-version store,
    rewriting only digest-changed shards (docs/dynamic.md)."""

    @staticmethod
    def _build(tmp_path):
        store = tmp_path / "store.shards"
        assert main([
            "shard-build",
            "--edge-list", _edge_list(tmp_path),
            "--rank", "4",
            "--out", str(store),
            "--num-shards", "3",
        ]) == 0
        return store

    def test_noop_batch_repairs_zero_shards(self, tmp_path, capsys):
        """Re-adding an existing edge leaves the graph's bytes unchanged:
        the repair must rewrite strictly fewer shards than the total —
        here, none — and still produce a serviceable store."""
        import json

        store = self._build(tmp_path)
        capsys.readouterr()
        code = main([
            "update",
            "--edge-list", _edge_list(tmp_path),
            "--store", str(store),
            "--out", str(tmp_path / "v1.shards"),
            "--add", "0:1",  # the ring already has this edge
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repaired_shards"] == []
        assert payload["total_shards"] == 3
        assert payload["full_rebuild"] is False
        assert payload["dirty_fraction"] == 0.0

    def test_real_batch_reports_repair_and_serves(self, tmp_path, capsys):
        store = self._build(tmp_path)
        capsys.readouterr()
        code = main([
            "update",
            "--edge-list", _edge_list(tmp_path),
            "--store", str(store),
            "--out", str(tmp_path / "v1.shards"),
            "--add", "0:16,5:20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shard(s) rewritten" in out
        assert "next-version store written" in out
        # the repaired store serves queries like any other
        assert main([
            "query", "--shards", str(tmp_path / "v1.shards"),
            "--queries", "0", "--top", "3",
        ]) == 0

    def test_requires_an_edge(self, tmp_path, capsys):
        store = self._build(tmp_path)
        code = main([
            "update",
            "--edge-list", _edge_list(tmp_path),
            "--store", str(store),
            "--out", str(tmp_path / "v1.shards"),
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_edge_spec_is_typed(self, tmp_path, capsys):
        store = self._build(tmp_path)
        code = main([
            "update",
            "--edge-list", _edge_list(tmp_path),
            "--store", str(store),
            "--out", str(tmp_path / "v1.shards"),
            "--add", "0-1",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServeBatchLive:
    """serve-batch --live: between-pass edge batches through a
    LiveIndexChain, each new version swapped in with zero downtime."""

    @staticmethod
    def _queries(tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("1,2\n3 4\n")
        return str(path)

    def test_monolithic_live_passes_report_versions(self, tmp_path, capsys):
        code = main([
            "serve-batch",
            "--edge-list", _edge_list(tmp_path),
            "--queries-file", self._queries(tmp_path),
            "--rank", "4",
            "--repeat", "3",
            "--live",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[v1]" in out or "[v1," in out
        assert "[v2]" in out or "[v2," in out
        assert "live:" in out

    def test_sharded_live_reports_repairs(self, tmp_path, capsys):
        import json

        code = main([
            "serve-batch",
            "--edge-list", _edge_list(tmp_path),
            "--queries-file", self._queries(tmp_path),
            "--rank", "4",
            "--repeat", "3",
            "--live",
            "--live-shards", "3",
            "--live-store", str(tmp_path / "live"),
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["live"]["final_version"] == 2
        assert payload["live"]["sharded"] is True
        versions = [entry["index_version"] for entry in payload["passes"]]
        assert versions == [0, 1, 2]
        for entry in payload["passes"][1:]:
            assert "repaired_shards" in entry

    def test_live_conflicts_with_shards_source(self, tmp_path, capsys):
        store = tmp_path / "store.shards"
        assert main([
            "shard-build",
            "--edge-list", _edge_list(tmp_path),
            "--rank", "4",
            "--out", str(store),
            "--num-shards", "2",
        ]) == 0
        code = main([
            "serve-batch",
            "--shards", str(store),
            "--queries-file", self._queries(tmp_path),
            "--live",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_live_shards_require_store(self, tmp_path, capsys):
        code = main([
            "serve-batch",
            "--edge-list", _edge_list(tmp_path),
            "--queries-file", self._queries(tmp_path),
            "--live",
            "--live-shards", "2",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestLoadgenMutate:
    def test_mutation_schedule_reports_and_serves(self, tmp_path, capsys):
        code = main([
            "loadgen",
            "--edge-list", _edge_list(tmp_path),
            "--rank", "4",
            "--requests", "30",
            "--qps", "500",
            "--seed", "3",
            "--simulate",
            "--mutate-every", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mutations: 2 live edge batches" in out
        assert "ok=30" in out  # sustained mutation never broke serving

    def test_mutate_every_requires_positive(self, tmp_path, capsys):
        code = main([
            "loadgen",
            "--edge-list", _edge_list(tmp_path),
            "--requests", "10",
            "--simulate",
            "--mutate-every", "-1",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err
