"""Integration tests for the csrplus CLI."""

import pytest

from repro.cli import build_parser, main


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "tab3" in out

    def test_run_ablation(self, capsys):
        assert main(["experiments", "run", "ablation-stages"]) == 0
        out = capsys.readouterr().out
        assert "stage4" in out

    def test_run_with_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(
            [
                "experiments", "run", "ablation-stages",
                "--tier", "tiny", "--output", str(target),
            ]
        )
        assert code == 0
        assert "stage4" in target.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "run", "fig42"]) == 1
        assert "error" in capsys.readouterr().err


class TestDatasetsCommand:
    def test_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "FB" in out
        assert "Webbase" in out


class TestQueryCommand:
    def test_builtin_dataset(self, capsys):
        code = main(
            [
                "query",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--queries", "1,2",
                "--rank", "4",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 most similar to node 1" in out

    def test_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        code = main(
            ["query", "--edge-list", str(path), "--queries", "0", "--rank", "2"]
        )
        assert code == 0
        assert "graph: n=3 m=3" in capsys.readouterr().out

    def test_bad_query_node(self, capsys):
        code = main(
            ["query", "--dataset", "P2P", "--tier", "tiny", "--queries", "99999"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestStatsCommand:
    def test_dataset_stats(self, capsys):
        assert main(["stats", "--dataset", "FB", "--tier", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "m/n" in out
        assert "weak components" in out

    def test_edge_list_stats(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        assert main(["stats", "--edge-list", str(path)]) == 0
        assert "n: 3" in capsys.readouterr().out


class TestTuneCommand:
    def test_tune_loose_target(self, capsys):
        code = main(
            [
                "tune",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--target-error", "1.0",
                "--candidates", "5,10",
            ]
        )
        assert code == 0
        assert "suggested rank: 5" in capsys.readouterr().out

    def test_tune_bad_target(self, capsys):
        code = main(
            [
                "tune",
                "--dataset", "P2P",
                "--tier", "tiny",
                "--target-error", "-1",
            ]
        )
        assert code == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_source_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "FB", "--edge-list", "x", "--queries", "0"]
            )
