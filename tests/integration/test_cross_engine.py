"""Integration: every engine family computes the same similarity.

These tests tie the whole stack together — graph substrate, transition
builder, SVD, Stein solvers, and each engine implementation — by
checking cross-engine agreement on non-trivial graphs.
"""

import numpy as np
import pytest

from repro.baselines import (
    CoSimMateEngine,
    CSRITEngine,
    CSRNIEngine,
    CSRRLSEngine,
    ExactCoSimRank,
    FCoSimEngine,
)
from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu, erdos_renyi, preferential_attachment


GRAPH_BUILDERS = [
    lambda: erdos_renyi(50, 220, seed=41),
    lambda: chung_lu(70, 350, seed=42),
    lambda: preferential_attachment(60, 3, seed=43),
]


@pytest.mark.parametrize("builder", GRAPH_BUILDERS)
def test_exact_family_agrees(builder):
    """Exact, deep CSR-IT/RLS, CoSimMate and F-CoSim all converge to
    the same matrix."""
    graph = builder()
    queries = [0, 7, graph.num_nodes - 1]
    reference = ExactCoSimRank(graph, epsilon=1e-13).query(queries)
    candidates = {
        "CSR-IT": CSRITEngine(graph, iterations=80).query(queries),
        "CSR-RLS": CSRRLSEngine(graph, iterations=80).query(queries),
        "CoSimMate": CoSimMateEngine(graph, epsilon=1e-12).query(queries),
        "F-CoSim": FCoSimEngine(graph, epsilon=1e-10).query(queries),
    }
    for name, block in candidates.items():
        np.testing.assert_allclose(block, reference, atol=1e-8, err_msg=name)


@pytest.mark.parametrize("builder", GRAPH_BUILDERS)
@pytest.mark.parametrize("rank", [3, 8, 20])
def test_low_rank_family_identical(builder, rank):
    """CSR+ and CSR-NI must agree bit-near at every rank (losslessness)."""
    graph = builder()
    queries = [1, 5]
    plus = CSRPlusIndex(graph, rank=rank, epsilon=1e-13).query(queries)
    ni = CSRNIEngine(graph, rank=rank).query(queries)
    np.testing.assert_allclose(plus, ni, atol=1e-9)


def test_low_rank_converges_to_exact_family():
    """As rank grows, the low-rank family approaches the exact family."""
    graph = erdos_renyi(60, 260, seed=44)
    queries = list(range(10))
    exact = ExactCoSimRank(graph).query(queries)
    prev_error = np.inf
    for rank in (5, 15, 40, 60):
        block = CSRPlusIndex(graph, rank=rank, epsilon=1e-12).query(queries)
        error = np.abs(block - exact).max()
        assert error < prev_error + 1e-9
        prev_error = error
    assert prev_error < 1e-6


def test_iterative_truncation_matches_csr_plus_series():
    """CSR-IT at K iterations == the K-truncated series; CSR+ at full
    rank with tight epsilon == the infinite series; their gap obeys the
    c^{K+1}/(1-c) tail bound."""
    from repro.core.iterations import truncation_error_bound

    graph = chung_lu(40, 180, seed=45)
    truncated = CSRITEngine(graph, iterations=6).all_pairs()
    full = CSRPlusIndex(graph, rank=40, epsilon=1e-14).all_pairs()
    gap = np.abs(truncated - full).max()
    assert gap <= truncation_error_bound(0.6, 6) + 1e-9
